// Parser for the explicit-state PRISM-language subset that
// src/mdp/export.hpp emits.
//
// Grammar (comments `// ...` allowed anywhere):
//
//   model    := ("dtmc" | "mdp") module labels? rewards?
//   module   := "module" ident var command* "endmodule"
//   var      := ident ":" "[" int ".." int "]" "init" int ";"
//   command  := "[" ident? "]" ident "=" int "->" update ("+" update)* ";"
//   update   := number ":" "(" ident "'" "=" int ")"
//   labels   := ("label" quoted "=" guard ("|" guard)* ";")*
//   guard    := "(" ident "=" int ")" | "false"
//   rewards  := "rewards" quoted reward* "endrewards"
//   reward   := ("[" ident "]")? ident "=" int ":" number ";"
//
// This makes the export/import pair a faithful round trip and lets models
// authored for PRISM (in this single-module explicit style) be loaded into
// the tml pipeline directly.

#pragma once

#include <string>

#include "src/mdp/model.hpp"

namespace tml {

/// The parsed model; exactly one of the two is meaningful per `type`.
struct PrismModel {
  enum class Type { kDtmc, kMdp } type = Type::kMdp;
  Mdp mdp;  ///< always populated (a DTMC parses into a one-choice MDP)

  /// DTMC view; throws unless type == kDtmc.
  Dtmc dtmc() const;
};

/// Parses PRISM source text; throws ParseError with position information
/// on malformed input and ModelError if the resulting model is invalid.
PrismModel parse_prism(const std::string& source);

}  // namespace tml
