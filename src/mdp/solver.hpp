// Dynamic-programming solvers for MDPs: value iteration, Q-values,
// greedy policy extraction, and exact policy evaluation.
//
// Two reward criteria are supported:
//  * discounted infinite-horizon (`discount < 1`), the standard RL setting
//    used by the car case study and by IRL, and
//  * undiscounted expected total reward until absorption in a target set
//    (stochastic shortest path), used by the WSN `R{attempts}` property.
//
// The PCTL-specific machinery (prob0/prob1 precomputation, bounded until,
// min/max reward operators with qualitative preprocessing) lives in
// src/checker; this module is the plain decision-theoretic layer.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/common/budget.hpp"
#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"

namespace tml {

/// Optimization direction for MDP solvers.
enum class Objective { kMaximize, kMinimize };

/// How unbounded reachability/until systems are solved (mdp_reachability
/// and everything layered on it: mdp_until, the PCTL checker).
enum class SolveMethod {
  /// Plain Jacobi value iteration with the classic `delta < eps` stopping
  /// rule. Fast, but the stopping rule is UNSOUND: a small per-sweep delta
  /// does not bound the distance to the fixpoint, and slowly-mixing models
  /// can "converge" arbitrarily far from the true value (see
  /// tests/test_sound_convergence.cpp for a concrete offender).
  kValueIteration,
  /// Classic value iteration swept one SCC block at a time in dependency
  /// order. Usually faster (each block iterates against already-final
  /// downstream values; acyclic regions solve in closed form) but inherits
  /// the unsound per-block stopping rule.
  kTopological,
  /// Sound interval iteration over the SCC condensation: a lower and an
  /// upper value vector, initialized from the graph-certain prob0/prob1
  /// sets, converge toward each other; end components are deflated to
  /// their best exit so the upper iterate cannot stall; a block finishes
  /// only when `upper - lower < eps` holds on every state. Returns a
  /// certified bracket (SolveResult::lo/hi) containing the exact value
  /// (up to floating-point rounding of the Bellman operator itself).
  kIntervalTopological,
};

/// Process-wide default engine used by default-constructed SolverOptions.
/// Starts as kIntervalTopological. Tools and benches that want to compare
/// engines END-TO-END (through the PCTL checker, which builds its own
/// default SolverOptions) switch it via set_default_solve_method — e.g.
/// `tml_check --method classic` and the bench/perf_checker comparisons.
SolveMethod default_solve_method();
void set_default_solve_method(SolveMethod method);

/// Warm-start seed for the iterative solvers, produced by a previous solve
/// of the SAME graph (same states, same positive-probability support, same
/// target set and objective) whose probabilities were then perturbed in
/// place — exactly what patch_probabilities() certifies. Because the graph
/// is unchanged, every qualitative analysis (prob0/prob1, SCC condensation,
/// end components) from the seeding run is still exact, and SCC blocks with
/// no dirty state and no dirty block downstream cannot have changed value
/// at all — the warm engines skip them outright.
///
/// Soundness of the certified bracket (kIntervalTopological) does NOT rest
/// on the caller's widening being large enough: before a re-swept block
/// accepts a widened seed, the solver applies one Bellman step and checks
/// the super-/sub-solution inequalities (F(hi) ≤ hi always certifies an
/// upper bound, since the reachability value is the least fixpoint;
/// F(lo) ≥ lo certifies a lower bound when the block has no end component
/// among its unknown states, which the engine checks). A seed that fails
/// its certificate is replaced by the cold 0/1 initialization for that
/// block — warm starts can only lose speed, never soundness.
struct WarmStart {
  /// Previous point estimate; seeds the classic/topological/discounted
  /// engines (size must equal num_states, else the seed is ignored).
  std::vector<double> values;
  /// Previous certified bracket; seeds the interval engine (both must be
  /// num_states-sized, else ignored).
  std::vector<double> lo;
  std::vector<double> hi;
  /// States whose outgoing probabilities changed since the seed was
  /// produced (PatchResult::dirty). Empty or mis-sized = assume all dirty.
  StateSet dirty;
  /// Per-state probability perturbation bound: [lo−widen, hi+widen] is the
  /// candidate re-widened seed for dirty blocks (then certified as above).
  /// Negative = cold-seed mode: re-swept blocks start from the cold 0/1
  /// initialization, which makes the warm run BITWISE identical to a full
  /// cold solve (unaffected blocks hold values a cold run would recompute
  /// identically) while still skipping every unaffected block.
  double widen = 0.0;
  /// Cached prob0/prob1 sets from the seeding run (same objective!); both
  /// num_states-sized = reuse, skipping the graph analyses entirely.
  /// Anything else = recompute. Valid because support-preserving patches
  /// leave the qualitative sets unchanged.
  StateSet zero;
  StateSet one;
};

/// Convergence / iteration-limit knobs shared by the iterative solvers.
struct SolverOptions {
  double tolerance = 1e-10;      ///< sup-norm convergence threshold
  std::size_t max_iterations = 100000;
  bool throw_on_nonconvergence = true;
  /// Worker threads for the per-state sweeps (0 = TML_THREADS / hardware).
  /// Sweeps are Jacobi-style — every state reads the previous iterate —
  /// and the convergence delta is a max-reduction, so values, policies and
  /// iteration counts are bitwise identical for every thread count.
  std::size_t threads = 0;
  /// Engine for unbounded reachability/until (ignored by the discounted
  /// and total-reward solvers). Sound interval iteration is the default:
  /// every repair decision in the library ultimately rests on these values,
  /// and repaired models sit near constraint boundaries where an unsound
  /// `delta < eps` stop can flip a verdict.
  SolveMethod method = default_solve_method();
  /// Resource budget (wall clock / sweep cap / cancellation). One tick per
  /// sweep (or policy-iteration round). On exhaustion the solver stops at
  /// the sweep boundary and returns its current iterate flagged
  /// `budget_status = kBudgetExhausted` instead of throwing — under the
  /// interval engine the returned lo/hi bracket is still certified sound.
  Budget budget = default_budget();
  /// Optional warm-start seed (non-owning; must outlive the call). nullptr
  /// = cold start. See WarmStart for the caller contract and the per-block
  /// certification that keeps interval brackets sound.
  const WarmStart* warm = nullptr;
};

/// Result of a value-iteration style computation.
struct SolveResult {
  std::vector<double> values;  ///< per-state value
  Policy policy;               ///< greedy policy achieving `values`
  std::size_t iterations = 0;
  bool converged = false;
  /// Certified per-state bracket `lo[s] <= v*(s) <= hi[s]` with
  /// `hi - lo < tolerance` on convergence. Only filled by
  /// SolveMethod::kIntervalTopological; empty for point-estimate engines.
  std::vector<double> lo;
  std::vector<double> hi;
  /// kBudgetExhausted when the solver stopped at a checkpoint because its
  /// SolverOptions::budget fired; the result is the partial iterate at that
  /// boundary (still a sound bracket for the interval engine).
  BudgetStatus budget_status = BudgetStatus::kOk;
  /// Which budget axis fired (kNone when budget_status is kOk).
  BudgetStop budget_stop = BudgetStop::kNone;
  /// Qualitative prob0/prob1 sets the interval engine pinned (filled by
  /// mdp_reachability_bracket / mdp_until_bracket). A later solve of the
  /// same graph after a support-preserving patch can hand them back as
  /// WarmStart::zero/one to skip the graph analyses; empty otherwise.
  StateSet zero;
  StateSet one;
};

/// Discounted value iteration: V(s) = opt_a [ r(s) + r(s,a) + γ Σ P V ].
/// `discount` must lie in (0, 1). The Mdp overload compiles and delegates;
/// callers solving the same model repeatedly should compile once themselves.
SolveResult value_iteration_discounted(const CompiledModel& model,
                                       double discount, Objective objective,
                                       const SolverOptions& options = {});
SolveResult value_iteration_discounted(const Mdp& mdp, double discount,
                                       Objective objective,
                                       const SolverOptions& options = {});

/// Howard policy iteration for the discounted criterion: exact policy
/// evaluation (linear solve) alternating with greedy improvement.
/// Terminates in finitely many iterations with the exact optimum — used as
/// an oracle against value iteration in tests and faster on models where
/// VI's γ-contraction is slow.
SolveResult policy_iteration_discounted(const CompiledModel& model,
                                        double discount, Objective objective,
                                        const SolverOptions& options = {});
SolveResult policy_iteration_discounted(const Mdp& mdp, double discount,
                                        Objective objective,
                                        const SolverOptions& options = {});

/// Expected total reward accumulated until reaching `targets` (which pin
/// value 0), optimizing in the given direction. States from which targets
/// are not reached with probability 1 under the optimizing behaviour have
/// infinite expected reward; the solver reports +inf for them (using a
/// reachability precomputation).
SolveResult total_reward_to_target(const CompiledModel& model,
                                   const StateSet& targets,
                                   Objective objective,
                                   const SolverOptions& options = {});
SolveResult total_reward_to_target(const Mdp& mdp, const StateSet& targets,
                                   Objective objective,
                                   const SolverOptions& options = {});

/// Q-values for the discounted criterion at a given value function:
/// Q(s, c) = r(s) + r(s,c) + γ Σ_t P(t|s,c) V(t).
/// Indexed [state][choice].
std::vector<std::vector<double>> q_values_discounted(
    const CompiledModel& model, std::span<const double> values,
    double discount, std::size_t threads = 0);
std::vector<std::vector<double>> q_values_discounted(
    const Mdp& mdp, std::span<const double> values, double discount,
    std::size_t threads = 0);

/// Greedy deterministic policy for given Q-values (ties resolved to the
/// smallest choice index, which keeps results deterministic).
Policy greedy_policy(const std::vector<std::vector<double>>& q,
                     Objective objective);

/// Exact policy evaluation for the discounted criterion by direct linear
/// solve on the policy-selected rows (the induced chain is never
/// materialized — the CSR rows of the chosen choices feed the system
/// directly).
std::vector<double> evaluate_policy_discounted(const CompiledModel& model,
                                               const Policy& policy,
                                               double discount);
std::vector<double> evaluate_policy_discounted(const Mdp& mdp,
                                               const Policy& policy,
                                               double discount);

/// Expected total reward of a DTMC until reaching `targets` (value 0 at
/// targets), by direct linear solve. States that reach the target with
/// probability < 1 get +inf.
std::vector<double> dtmc_total_reward(const CompiledModel& model,
                                      const StateSet& targets);
std::vector<double> dtmc_total_reward(const Dtmc& chain,
                                      const StateSet& targets);

/// Probability of eventually reaching `targets` in a DTMC (linear solve with
/// prob0/prob1 graph preprocessing).
std::vector<double> dtmc_reachability(const CompiledModel& model,
                                      const StateSet& targets);
std::vector<double> dtmc_reachability(const Dtmc& chain,
                                      const StateSet& targets);

}  // namespace tml
