// Dynamic-programming solvers for MDPs: value iteration, Q-values,
// greedy policy extraction, and exact policy evaluation.
//
// Two reward criteria are supported:
//  * discounted infinite-horizon (`discount < 1`), the standard RL setting
//    used by the car case study and by IRL, and
//  * undiscounted expected total reward until absorption in a target set
//    (stochastic shortest path), used by the WSN `R{attempts}` property.
//
// The PCTL-specific machinery (prob0/prob1 precomputation, bounded until,
// min/max reward operators with qualitative preprocessing) lives in
// src/checker; this module is the plain decision-theoretic layer.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"

namespace tml {

/// Optimization direction for MDP solvers.
enum class Objective { kMaximize, kMinimize };

/// Convergence / iteration-limit knobs shared by the iterative solvers.
struct SolverOptions {
  double tolerance = 1e-10;      ///< sup-norm convergence threshold
  std::size_t max_iterations = 100000;
  bool throw_on_nonconvergence = true;
  /// Worker threads for the per-state sweeps (0 = TML_THREADS / hardware).
  /// Sweeps are Jacobi-style — every state reads the previous iterate —
  /// and the convergence delta is a max-reduction, so values, policies and
  /// iteration counts are bitwise identical for every thread count.
  std::size_t threads = 0;
};

/// Result of a value-iteration style computation.
struct SolveResult {
  std::vector<double> values;  ///< per-state value
  Policy policy;               ///< greedy policy achieving `values`
  std::size_t iterations = 0;
  bool converged = false;
};

/// Discounted value iteration: V(s) = opt_a [ r(s) + r(s,a) + γ Σ P V ].
/// `discount` must lie in (0, 1). The Mdp overload compiles and delegates;
/// callers solving the same model repeatedly should compile once themselves.
SolveResult value_iteration_discounted(const CompiledModel& model,
                                       double discount, Objective objective,
                                       const SolverOptions& options = {});
SolveResult value_iteration_discounted(const Mdp& mdp, double discount,
                                       Objective objective,
                                       const SolverOptions& options = {});

/// Howard policy iteration for the discounted criterion: exact policy
/// evaluation (linear solve) alternating with greedy improvement.
/// Terminates in finitely many iterations with the exact optimum — used as
/// an oracle against value iteration in tests and faster on models where
/// VI's γ-contraction is slow.
SolveResult policy_iteration_discounted(const CompiledModel& model,
                                        double discount, Objective objective,
                                        const SolverOptions& options = {});
SolveResult policy_iteration_discounted(const Mdp& mdp, double discount,
                                        Objective objective,
                                        const SolverOptions& options = {});

/// Expected total reward accumulated until reaching `targets` (which pin
/// value 0), optimizing in the given direction. States from which targets
/// are not reached with probability 1 under the optimizing behaviour have
/// infinite expected reward; the solver reports +inf for them (using a
/// reachability precomputation).
SolveResult total_reward_to_target(const CompiledModel& model,
                                   const StateSet& targets,
                                   Objective objective,
                                   const SolverOptions& options = {});
SolveResult total_reward_to_target(const Mdp& mdp, const StateSet& targets,
                                   Objective objective,
                                   const SolverOptions& options = {});

/// Q-values for the discounted criterion at a given value function:
/// Q(s, c) = r(s) + r(s,c) + γ Σ_t P(t|s,c) V(t).
/// Indexed [state][choice].
std::vector<std::vector<double>> q_values_discounted(
    const CompiledModel& model, std::span<const double> values,
    double discount, std::size_t threads = 0);
std::vector<std::vector<double>> q_values_discounted(
    const Mdp& mdp, std::span<const double> values, double discount,
    std::size_t threads = 0);

/// Greedy deterministic policy for given Q-values (ties resolved to the
/// smallest choice index, which keeps results deterministic).
Policy greedy_policy(const std::vector<std::vector<double>>& q,
                     Objective objective);

/// Exact policy evaluation for the discounted criterion by direct linear
/// solve on the policy-selected rows (the induced chain is never
/// materialized — the CSR rows of the chosen choices feed the system
/// directly).
std::vector<double> evaluate_policy_discounted(const CompiledModel& model,
                                               const Policy& policy,
                                               double discount);
std::vector<double> evaluate_policy_discounted(const Mdp& mdp,
                                               const Policy& policy,
                                               double discount);

/// Expected total reward of a DTMC until reaching `targets` (value 0 at
/// targets), by direct linear solve. States that reach the target with
/// probability < 1 get +inf.
std::vector<double> dtmc_total_reward(const CompiledModel& model,
                                      const StateSet& targets);
std::vector<double> dtmc_total_reward(const Dtmc& chain,
                                      const StateSet& targets);

/// Probability of eventually reaching `targets` in a DTMC (linear solve with
/// prob0/prob1 graph preprocessing).
std::vector<double> dtmc_reachability(const CompiledModel& model,
                                      const StateSet& targets);
std::vector<double> dtmc_reachability(const Dtmc& chain,
                                      const StateSet& targets);

}  // namespace tml
