// Model serialization: PRISM-language and Graphviz DOT writers.
//
// The paper's workflow hands models to PRISM; these writers make every
// tml model inspectable with the original toolchain (and with graphviz for
// figures such as the paper's Fig. 1). The PRISM output is a single-module
// explicit-state encoding: one integer state variable, one command per
// (state, choice), a label per atomic proposition, and one reward
// structure combining state and action rewards.

#pragma once

#include <string>

#include "src/mdp/model.hpp"

namespace tml {

/// PRISM-language source for an MDP ("mdp" model type).
std::string to_prism(const Mdp& mdp, const std::string& module_name = "tml");

/// PRISM-language source for a DTMC ("dtmc" model type).
std::string to_prism(const Dtmc& chain, const std::string& module_name = "tml");

/// Graphviz digraph. States are nodes (labels show name, reward, atomic
/// propositions; goal-ish labels are not interpreted); transitions are
/// edges annotated with action and probability.
std::string to_dot(const Mdp& mdp, const std::string& graph_name = "tml");
std::string to_dot(const Dtmc& chain, const std::string& graph_name = "tml");

}  // namespace tml
