// Strong probabilistic bisimulation quotienting of compiled models.
//
// The repair loop re-checks PCTL properties after every perturbation, so
// checking cost bounds the whole pipeline. Bisimulation minimization is the
// classical lever: collapse states that are behaviourally indistinguishable
// *before* the expensive solvers run, check the (often far smaller) quotient,
// and lift the per-state answers back. `bisimulation_quotient()` computes the
// coarsest strong probabilistic bisimulation that respects
//
//   * atomic propositions — two states merge only if they carry exactly the
//     same label set, so every PCTL state formula evaluates identically;
//   * state rewards, and per-choice rewards inside the signature, so R
//     operators (reachability and cumulative) are preserved as well;
//   * for MDPs, the *set* of distributions-over-blocks: each state's choices,
//     viewed as (choice reward, aggregated distribution over current blocks)
//     pairs, must coincide as sets. Action identities are deliberately NOT
//     part of the signature — checking semantics never read them — which lets
//     structurally symmetric states merge even when their actions are named
//     differently (e.g. the grid robot's "east" from (x,y) matching "north"
//     from (y,x)).
//
// For DTMCs the same pass specializes to ordinary lumpability, so
// steady-state / long-run probabilities of label sets are preserved too
// (labels are unions of blocks).
//
// Algorithm: signature-based partition refinement over the CSR (Derisavi /
// sigref style). The initial partition groups states by (label bitset, state
// reward); each round recomputes probability signatures — per choice, the
// target distribution aggregated by current block — for the states whose
// signature may have changed, and splits every block whose members now
// disagree. The "may have changed" set is tracked with the word-packed
// `Bitset` as a splitter queue: when a state changes block, all its CSC
// predecessors are enqueued for re-signature next round (a state with a
// self-loop is its own predecessor, so own-block moves are covered). Blocks
// only ever split, so the refinement terminates in at most n-1 rounds; each
// round costs O(enqueued rows) rather than O(m).
//
// Signatures compare probabilities *bitwise* after a fixed-order aggregation.
// That is deliberately conservative: states whose distributions are equal as
// reals but differ in the last ulp of an aggregated sum stay separate — a
// finer partition is still a bisimulation, so every lifted answer remains
// exact. The dyadic generators used by the differential tests (and the
// replicated families from src/casestudies/generator.hpp) aggregate exactly.
//
// Budgets: refinement honours a `BudgetTracker` (one iteration per round,
// evaluation ticks per signature batch). On exhaustion the partial partition
// is NOT a bisimulation — it is too coarse — so no quotient is returned:
// `complete == false`, and callers degrade to checking the unquotiented
// model (this is what CheckOptions::quotient does). Records the
// compile.quotient_* stats family.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/budget.hpp"
#include "src/mdp/compiled.hpp"

namespace tml {

/// Outcome of a quotient pass. `quotient` and `state_map` are only
/// meaningful when `complete` is true; on budget exhaustion the partial
/// partition would be unsound to check against, so nothing is returned.
struct QuotientResult {
  /// True when refinement reached the fixpoint (the coarsest partition).
  bool complete = false;
  /// Why refinement stopped early (kNone when complete).
  BudgetStop budget_stop = BudgetStop::kNone;
  /// Refinement rounds executed (including the final stable round).
  std::size_t iterations = 0;

  /// The minimized model; state b is the block of every original state s
  /// with state_map[s] == b. Valid iff complete.
  CompiledModel quotient;
  /// Original state -> quotient state. Valid iff complete.
  std::vector<std::uint32_t> state_map;

  std::size_t num_blocks() const { return quotient.num_states(); }
};

struct QuotientOptions {
  Budget budget = default_budget();
};

/// Computes the coarsest label- and reward-respecting strong probabilistic
/// bisimulation quotient of `model`. Deterministic: the block numbering is
/// canonical (ascending first-member state id), so the same input always
/// produces a bitwise-identical quotient — quotienting a quotient yields the
/// identity map and an equal content_hash().
QuotientResult bisimulation_quotient(const CompiledModel& model,
                                     const QuotientOptions& options = {});

/// Lifts a per-quotient-state value vector back to the original state space:
/// out[s] = quotient_values[state_map[s]]. Under strong bisimulation the
/// value of a state equals the value of its block, so this lift is exact —
/// applying it to the lo and hi rails of a certified interval bracket yields
/// a bracket that still contains the true per-original-state value.
std::vector<double> lift_values(const std::vector<std::uint32_t>& state_map,
                                std::span<const double> quotient_values);

/// Lifts a quotient-state set (e.g. a satisfaction set) back to the original
/// state space: s is in the result iff state_map[s] is in `quotient_set`.
StateSet lift_states(const std::vector<std::uint32_t>& state_map,
                     const StateSet& quotient_set);

}  // namespace tml
