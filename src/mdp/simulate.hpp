// Monte-Carlo simulation of MDPs under a policy.
//
// Used to generate synthetic trace datasets (the paper's "message routing
// traces" and "car traces from a vehicle simulator") and as an independent
// sanity check of the analytic model checker in tests.
//
// Simulation runs on the compiled CSR form: successors are drawn straight
// from the per-choice probability spans, with no per-step weight vector.
// The Mdp overloads compile and delegate — callers generating many
// trajectories from one model should compile once themselves.

#pragma once

#include "src/common/rng.hpp"
#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"
#include "src/mdp/trajectory.hpp"

namespace tml {

/// Simulation stopping conditions: a trajectory ends when it enters a state
/// in `absorbing` or reaches `max_steps`.
struct SimulationOptions {
  std::size_t max_steps = 1000;
  StateSet absorbing;  ///< empty means "no absorbing cut-off"
};

/// Simulates one trajectory from the MDP's initial state under a
/// deterministic policy.
Trajectory simulate(const CompiledModel& model, const Policy& policy, Rng& rng,
                    const SimulationOptions& options = {});
Trajectory simulate(const Mdp& mdp, const Policy& policy, Rng& rng,
                    const SimulationOptions& options = {});

/// Simulates one trajectory under a randomized policy.
Trajectory simulate(const CompiledModel& model, const RandomizedPolicy& policy,
                    Rng& rng, const SimulationOptions& options = {});
Trajectory simulate(const Mdp& mdp, const RandomizedPolicy& policy, Rng& rng,
                    const SimulationOptions& options = {});

/// Simulates `count` trajectories into a dataset.
TrajectoryDataset simulate_dataset(const CompiledModel& model,
                                   const Policy& policy, Rng& rng,
                                   std::size_t count,
                                   const SimulationOptions& options = {});
TrajectoryDataset simulate_dataset(const Mdp& mdp, const Policy& policy,
                                   Rng& rng, std::size_t count,
                                   const SimulationOptions& options = {});
TrajectoryDataset simulate_dataset(const CompiledModel& model,
                                   const RandomizedPolicy& policy, Rng& rng,
                                   std::size_t count,
                                   const SimulationOptions& options = {});
TrajectoryDataset simulate_dataset(const Mdp& mdp,
                                   const RandomizedPolicy& policy, Rng& rng,
                                   std::size_t count,
                                   const SimulationOptions& options = {});

/// Total reward (state rewards of visited states + action rewards of taken
/// choices) accumulated along a trajectory. The final state's state reward
/// is only counted if `count_final_state` is set (reachability-reward
/// semantics accumulate up to, excluding, the target).
double trajectory_reward(const CompiledModel& model,
                         const Trajectory& trajectory,
                         bool count_final_state = false);
double trajectory_reward(const Mdp& mdp, const Trajectory& trajectory,
                         bool count_final_state = false);

}  // namespace tml
