// Qualitative graph analyses on MDPs and DTMCs.
//
// These are the PRISM-style precomputations that make quantitative model
// checking sound: they classify states where reachability probabilities are
// exactly 0 or exactly 1 *for graph reasons*, before any numerics run.
//
// Naming (T is the target set):
//  * reachable_existential(T): states from which SOME scheduler reaches T
//    with positive probability (plain backward reachability over all edges).
//    Complement = "Prob0A" (all schedulers give probability 0).
//  * avoid_certain(T): states from which SOME scheduler avoids T forever
//    with probability 1 (greatest fixpoint of "has a choice staying inside").
//    This set is exactly { s : Pmin(F T)(s) = 0 }.
//  * prob1_existential(T): { s : Pmax(F T)(s) = 1 } — the classic Prob1E
//    nested fixpoint (de Alfaro).
//  * prob1_universal(T):  { s : Pmin(F T)(s) = 1 } = complement of
//    reachable_existential(avoid_certain(T)).
//
// Every analysis is implemented once, over the compiled CSR form
// (src/mdp/compiled.hpp) whose cached predecessor structure feeds all
// backward closures; the Mdp/Dtmc overloads compile and delegate.

#pragma once

#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"

namespace tml {

/// States with a path (under some scheduler) of positive probability to T.
StateSet reachable_existential(const CompiledModel& model,
                               const StateSet& targets);
StateSet reachable_existential(const Mdp& mdp, const StateSet& targets);

/// States from which some scheduler stays out of T forever (prob 1 avoid).
/// Requires targets ∩ result = ∅ by construction.
StateSet avoid_certain(const CompiledModel& model, const StateSet& targets);
StateSet avoid_certain(const Mdp& mdp, const StateSet& targets);

/// { s : Pmax(F T)(s) = 1 } (Prob1E).
StateSet prob1_existential(const CompiledModel& model, const StateSet& targets);
StateSet prob1_existential(const Mdp& mdp, const StateSet& targets);

/// { s : Pmin(F T)(s) = 1 } (Prob1A).
StateSet prob1_universal(const CompiledModel& model, const StateSet& targets);
StateSet prob1_universal(const Mdp& mdp, const StateSet& targets);

/// DTMC: states that reach T with positive probability.
StateSet dtmc_reach_positive(const CompiledModel& model,
                             const StateSet& targets);
StateSet dtmc_reach_positive(const Dtmc& chain, const StateSet& targets);

/// DTMC: { s : P(F T)(s) = 0 }.
StateSet dtmc_prob0(const CompiledModel& model, const StateSet& targets);
StateSet dtmc_prob0(const Dtmc& chain, const StateSet& targets);

/// DTMC: { s : P(F T)(s) = 1 }.
StateSet dtmc_prob1(const CompiledModel& model, const StateSet& targets);
StateSet dtmc_prob1(const Dtmc& chain, const StateSet& targets);

/// States reachable (forward) from `from` in the model.
StateSet forward_reachable(const CompiledModel& model, StateId from);
StateSet forward_reachable(const Mdp& mdp, StateId from);
StateSet forward_reachable(const Dtmc& chain, StateId from);

/// SCC condensation over the positive-probability edges, blocks emitted in
/// dependency order (successor blocks first — Tarjan's emission order; see
/// SccDecomposition in compiled.hpp). Iterative, so deep chains cannot
/// overflow the call stack. Prefer CompiledModel::scc(), which caches.
SccDecomposition scc_decomposition(const CompiledModel& model);

/// Maximal end components of the sub-MDP restricted to `within`: maximal
/// state sets M ⊆ within such that some set of choices (each with full
/// support inside M) makes M strongly connected. States of `within` that
/// belong to no end component are absent from the result. Each MEC's state
/// list is sorted; the MEC order follows the smallest member state.
///
/// Interval iteration for Pmax needs these: value iteration from above
/// stalls at a spurious fixpoint inside an end component, and the standard
/// fix ("deflation") caps every MEC at its best exit value each sweep.
std::vector<std::vector<StateId>> maximal_end_components(
    const CompiledModel& model, const StateSet& within);

}  // namespace tml
