// Trajectories (paths through an MDP) and datasets of trajectories.
//
// Trajectories are the data D of §II: Data Repair perturbs a dataset of
// observed trajectories, the learner (src/learn) estimates transition
// probabilities from them, IRL (src/irl) matches their feature counts, and
// Reward Repair's trajectory rules φ_l(U) are evaluated on them.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/mdp/model.hpp"

namespace tml {

/// One observed step: being in `state`, taking choice `choice` (index into
/// the state's choice list), which carried action id `action`, and landing
/// in `next_state`.
struct Step {
  StateId state = 0;
  std::uint32_t choice = 0;
  ActionId action = 0;
  StateId next_state = 0;
};

/// A finite path U = (s_1,a_1) ... (s_n,a_n) through an MDP, stored as its
/// step sequence. `final_state` is the state reached after the last step
/// (equal to steps.back().next_state when steps is non-empty).
struct Trajectory {
  std::vector<Step> steps;
  StateId initial_state = 0;

  bool empty() const { return steps.empty(); }
  std::size_t length() const { return steps.size(); }
  StateId final_state() const {
    return steps.empty() ? initial_state : steps.back().next_state;
  }

  /// The state sequence s_1 ... s_{n+1} (length() + 1 entries).
  std::vector<StateId> state_sequence() const;

  /// True if any visited state (including the final one) is in `set`.
  bool visits(const StateSet& set) const;

  /// Renders as "(S0,a0) -> (S1,a1) -> ... -> Sk" using model names.
  std::string to_string(const Mdp& mdp) const;
};

/// A dataset of trajectories with per-trajectory multiplicities (a compact
/// representation of repeated observations; Data Repair's keep-weights act
/// on these multiplicities).
struct TrajectoryDataset {
  std::vector<Trajectory> trajectories;
  std::vector<double> weights;  ///< multiplicity/weight per trajectory; if
                                ///< empty, all weights are 1

  std::size_t size() const { return trajectories.size(); }
  double weight(std::size_t i) const {
    return weights.empty() ? 1.0 : weights[i];
  }
  void add(Trajectory trajectory, double weight = 1.0);
};

/// Parses a stream of DTMC trajectory batches (the `tml_check --session`
/// input). One trajectory per line as a whitespace-separated state
/// sequence; states are resolved by name against `chain` (falling back to
/// a numeric state id); an optional trailing `*w` sets the trajectory
/// weight. Lines of `---` separate batches; `#` starts a comment; blank
/// lines and empty batches are skipped. Throws ModelError on an unknown
/// state, a malformed weight, or a single-state line (no transition).
std::vector<TrajectoryDataset> parse_trajectory_batches(std::istream& in,
                                                        const Dtmc& chain);
std::vector<TrajectoryDataset> parse_trajectory_batches(
    const std::string& text, const Dtmc& chain);

}  // namespace tml
