// Compiled sparse model core.
//
// Every numeric algorithm in the library — PCTL checking, Prob0/Prob1 graph
// precomputation, value/policy iteration, steady-state analysis, statistical
// model checking, max-entropy IRL — iterates the transition structure of an
// MDP/DTMC. The builder types in model.hpp store that structure as nested
// `std::vector<Choice>` → `std::vector<Transition>` rows: convenient to
// construct and mutate (repair code perturbs individual rows), but each hot
// loop chases two levels of heap pointers per state and rebuilds predecessor
// lists per call.
//
// `CompiledModel` lowers a validated `Mdp` or `Dtmc` into a flat CSR layout:
//
//     row_start[s]     .. row_start[s+1]      choices of state s
//     choice_start[c]  .. choice_start[c+1]   transitions of choice c
//     target[k], prob[k]                      contiguous columns
//
// plus a CSC-style predecessor structure (built lazily on first use, with
// duplicate (pred, succ) pairs removed, and reused by every backward
// closure), per-state and per-choice reward arrays, and per-label state
// bitsets. Laziness keeps compile() cheap for the engines that never walk
// backwards (bounded operators, simulation, SMC, IRL).
//
// `compile()` is the single boundary between the builder world and the
// numeric kernels: construction, export and repair keep mutating `Mdp` /
// `Dtmc`, and every solver/checker entry point lowers once and then runs on
// the flat arrays. A `Dtmc` compiles to the one-choice-per-state special
// case with `deterministic() == true`.
//
// Delta compile. Streaming pipelines (src/core/repair_session) re-estimate
// transition probabilities every data batch but almost never change the
// *support*. `patch_probabilities()` rewrites the probability/reward
// columns of an existing CompiledModel in place when the new model has the
// exact same CSR structure and positive-probability support, returning the
// set of dirty states (rows whose numbers actually moved) and the largest
// per-entry perturbation; on any structural mismatch it leaves the model
// untouched and tells the caller to fall back to a full compile(). Because
// support is verified unchanged, every graph-derived cache (predecessors,
// SCC condensation) and every graph analysis a caller may have stashed
// (prob0/prob1 sets, end components) remains exactly valid.
//
// Cache staleness guard. The predecessor and SCC caches are built lazily
// from the probability columns; any in-place mutation outside
// patch_probabilities() (via mutable_prob()) would leave them silently
// describing the *old* graph. Mutations therefore bump a mutation epoch,
// and the cache accessors throw ModelError when their cache predates the
// epoch — misuse fails loudly instead of returning wrong graphs. Callers
// that know what they changed either go through patch_probabilities()
// (which re-blesses the caches after verifying the support) or call
// invalidate_graph_caches() to drop them for rebuild.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/mdp/model.hpp"

namespace tml {

class CompiledModel;
struct PatchResult;
struct QuotientResult;
struct QuotientOptions;

/// Strongly-connected-component condensation of a compiled model, with the
/// blocks stored in *dependency order*: every positive-probability edge
/// s → t crossing blocks satisfies component[t] < component[s]. Iterating
/// blocks 0, 1, …, num_blocks()-1 therefore visits each block only after
/// every block it can reach — exactly the order in which the topological
/// solvers (src/checker/reachability.cpp) want to converge them, since each
/// block then iterates against already-final downstream values.
///
/// Produced by scc_decomposition() (iterative Tarjan, src/mdp/graph.cpp)
/// and cached on the CompiledModel like the predecessor structure.
struct SccDecomposition {
  std::vector<std::uint32_t> component;    ///< state → block id
  std::vector<std::uint32_t> block_start;  ///< CSR offsets, num_blocks()+1
  std::vector<StateId> block_states;       ///< states grouped by block
  /// Per-block bit: the block has more than one state or a self-loop edge,
  /// i.e. its states genuinely depend on each other and need iteration.
  /// Trivial blocks are solvable with a single closed-form update.
  Bitset nontrivial;

  std::size_t num_blocks() const { return block_start.size() - 1; }
  std::span<const StateId> block(std::uint32_t b) const {
    return {block_states.data() + block_start[b],
            block_start[b + 1] - block_start[b]};
  }
};

class CompiledModel {
 public:
  // -- structure -----------------------------------------------------------

  std::size_t num_states() const { return num_states_; }
  std::size_t num_choices() const { return choice_start_.size() - 1; }
  std::size_t num_transitions() const { return target_.size(); }
  StateId initial_state() const { return initial_state_; }

  /// True when the source model was a DTMC (exactly one choice per state,
  /// and choice index c == state id s).
  bool deterministic() const { return deterministic_; }

  /// Global choice-index range [first_choice(s), last_choice(s)) of state s.
  std::uint32_t first_choice(StateId s) const { return row_start_[s]; }
  std::uint32_t last_choice(StateId s) const { return row_start_[s + 1]; }
  std::uint32_t num_choices_of(StateId s) const {
    return row_start_[s + 1] - row_start_[s];
  }

  /// Transition columns of global choice c.
  std::span<const StateId> targets(std::uint32_t c) const {
    return {target_.data() + choice_start_[c],
            choice_start_[c + 1] - choice_start_[c]};
  }
  std::span<const double> probabilities(std::uint32_t c) const {
    return {prob_.data() + choice_start_[c],
            choice_start_[c + 1] - choice_start_[c]};
  }

  /// Transition row of a DTMC state (requires deterministic()).
  std::span<const StateId> row_targets(StateId s) const { return targets(s); }
  std::span<const double> row_probabilities(StateId s) const {
    return probabilities(s);
  }

  /// Raw offset/column arrays for kernels that index directly.
  const std::vector<std::uint32_t>& row_start() const { return row_start_; }
  const std::vector<std::uint32_t>& choice_start() const {
    return choice_start_;
  }
  const std::vector<StateId>& target() const { return target_; }
  const std::vector<double>& prob() const { return prob_; }

  // -- predecessors (cached CSC-style structure) ---------------------------

  /// Distinct predecessor states of s over all positive-probability edges.
  /// Built on first call and cached (not thread-safe, like the rest of the
  /// library). Throws ModelError if the cache is stale (see the staleness
  /// guard in the file comment).
  std::span<const StateId> predecessors(StateId s) const {
    if (!preds_built_) build_predecessors();
    require_fresh(pred_epoch_, "predecessors");
    return {pred_.data() + pred_start_[s], pred_start_[s + 1] - pred_start_[s]};
  }

  // -- condensation (cached SCC structure) ---------------------------------

  /// SCC condensation in dependency order (see SccDecomposition). Built on
  /// first call by the iterative Tarjan pass in src/mdp/graph.cpp and
  /// cached (not thread-safe, like the predecessor cache).
  const SccDecomposition& scc() const;

  // -- rewards -------------------------------------------------------------

  double state_reward(StateId s) const { return state_reward_[s]; }
  double choice_reward(std::uint32_t c) const { return choice_reward_[c]; }
  const std::vector<double>& state_rewards() const { return state_reward_; }
  const std::vector<double>& choice_rewards() const { return choice_reward_; }

  ActionId choice_action(std::uint32_t c) const { return choice_action_[c]; }

  // -- labels --------------------------------------------------------------

  /// Bitset of states carrying `label` (all-false if never used).
  StateSet states_with_label(const std::string& label) const;
  const std::vector<std::string>& label_names() const { return label_names_; }

  // -- derived models ------------------------------------------------------

  /// Copy with every state in `absorb` replaced by a single zero-reward
  /// self-loop choice. This is how until operators restrict to P[F goal]:
  /// states outside stay ∪ goal can never contribute and are made absorbing.
  CompiledModel make_absorbing(const StateSet& absorb) const;

  // -- in-place mutation (see the staleness guard in the file comment) -----

  /// Raw mutable access to one probability entry. Bumps the mutation epoch:
  /// the lazily built predecessor/SCC caches become stale and their
  /// accessors THROW until the caches are invalidated (or re-blessed by
  /// patch_probabilities, whose support check proves them still valid).
  void set_prob(std::size_t k, double p) {
    prob_[k] = p;
    ++mutation_epoch_;
  }
  void set_choice_reward(std::uint32_t c, double r) { choice_reward_[c] = r; }
  void set_state_reward(StateId s, double r) { state_reward_[s] = r; }

  /// Drops the graph-derived caches so the next accessor call rebuilds them
  /// from the current probability columns (the sanctioned recovery after
  /// raw set_prob mutations).
  void invalidate_graph_caches() const;

  /// Current mutation epoch (bumped by every set_prob); exposed so external
  /// caches keyed on this model can implement the same staleness check.
  std::uint64_t mutation_epoch() const { return mutation_epoch_; }

  // -- fingerprint ---------------------------------------------------------

  /// 64-bit FNV-1a content fingerprint over everything checking semantics
  /// depend on: the CSR structure, transition probabilities (bitwise, so
  /// 0.1+0.2 and 0.3 hash differently — the fingerprint identifies the
  /// compiled artifact, not a numeric equivalence class), rewards, action
  /// ids, and labels. Two models with equal hashes check identically for
  /// every formula; the serve-layer model cache keys on this. O(model);
  /// does not touch or build the lazy graph caches.
  std::uint64_t content_hash() const;

  friend CompiledModel compile(const Mdp& mdp);
  friend CompiledModel compile(const Dtmc& chain);
  friend PatchResult patch_probabilities(CompiledModel& model, const Mdp& mdp);
  friend PatchResult patch_probabilities(CompiledModel& model,
                                         const Dtmc& chain);
  // Bisimulation minimization (src/mdp/quotient.cpp) assembles the quotient
  // CSR directly — rebuilding through the Mdp builder would cost a second
  // copy of the model on the no-collapse path.
  friend QuotientResult bisimulation_quotient(const CompiledModel& model,
                                              const QuotientOptions& options);

 private:
  void build_predecessors() const;
  void require_fresh(std::uint64_t built_epoch, const char* what) const;

  std::size_t num_states_ = 0;
  StateId initial_state_ = 0;
  bool deterministic_ = false;

  std::vector<std::uint32_t> row_start_;     // size num_states + 1
  std::vector<std::uint32_t> choice_start_;  // size num_choices + 1
  std::vector<StateId> target_;              // size num_transitions
  std::vector<double> prob_;                 // size num_transitions

  std::vector<double> state_reward_;      // size num_states
  std::vector<double> choice_reward_;     // size num_choices
  std::vector<ActionId> choice_action_;   // size num_choices

  mutable bool preds_built_ = false;
  mutable std::vector<std::uint32_t> pred_start_;  // size num_states + 1
  mutable std::vector<StateId> pred_;  // deduplicated predecessor lists

  mutable bool scc_built_ = false;
  mutable SccDecomposition scc_;  // lazy Tarjan condensation

  // Staleness guard: epoch at which each lazy cache was built, against the
  // running mutation epoch bumped by set_prob (see file comment).
  std::uint64_t mutation_epoch_ = 0;
  mutable std::uint64_t pred_epoch_ = 0;
  mutable std::uint64_t scc_epoch_ = 0;

  std::vector<std::string> label_names_;
  std::vector<StateSet> label_sets_;  // per label, bitset over states
};

/// Lowers a validated model into the flat form. Throws ModelError on
/// structurally invalid input (delegates to model.validate()).
CompiledModel compile(const Mdp& mdp);
CompiledModel compile(const Dtmc& chain);

/// Outcome of a delta compile (patch_probabilities).
struct PatchResult {
  /// True when the new model had the identical CSR structure and support
  /// and the columns were rewritten in place. False means the model was
  /// left untouched and the caller must fall back to a full compile().
  bool patched = false;
  /// States whose outgoing probabilities or rewards changed (empty bitset
  /// of num_states when patched is false).
  StateSet dirty;
  std::size_t dirty_states = 0;
  /// max |p_new - p_old| over all transition entries — the per-entry
  /// probability perturbation bound (the ε of the paper's Prop. 1 view of
  /// the patch as a perturbation matrix Z), used by the warm-started
  /// interval solver to re-widen its bracket seed.
  double max_abs_delta = 0.0;
};

/// Delta compile: rewrites probabilities and rewards of `model` in place
/// from `mdp` when the structure (states, choices, transition targets in
/// order) and the positive-probability support both match; otherwise
/// returns {patched = false} and leaves `model` untouched. On success the
/// graph caches are re-blessed (support unchanged ⇒ predecessors and SCC
/// condensation are still exact) and the returned dirty set / perturbation
/// bound describe the delta. Records compile.patch_* stats.
PatchResult patch_probabilities(CompiledModel& model, const Mdp& mdp);
PatchResult patch_probabilities(CompiledModel& model, const Dtmc& chain);

}  // namespace tml
