#include "src/mdp/simulate.hpp"

namespace tml {

namespace {

/// Draws a successor of global choice `c` straight from the CSR spans.
StateId sample_successor(const CompiledModel& model, std::uint32_t c,
                         Rng& rng) {
  return model.targets(c)[rng.categorical(model.probabilities(c))];
}

bool is_absorbing(const SimulationOptions& options, StateId s) {
  return !options.absorbing.empty() && s < options.absorbing.size() &&
         options.absorbing[s];
}

}  // namespace

Trajectory simulate(const CompiledModel& model, const Policy& policy, Rng& rng,
                    const SimulationOptions& options) {
  TML_REQUIRE(policy.choice_index.size() == model.num_states(),
              "simulate: policy size mismatch");
  Trajectory trajectory;
  trajectory.initial_state = model.initial_state();
  StateId current = model.initial_state();
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    if (is_absorbing(options, current)) break;
    const std::uint32_t c = policy.at(current);
    TML_REQUIRE(c < model.num_choices_of(current),
                "simulate: policy chooses missing choice");
    const std::uint32_t global = model.first_choice(current) + c;
    const StateId next = sample_successor(model, global, rng);
    trajectory.steps.push_back(
        Step{current, c, model.choice_action(global), next});
    current = next;
  }
  return trajectory;
}

Trajectory simulate(const Mdp& mdp, const Policy& policy, Rng& rng,
                    const SimulationOptions& options) {
  return simulate(compile(mdp), policy, rng, options);
}

Trajectory simulate(const CompiledModel& model, const RandomizedPolicy& policy,
                    Rng& rng, const SimulationOptions& options) {
  TML_REQUIRE(policy.choice_probabilities.size() == model.num_states(),
              "simulate: policy size mismatch");
  Trajectory trajectory;
  trajectory.initial_state = model.initial_state();
  StateId current = model.initial_state();
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    if (is_absorbing(options, current)) break;
    const auto& probs = policy.choice_probabilities[current];
    TML_REQUIRE(probs.size() == model.num_choices_of(current),
                "simulate: choice distribution size mismatch");
    const std::uint32_t c = static_cast<std::uint32_t>(rng.categorical(probs));
    const std::uint32_t global = model.first_choice(current) + c;
    const StateId next = sample_successor(model, global, rng);
    trajectory.steps.push_back(
        Step{current, c, model.choice_action(global), next});
    current = next;
  }
  return trajectory;
}

Trajectory simulate(const Mdp& mdp, const RandomizedPolicy& policy, Rng& rng,
                    const SimulationOptions& options) {
  return simulate(compile(mdp), policy, rng, options);
}

TrajectoryDataset simulate_dataset(const CompiledModel& model,
                                   const Policy& policy, Rng& rng,
                                   std::size_t count,
                                   const SimulationOptions& options) {
  TrajectoryDataset dataset;
  for (std::size_t i = 0; i < count; ++i) {
    dataset.add(simulate(model, policy, rng, options));
  }
  return dataset;
}

TrajectoryDataset simulate_dataset(const Mdp& mdp, const Policy& policy,
                                   Rng& rng, std::size_t count,
                                   const SimulationOptions& options) {
  return simulate_dataset(compile(mdp), policy, rng, count, options);
}

TrajectoryDataset simulate_dataset(const CompiledModel& model,
                                   const RandomizedPolicy& policy, Rng& rng,
                                   std::size_t count,
                                   const SimulationOptions& options) {
  TrajectoryDataset dataset;
  for (std::size_t i = 0; i < count; ++i) {
    dataset.add(simulate(model, policy, rng, options));
  }
  return dataset;
}

TrajectoryDataset simulate_dataset(const Mdp& mdp,
                                   const RandomizedPolicy& policy, Rng& rng,
                                   std::size_t count,
                                   const SimulationOptions& options) {
  return simulate_dataset(compile(mdp), policy, rng, count, options);
}

double trajectory_reward(const CompiledModel& model,
                         const Trajectory& trajectory,
                         bool count_final_state) {
  double total = 0.0;
  for (const Step& step : trajectory.steps) {
    total += model.state_reward(step.state);
    TML_REQUIRE(step.choice < model.num_choices_of(step.state),
                "trajectory_reward: invalid choice index");
    total += model.choice_reward(model.first_choice(step.state) + step.choice);
  }
  if (count_final_state) {
    total += model.state_reward(trajectory.final_state());
  }
  return total;
}

double trajectory_reward(const Mdp& mdp, const Trajectory& trajectory,
                         bool count_final_state) {
  return trajectory_reward(compile(mdp), trajectory, count_final_state);
}

}  // namespace tml
