#include "src/mdp/simulate.hpp"

namespace tml {

namespace {

StateId sample_successor(const Choice& choice, Rng& rng) {
  std::vector<double> weights;
  weights.reserve(choice.transitions.size());
  for (const Transition& t : choice.transitions) {
    weights.push_back(t.probability);
  }
  return choice.transitions[rng.categorical(weights)].target;
}

bool is_absorbing(const SimulationOptions& options, StateId s) {
  return !options.absorbing.empty() && s < options.absorbing.size() &&
         options.absorbing[s];
}

}  // namespace

Trajectory simulate(const Mdp& mdp, const Policy& policy, Rng& rng,
                    const SimulationOptions& options) {
  TML_REQUIRE(policy.choice_index.size() == mdp.num_states(),
              "simulate: policy size mismatch");
  Trajectory trajectory;
  trajectory.initial_state = mdp.initial_state();
  StateId current = mdp.initial_state();
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    if (is_absorbing(options, current)) break;
    const std::uint32_t c = policy.at(current);
    const auto& choices = mdp.choices(current);
    TML_REQUIRE(c < choices.size(), "simulate: policy chooses missing choice");
    const Choice& choice = choices[c];
    const StateId next = sample_successor(choice, rng);
    trajectory.steps.push_back(Step{current, c, choice.action, next});
    current = next;
  }
  return trajectory;
}

Trajectory simulate(const Mdp& mdp, const RandomizedPolicy& policy, Rng& rng,
                    const SimulationOptions& options) {
  TML_REQUIRE(policy.choice_probabilities.size() == mdp.num_states(),
              "simulate: policy size mismatch");
  Trajectory trajectory;
  trajectory.initial_state = mdp.initial_state();
  StateId current = mdp.initial_state();
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    if (is_absorbing(options, current)) break;
    const auto& probs = policy.choice_probabilities[current];
    const auto& choices = mdp.choices(current);
    TML_REQUIRE(probs.size() == choices.size(),
                "simulate: choice distribution size mismatch");
    const std::uint32_t c = static_cast<std::uint32_t>(rng.categorical(probs));
    const Choice& choice = choices[c];
    const StateId next = sample_successor(choice, rng);
    trajectory.steps.push_back(Step{current, c, choice.action, next});
    current = next;
  }
  return trajectory;
}

TrajectoryDataset simulate_dataset(const Mdp& mdp, const Policy& policy,
                                   Rng& rng, std::size_t count,
                                   const SimulationOptions& options) {
  TrajectoryDataset dataset;
  for (std::size_t i = 0; i < count; ++i) {
    dataset.add(simulate(mdp, policy, rng, options));
  }
  return dataset;
}

TrajectoryDataset simulate_dataset(const Mdp& mdp,
                                   const RandomizedPolicy& policy, Rng& rng,
                                   std::size_t count,
                                   const SimulationOptions& options) {
  TrajectoryDataset dataset;
  for (std::size_t i = 0; i < count; ++i) {
    dataset.add(simulate(mdp, policy, rng, options));
  }
  return dataset;
}

double trajectory_reward(const Mdp& mdp, const Trajectory& trajectory,
                         bool count_final_state) {
  double total = 0.0;
  for (const Step& step : trajectory.steps) {
    total += mdp.state_reward(step.state);
    const auto& choices = mdp.choices(step.state);
    TML_REQUIRE(step.choice < choices.size(),
                "trajectory_reward: invalid choice index");
    total += choices[step.choice].reward;
  }
  if (count_final_state) total += mdp.state_reward(trajectory.final_state());
  return total;
}

}  // namespace tml
