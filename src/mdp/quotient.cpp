#include "src/mdp/quotient.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "src/common/stats.hpp"

namespace tml {

namespace {

/// splitmix64 finalizer — the second digest stream runs every token through
/// this so the two streams stay decorrelated (two plain FNV streams with
/// different offsets share too much structure).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// 128-bit running digest of a signature token stream. Signatures are
/// compared by digest during refinement (grouping members of a block): a
/// spurious merge needs both independent 64-bit streams to collide inside
/// one block, probability ~ |block|^2 / 2^128 — negligible even at 10^6
/// states. A spurious *split* is impossible (equal token streams hash
/// equally), so determinism is unaffected.
struct Digest {
  std::uint64_t a = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t b = 0x2545f4914f6cdd1dull;

  void mix(std::uint64_t w) {
    a = (a ^ w) * 1099511628211ull;  // FNV-1a step
    b = mix64(b ^ mix64(w));
  }
  friend bool operator==(const Digest& x, const Digest& y) {
    return x.a == y.a && x.b == y.b;
  }
};

struct DigestHash {
  std::size_t operator()(const Digest& d) const {
    return static_cast<std::size_t>(d.a ^ mix64(d.b));
  }
};

struct WordVecHash {
  std::size_t operator()(const std::vector<std::uint64_t>& v) const {
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t w : v) h = (h ^ w) * 1099511628211ull;
    return static_cast<std::size_t>(h);
  }
};

/// Aggregates the transition row of global choice `c` by current block:
/// fills `dist` with (block, summed probability) sorted by block id. The
/// summation order is fixed by the CSR row order, so equal rows aggregate
/// to bitwise-equal distributions.
void aggregate_choice(const CompiledModel& m, std::uint32_t c,
                      const std::vector<std::uint32_t>& block,
                      std::vector<std::pair<std::uint32_t, double>>& dist) {
  dist.clear();
  const std::span<const StateId> targets = m.targets(c);
  const std::span<const double> probs = m.probabilities(c);
  for (std::size_t k = 0; k < targets.size(); ++k) {
    dist.emplace_back(block[targets[k]], probs[k]);
  }
  std::sort(dist.begin(), dist.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::size_t w = 0;
  for (std::size_t r = 0; r < dist.size(); ++r) {
    if (w > 0 && dist[w - 1].first == dist[r].first) {
      dist[w - 1].second += dist[r].second;
    } else {
      dist[w++] = dist[r];
    }
  }
  dist.resize(w);
}

}  // namespace

std::vector<double> lift_values(const std::vector<std::uint32_t>& state_map,
                                std::span<const double> quotient_values) {
  std::vector<double> out(state_map.size());
  for (std::size_t s = 0; s < state_map.size(); ++s) {
    out[s] = quotient_values[state_map[s]];
  }
  return out;
}

StateSet lift_states(const std::vector<std::uint32_t>& state_map,
                     const StateSet& quotient_set) {
  StateSet out(state_map.size());
  for (std::size_t s = 0; s < state_map.size(); ++s) {
    if (quotient_set[state_map[s]]) out.set(s);
  }
  return out;
}

QuotientResult bisimulation_quotient(const CompiledModel& m,
                                     const QuotientOptions& options) {
  static stats::Counter& c_runs = stats::counter("compile.quotient_runs");
  static stats::Counter& c_refines =
      stats::counter("compile.quotient_refinements");
  static stats::Counter& c_fallbacks =
      stats::counter("compile.quotient_fallbacks");
  static stats::Gauge& g_blocks = stats::gauge("compile.quotient_blocks");
  static stats::Timer& t_quotient = stats::timer("compile.quotient_time");
  const stats::ScopedTimer span(t_quotient);
  c_runs.bump();

  const std::size_t n = m.num_states();
  QuotientResult out;
  BudgetTracker tracker(options.budget);

  // ---- initial partition: exact grouping by (label bitset, state reward).
  // Label and reward splits are decided by exact key comparison, not by
  // digest, so two states with different observations can never share a
  // block regardless of hashing.
  const std::vector<std::string>& label_names = m.label_names();
  std::vector<StateSet> label_sets;
  label_sets.reserve(label_names.size());
  for (const std::string& name : label_names) {
    label_sets.push_back(m.states_with_label(name));
  }

  std::vector<std::uint32_t> block(n, 0);
  std::vector<std::vector<std::uint32_t>> members;  // per block, ascending ids
  std::uint32_t num_blocks = 0;
  {
    std::unordered_map<std::vector<std::uint64_t>, std::uint32_t, WordVecHash>
        initial_ids;
    std::vector<std::uint64_t> key;
    for (StateId s = 0; s < n; ++s) {
      key.clear();
      std::uint64_t word = 0;
      for (std::size_t l = 0; l < label_sets.size(); ++l) {
        if (label_sets[l][s]) word |= std::uint64_t{1} << (l & 63);
        if ((l & 63) == 63) {
          key.push_back(word);
          word = 0;
        }
      }
      key.push_back(word);
      key.push_back(std::bit_cast<std::uint64_t>(m.state_reward(s)));
      auto [it, inserted] = initial_ids.emplace(key, num_blocks);
      if (inserted) {
        members.emplace_back();
        ++num_blocks;
      }
      block[s] = it->second;
      members[it->second].push_back(static_cast<std::uint32_t>(s));
    }
  }

  // ---- signature refinement with a Bitset splitter queue.
  std::vector<Digest> sig(n);
  Bitset queued(n, true);  // states whose signature must be recomputed
  Bitset dirty_blocks(n, false);
  std::vector<std::uint32_t> dirty_list;
  std::vector<std::uint32_t> movers;
  std::vector<std::pair<std::uint32_t, double>> dist;
  std::vector<std::uint32_t> group_of, new_ids, keep;
  std::vector<Digest> choice_digests;
  bool complete = false;
  std::uint64_t pending_evals = 0;

  // Digest of one state's signature: the sorted, deduplicated set of
  // (choice reward, distribution-over-blocks) pairs. Action ids are not
  // part of the signature (see quotient.hpp).
  auto state_digest = [&](StateId s) {
    choice_digests.clear();
    for (std::uint32_t c = m.first_choice(s); c < m.last_choice(s); ++c) {
      aggregate_choice(m, c, block, dist);
      Digest d;
      d.mix(std::bit_cast<std::uint64_t>(m.choice_reward(c)));
      for (const auto& [b, p] : dist) {
        d.mix(b);
        d.mix(std::bit_cast<std::uint64_t>(p));
      }
      choice_digests.push_back(d);
      pending_evals += dist.size() + 1;
    }
    // Set semantics over choices: order-canonicalize and drop duplicates so
    // two states whose choice lists are permutations (or contain repeats)
    // of each other digest identically.
    std::sort(choice_digests.begin(), choice_digests.end(),
              [](const Digest& x, const Digest& y) {
                return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    choice_digests.erase(
        std::unique(choice_digests.begin(), choice_digests.end()),
        choice_digests.end());
    Digest d;
    for (const Digest& cd : choice_digests) {
      d.mix(cd.a);
      d.mix(cd.b);
    }
    return d;
  };

  while (true) {
    if (!tracker.tick()) break;  // one budget iteration per refinement round
    const bool first_round = out.iterations == 0;
    ++out.iterations;

    // Recompute signatures of queued states; collect blocks whose members
    // now disagree with their stored digest.
    dirty_list.clear();
    for (StateId s = 0; s < n && tracker.ok(); ++s) {
      if (!queued.test(s)) continue;
      const Digest d = state_digest(s);
      if (first_round || !(d == sig[s])) {
        sig[s] = d;
        if (!dirty_blocks.test(block[s])) {
          dirty_blocks.set(block[s]);
          dirty_list.push_back(block[s]);
        }
      }
      if (pending_evals >= 4096) {
        tracker.tick_evaluations(pending_evals);  // cancellation checkpoint
        pending_evals = 0;
      }
    }
    if (!tracker.ok()) break;
    if (dirty_list.empty()) {
      complete = true;
      break;
    }

    // Split every dirty block by digest. Sub-block of the first member
    // keeps the old id; the rest get fresh ids in first-occurrence order —
    // fully deterministic given the (deterministic) scan order.
    std::sort(dirty_list.begin(), dirty_list.end());
    movers.clear();
    for (std::uint32_t b : dirty_list) {
      dirty_blocks.set(b, false);
      if (members[b].size() <= 1) continue;
      std::vector<std::uint32_t> mem = std::move(members[b]);
      std::unordered_map<Digest, std::uint32_t, DigestHash> groups;
      groups.reserve(mem.size());
      group_of.clear();
      std::uint32_t num_groups = 0;
      for (std::uint32_t s : mem) {
        auto [it, inserted] = groups.emplace(sig[s], num_groups);
        if (inserted) ++num_groups;
        group_of.push_back(it->second);
      }
      if (num_groups == 1) {
        members[b] = std::move(mem);
        continue;
      }
      new_ids.assign(num_groups, 0);
      new_ids[0] = b;
      for (std::uint32_t g = 1; g < num_groups; ++g) {
        new_ids[g] = num_blocks++;
        members.emplace_back();
      }
      keep.clear();
      for (std::size_t i = 0; i < mem.size(); ++i) {
        const std::uint32_t s = mem[i];
        const std::uint32_t g = group_of[i];
        if (g == 0) {
          keep.push_back(s);
        } else {
          block[s] = new_ids[g];
          members[new_ids[g]].push_back(s);
          movers.push_back(s);
        }
      }
      members[b] = keep;
    }
    if (movers.empty()) {
      complete = true;
      break;
    }

    // Splitter queue for the next round: every CSC predecessor of a state
    // that changed block may now have a different signature. A state with a
    // self-loop is its own predecessor, so own-block moves re-enqueue too.
    queued = Bitset(n, false);
    for (std::uint32_t t : movers) {
      for (StateId p : m.predecessors(t)) queued.set(p);
    }
  }

  c_refines.add(out.iterations);
  if (!complete) {
    // The partial partition is coarser than bisimilarity — checking against
    // it could merge distinguishable states and return wrong numbers, so
    // nothing is returned and the caller degrades to the original model.
    c_fallbacks.bump();
    out.budget_stop = tracker.stop();
    return out;
  }

  // ---- canonical block numbering: ascending first-member state id. This
  // makes the pass idempotent bit-for-bit (quotienting a quotient yields
  // the identity state_map and an equal content_hash).
  constexpr std::uint32_t kUnassigned = 0xffffffffu;
  std::vector<std::uint32_t> renumber(num_blocks, kUnassigned);
  std::vector<StateId> rep;  // canonical block -> representative state
  rep.reserve(num_blocks);
  std::uint32_t next = 0;
  for (StateId s = 0; s < n; ++s) {
    if (renumber[block[s]] == kUnassigned) {
      renumber[block[s]] = next++;
      rep.push_back(s);
    }
  }
  out.state_map.resize(n);
  for (StateId s = 0; s < n; ++s) out.state_map[s] = renumber[block[s]];

  // ---- build the quotient CSR from the representatives. Each block's
  // choices are its representative's choices with targets mapped to blocks
  // and duplicate (reward, distribution) choices merged — the same set
  // semantics the signature used.
  CompiledModel q;
  q.num_states_ = next;
  q.initial_state_ = out.state_map[m.initial_state()];
  q.deterministic_ = m.deterministic();
  q.row_start_.reserve(next + 1);
  q.row_start_.push_back(0);
  q.choice_start_.push_back(0);
  q.state_reward_.reserve(next);
  std::vector<std::vector<std::uint64_t>> seen_choices;
  for (std::uint32_t b = 0; b < next; ++b) {
    const StateId s = rep[b];
    q.state_reward_.push_back(m.state_reward(s));
    seen_choices.clear();
    for (std::uint32_t c = m.first_choice(s); c < m.last_choice(s); ++c) {
      aggregate_choice(m, c, out.state_map, dist);
      std::vector<std::uint64_t> tokens;
      tokens.reserve(2 * dist.size() + 1);
      tokens.push_back(std::bit_cast<std::uint64_t>(m.choice_reward(c)));
      for (const auto& [tb, p] : dist) {
        tokens.push_back(tb);
        tokens.push_back(std::bit_cast<std::uint64_t>(p));
      }
      if (std::find(seen_choices.begin(), seen_choices.end(), tokens) !=
          seen_choices.end()) {
        continue;  // duplicate distribution under the quotient
      }
      seen_choices.push_back(std::move(tokens));
      for (const auto& [tb, p] : dist) {
        q.target_.push_back(tb);
        q.prob_.push_back(p);
      }
      q.choice_reward_.push_back(m.choice_reward(c));
      q.choice_action_.push_back(m.choice_action(c));
      q.choice_start_.push_back(static_cast<std::uint32_t>(q.target_.size()));
    }
    q.row_start_.push_back(
        static_cast<std::uint32_t>(q.choice_start_.size() - 1));
  }
  q.label_names_ = label_names;
  q.label_sets_.reserve(label_sets.size());
  for (const StateSet& set : label_sets) {
    StateSet qset(next);
    for (std::uint32_t b = 0; b < next; ++b) {
      if (set[rep[b]]) qset.set(b);
    }
    q.label_sets_.push_back(std::move(qset));
  }

  out.quotient = std::move(q);
  out.complete = true;
  g_blocks.set(static_cast<double>(next));
  return out;
}

}  // namespace tml
