#include "src/mdp/prism_parser.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "src/common/numeric.hpp"

namespace tml {

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_.compare(pos_, 2, "//") == 0) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool consume(const std::string& token) {
    skip_ws();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  /// Consumes a keyword respecting identifier boundaries.
  bool consume_word(const std::string& word) {
    skip_ws();
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    const std::size_t end = pos_ + word.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  void expect(const std::string& token) {
    if (!consume(token)) fail("expected '" + token + "'");
  }

  std::string identifier() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected identifier");
    return text_.substr(begin, pos_ - begin);
  }

  std::string quoted() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected '\"'");
    ++pos_;
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    if (pos_ >= text_.size()) fail("unterminated string");
    std::string out = text_.substr(begin, pos_ - begin);
    ++pos_;
    return out;
  }

  long integer() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const long value = std::strtol(start, &end, 10);
    if (end == start) fail("expected integer");
    pos_ += static_cast<std::size_t>(end - start);
    return value;
  }

  double number() {
    skip_ws();
    // Locale-independent parse (src/common/numeric.hpp): a PRISM file's
    // "0.5" must not read as 0 under a comma-decimal LC_NUMERIC locale,
    // which is what the strtod this replaces silently did. Reject the
    // textual forms a stochastic model never contains ("nan", "inf", and
    // overflowing literals) before they can poison the numeric engines
    // downstream.
    double value = 0.0;
    std::size_t consumed =
        parse_double(std::string_view(text_).substr(pos_), &value);
    if (consumed == 0) fail("expected number");
    if (!std::isfinite(value)) fail("number is not finite");
    pos_ += consumed;
    return value;
  }

  /// A transition probability: a finite number in [0, 1].
  double probability() {
    const double value = number();
    if (value < 0.0) fail("probability is negative");
    if (value > 1.0) fail("probability exceeds 1");
    return value;
  }

  /// A reward (rate): finite and non-negative.
  double reward() {
    const double value = number();
    if (value < 0.0) fail("reward is negative");
    return value;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  [[noreturn]] void fail(const std::string& message) const {
    // Report 1-based line and column of the current position: tooling and
    // humans both index PRISM files by line, not byte offset.
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ParseError("PRISM parse error at line " + std::to_string(line) +
                     ", column " + std::to_string(column) + ": " + message);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Dtmc PrismModel::dtmc() const {
  TML_REQUIRE(type == Type::kDtmc, "PrismModel::dtmc: model is an MDP");
  Dtmc chain(mdp.num_states());
  chain.set_initial_state(mdp.initial_state());
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    const auto& choices = mdp.choices(s);
    TML_ASSERT(choices.size() == 1, "PrismModel::dtmc: multiple choices");
    chain.set_transitions(s, choices[0].transitions);
    chain.set_state_reward(s, mdp.state_reward(s) + choices[0].reward);
    chain.set_state_name(s, mdp.state_name(s));
    for (const std::string& label : mdp.labels_of(s)) {
      chain.add_label(s, label);
    }
  }
  return chain;
}

PrismModel parse_prism(const std::string& source) {
  Lexer lex(source);

  PrismModel model;
  if (lex.consume_word("dtmc")) {
    model.type = PrismModel::Type::kDtmc;
  } else if (lex.consume_word("mdp")) {
    model.type = PrismModel::Type::kMdp;
  } else {
    lex.fail("expected model type 'dtmc' or 'mdp'");
  }

  lex.expect("module");
  (void)lex.identifier();  // module name

  // State variable: ident : [lo..hi] init k;
  const std::string var = lex.identifier();
  lex.expect(":");
  lex.expect("[");
  const long lo = lex.integer();
  lex.expect("..");
  const long hi = lex.integer();
  lex.expect("]");
  lex.expect("init");
  const long init = lex.integer();
  lex.expect(";");
  if (lo != 0 || hi < lo) lex.fail("state range must be [0..N]");
  if (init < lo || init > hi) lex.fail("initial state out of range");

  model.mdp.resize(static_cast<std::size_t>(hi + 1));
  model.mdp.set_initial_state(static_cast<StateId>(init));

  // Commands until 'endmodule'.
  while (!lex.consume_word("endmodule")) {
    lex.expect("[");
    std::string action = "tau";
    if (lex.peek() != ']') action = lex.identifier();
    lex.expect("]");
    const std::string guard_var = lex.identifier();
    if (guard_var != var) lex.fail("unknown variable '" + guard_var + "'");
    lex.expect("=");
    const long from = lex.integer();
    if (from < lo || from > hi) lex.fail("guard state out of range");
    lex.expect("->");
    std::vector<Transition> transitions;
    do {
      const double p = lex.probability();
      lex.expect(":");
      lex.expect("(");
      const std::string update_var = lex.identifier();
      if (update_var != var) lex.fail("unknown variable in update");
      lex.expect("'");
      lex.expect("=");
      const long to = lex.integer();
      if (to < lo || to > hi) lex.fail("update target out of range");
      lex.expect(")");
      transitions.push_back(
          Transition{static_cast<StateId>(to), p});
    } while (lex.consume("+"));
    lex.expect(";");
    model.mdp.add_choice(static_cast<StateId>(from), action,
                         std::move(transitions));
  }

  // Trailing blocks: `label` definitions and `rewards ... endrewards`
  // structures, in any order and any number (PRISM imposes no ordering;
  // hand-edited files routinely put rewards first). Multiple rewards
  // blocks accumulate, matching PRISM's additive reward semantics within
  // a structure.
  while (true) {
    if (lex.consume_word("label")) {
      const std::string name = lex.quoted();
      lex.expect("=");
      if (!lex.consume_word("false")) {
        do {
          lex.expect("(");
          const std::string guard_var = lex.identifier();
          if (guard_var != var) lex.fail("unknown variable in label");
          lex.expect("=");
          const long s = lex.integer();
          if (s < lo || s > hi) lex.fail("label state out of range");
          lex.expect(")");
          model.mdp.add_label(static_cast<StateId>(s), name);
        } while (lex.consume("|"));
      }
      lex.expect(";");
      continue;
    }
    if (!lex.consume_word("rewards")) break;
    // The structure name is optional — `rewards ... endrewards` without a
    // quoted name is valid PRISM.
    if (lex.peek() == '"') (void)lex.quoted();
    while (!lex.consume_word("endrewards")) {
      std::string action;
      if (lex.consume("[")) {
        action = lex.identifier();
        lex.expect("]");
      }
      const std::string guard_var = lex.identifier();
      if (guard_var != var) lex.fail("unknown variable in reward");
      lex.expect("=");
      const long s = lex.integer();
      if (s < lo || s > hi) lex.fail("reward state out of range");
      lex.expect(":");
      const double r = lex.reward();
      lex.expect(";");
      const StateId state = static_cast<StateId>(s);
      if (action.empty()) {
        model.mdp.set_state_reward(state,
                                   model.mdp.state_reward(state) + r);
      } else {
        bool matched = false;
        auto& choices = model.mdp.mutable_choices(state);
        for (Choice& choice : choices) {
          if (model.mdp.action_name(choice.action) == action) {
            choice.reward += r;
            matched = true;
          }
        }
        if (!matched) lex.fail("action reward for unknown command");
      }
    }
  }

  if (!lex.eof()) lex.fail("unexpected trailing input");

  model.mdp.validate();
  if (model.type == PrismModel::Type::kDtmc) {
    for (StateId s = 0; s < model.mdp.num_states(); ++s) {
      if (model.mdp.choices(s).size() != 1) {
        throw ModelError(
            "parse_prism: dtmc state " + std::to_string(s) +
            " has multiple commands");
      }
    }
  }
  return model;
}

}  // namespace tml
