#include "src/mdp/solver.hpp"

#include <cmath>
#include <limits>

#include "src/common/matrix.hpp"
#include "src/mdp/graph.hpp"

namespace tml {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double choice_q(const Mdp& mdp, StateId s, const Choice& c,
                std::span<const double> values, double discount) {
  double q = mdp.state_reward(s) + c.reward;
  for (const Transition& t : c.transitions) {
    if (std::isinf(values[t.target])) return kInf;
    q += discount * t.probability * values[t.target];
  }
  return q;
}

bool better(double a, double b, Objective objective) {
  return objective == Objective::kMaximize ? a > b : a < b;
}

}  // namespace

SolveResult value_iteration_discounted(const Mdp& mdp, double discount,
                                       Objective objective,
                                       const SolverOptions& options) {
  TML_REQUIRE(discount > 0.0 && discount < 1.0,
              "value_iteration_discounted: discount must be in (0,1), got "
                  << discount);
  const std::size_t n = mdp.num_states();
  SolveResult result;
  result.values.assign(n, 0.0);
  result.policy.choice_index.assign(n, 0);

  std::vector<double> next(n, 0.0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      const auto& choices = mdp.choices(s);
      double best = choice_q(mdp, s, choices[0], result.values, discount);
      std::uint32_t best_c = 0;
      for (std::uint32_t c = 1; c < choices.size(); ++c) {
        const double q = choice_q(mdp, s, choices[c], result.values, discount);
        if (better(q, best, objective)) {
          best = q;
          best_c = c;
        }
      }
      next[s] = best;
      result.policy.choice_index[s] = best_c;
      delta = std::max(delta, std::abs(next[s] - result.values[s]));
    }
    result.values.swap(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (!result.converged && options.throw_on_nonconvergence) {
    throw NumericError("value_iteration_discounted: no convergence after " +
                       std::to_string(result.iterations) + " iterations");
  }
  return result;
}

SolveResult policy_iteration_discounted(const Mdp& mdp, double discount,
                                        Objective objective,
                                        const SolverOptions& options) {
  TML_REQUIRE(discount > 0.0 && discount < 1.0,
              "policy_iteration_discounted: discount must be in (0,1)");
  mdp.validate();
  SolveResult result;
  result.policy = mdp.first_choice_policy();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Exact evaluation of the current policy.
    result.values = evaluate_policy_discounted(mdp, result.policy, discount);
    // Greedy improvement.
    Policy improved = result.policy;
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      const auto& choices = mdp.choices(s);
      double best = choice_q(mdp, s, choices[result.policy.at(s)],
                             result.values, discount);
      for (std::uint32_t c = 0; c < choices.size(); ++c) {
        const double q = choice_q(mdp, s, choices[c], result.values, discount);
        // Strict improvement with a tolerance guard against cycling.
        if (objective == Objective::kMaximize ? q > best + 1e-12
                                              : q < best - 1e-12) {
          best = q;
          improved.choice_index[s] = c;
        }
      }
    }
    if (improved.choice_index == result.policy.choice_index) {
      result.converged = true;
      return result;
    }
    result.policy = std::move(improved);
  }
  if (options.throw_on_nonconvergence) {
    throw NumericError("policy_iteration_discounted: no convergence after " +
                       std::to_string(result.iterations) + " iterations");
  }
  return result;
}

SolveResult total_reward_to_target(const Mdp& mdp, const StateSet& targets,
                                   Objective objective,
                                   const SolverOptions& options) {
  TML_REQUIRE(targets.size() == mdp.num_states(),
              "total_reward_to_target: target set size mismatch");
  const std::size_t n = mdp.num_states();

  // Finite-value region: Rmin needs some scheduler reaching almost surely
  // (Prob1E); Rmax needs all schedulers reaching almost surely (Prob1A) —
  // PRISM semantics, where a path missing the target carries infinite reward.
  const StateSet finite = objective == Objective::kMinimize
                              ? prob1_existential(mdp, targets)
                              : prob1_universal(mdp, targets);

  SolveResult result;
  result.values.assign(n, 0.0);
  result.policy.choice_index.assign(n, 0);
  for (StateId s = 0; s < n; ++s) {
    if (!finite[s]) result.values[s] = kInf;
    if (targets[s]) result.values[s] = 0.0;
  }

  std::vector<double> next = result.values;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      if (targets[s] || !finite[s]) continue;
      const auto& choices = mdp.choices(s);
      double best = kInf * (objective == Objective::kMinimize ? 1.0 : -1.0);
      std::uint32_t best_c = result.policy.choice_index[s];
      bool any = false;
      for (std::uint32_t c = 0; c < choices.size(); ++c) {
        const double q = choice_q(mdp, s, choices[c], result.values, 1.0);
        if (!any || better(q, best, objective)) {
          best = q;
          best_c = c;
          any = true;
        }
      }
      next[s] = best;
      result.policy.choice_index[s] = best_c;
      if (std::isfinite(best) && std::isfinite(result.values[s])) {
        delta = std::max(delta, std::abs(next[s] - result.values[s]));
      } else if (std::isinf(best) != std::isinf(result.values[s])) {
        delta = kInf;
      }
    }
    result.values.swap(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (!result.converged && options.throw_on_nonconvergence) {
    throw NumericError("total_reward_to_target: no convergence after " +
                       std::to_string(result.iterations) + " iterations");
  }
  return result;
}

std::vector<std::vector<double>> q_values_discounted(
    const Mdp& mdp, std::span<const double> values, double discount) {
  TML_REQUIRE(values.size() == mdp.num_states(),
              "q_values_discounted: value vector size mismatch");
  std::vector<std::vector<double>> q(mdp.num_states());
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    const auto& choices = mdp.choices(s);
    q[s].resize(choices.size());
    for (std::uint32_t c = 0; c < choices.size(); ++c) {
      q[s][c] = choice_q(mdp, s, choices[c], values, discount);
    }
  }
  return q;
}

Policy greedy_policy(const std::vector<std::vector<double>>& q,
                     Objective objective) {
  Policy policy;
  policy.choice_index.resize(q.size());
  for (std::size_t s = 0; s < q.size(); ++s) {
    TML_REQUIRE(!q[s].empty(), "greedy_policy: state " << s << " has no Q row");
    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c < q[s].size(); ++c) {
      if (better(q[s][c], q[s][best], objective)) best = c;
    }
    policy.choice_index[s] = best;
  }
  return policy;
}

std::vector<double> evaluate_policy_discounted(const Mdp& mdp,
                                               const Policy& policy,
                                               double discount) {
  TML_REQUIRE(discount > 0.0 && discount < 1.0,
              "evaluate_policy_discounted: discount out of (0,1)");
  const Dtmc chain = mdp.induced_dtmc(policy);
  const std::size_t n = chain.num_states();
  // Solve (I − γP) v = r.
  Matrix a = Matrix::identity(n);
  std::vector<double> b(n);
  for (StateId s = 0; s < n; ++s) {
    b[s] = chain.state_reward(s);
    for (const Transition& t : chain.transitions(s)) {
      a(s, t.target) -= discount * t.probability;
    }
  }
  return solve_linear_system(std::move(a), std::move(b));
}

std::vector<double> dtmc_total_reward(const Dtmc& chain,
                                      const StateSet& targets) {
  TML_REQUIRE(targets.size() == chain.num_states(),
              "dtmc_total_reward: target set size mismatch");
  const std::size_t n = chain.num_states();
  const StateSet certain = dtmc_prob1(chain, targets);

  // Unknowns: non-target states that reach the target almost surely. Such
  // states only transition into other almost-sure states, so the restricted
  // system is closed.
  std::vector<int> index(n, -1);
  std::vector<StateId> unknowns;
  for (StateId s = 0; s < n; ++s) {
    if (certain[s] && !targets[s]) {
      index[s] = static_cast<int>(unknowns.size());
      unknowns.push_back(s);
    }
  }

  std::vector<double> values(n, kInf);
  for (StateId s = 0; s < n; ++s) {
    if (targets[s]) values[s] = 0.0;
  }
  if (unknowns.empty()) return values;

  Matrix a = Matrix::identity(unknowns.size());
  std::vector<double> b(unknowns.size());
  for (std::size_t i = 0; i < unknowns.size(); ++i) {
    const StateId s = unknowns[i];
    b[i] = chain.state_reward(s);
    for (const Transition& t : chain.transitions(s)) {
      if (targets[t.target]) continue;  // pinned to 0
      TML_ASSERT(index[t.target] >= 0,
                 "dtmc_total_reward: almost-sure state leaks into "
                 "non-almost-sure state "
                     << t.target);
      a(i, static_cast<std::size_t>(index[t.target])) -= t.probability;
    }
  }
  const std::vector<double> x = solve_linear_system(std::move(a), std::move(b));
  for (std::size_t i = 0; i < unknowns.size(); ++i) values[unknowns[i]] = x[i];
  return values;
}

std::vector<double> dtmc_reachability(const Dtmc& chain,
                                      const StateSet& targets) {
  TML_REQUIRE(targets.size() == chain.num_states(),
              "dtmc_reachability: target set size mismatch");
  const std::size_t n = chain.num_states();
  const StateSet zero = dtmc_prob0(chain, targets);
  const StateSet one = dtmc_prob1(chain, targets);

  std::vector<int> index(n, -1);
  std::vector<StateId> unknowns;
  for (StateId s = 0; s < n; ++s) {
    if (!zero[s] && !one[s]) {
      index[s] = static_cast<int>(unknowns.size());
      unknowns.push_back(s);
    }
  }

  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (one[s]) values[s] = 1.0;
  }
  if (unknowns.empty()) return values;

  Matrix a = Matrix::identity(unknowns.size());
  std::vector<double> b(unknowns.size(), 0.0);
  for (std::size_t i = 0; i < unknowns.size(); ++i) {
    const StateId s = unknowns[i];
    for (const Transition& t : chain.transitions(s)) {
      if (one[t.target]) {
        b[i] += t.probability;
      } else if (!zero[t.target]) {
        a(i, static_cast<std::size_t>(index[t.target])) -= t.probability;
      }
    }
  }
  const std::vector<double> x = solve_linear_system(std::move(a), std::move(b));
  for (std::size_t i = 0; i < unknowns.size(); ++i) values[unknowns[i]] = x[i];
  return values;
}

}  // namespace tml
