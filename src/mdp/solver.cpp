#include "src/mdp/solver.hpp"

#include <atomic>
#include <cmath>
#include <limits>

#include "src/common/fault.hpp"
#include "src/common/matrix.hpp"
#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"
#include "src/mdp/graph.hpp"

namespace tml {

namespace {

std::atomic<SolveMethod> g_default_method{SolveMethod::kIntervalTopological};

}  // namespace

SolveMethod default_solve_method() {
  return g_default_method.load(std::memory_order_relaxed);
}

void set_default_solve_method(SolveMethod method) {
  g_default_method.store(method, std::memory_order_relaxed);
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared recording for every value-iteration style loop (VI/PI variants
/// report through the same checker-facing metric names).
void record_vi_stats(std::size_t iterations, double last_delta) {
  static stats::Counter& c_iters = stats::counter("checker.vi.iterations");
  static stats::Gauge& g_delta = stats::gauge("checker.vi.last_delta");
  c_iters.add(iterations);
  g_delta.set(last_delta);
}

void record_prob01_stats(const StateSet& zero, const StateSet& one) {
  if (!stats::enabled()) return;  // skip the popcounts entirely
  static stats::Gauge& g_zero = stats::gauge("checker.prob0.states");
  static stats::Gauge& g_one = stats::gauge("checker.prob1.states");
  g_zero.set(static_cast<double>(count(zero)));
  g_one.set(static_cast<double>(count(one)));
}

/// Q-value of global choice c of state s over the CSR columns.
double choice_q(const CompiledModel& m, StateId s, std::uint32_t c,
                std::span<const double> values, double discount) {
  const auto& choice_start = m.choice_start();
  const auto& target = m.target();
  const auto& prob = m.prob();
  double q = m.state_reward(s) + m.choice_reward(c);
  for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
    if (std::isinf(values[target[k]])) return kInf;
    q += discount * prob[k] * values[target[k]];
  }
  return q;
}

bool better(double a, double b, Objective objective) {
  return objective == Objective::kMaximize ? a > b : a < b;
}

/// Copies the tracker's exhaustion verdict onto a result. Returns true
/// when the budget fired (caller stops at this checkpoint).
bool flag_if_exhausted(const BudgetTracker& tracker, SolveResult* result) {
  if (tracker.ok()) return false;
  result->budget_status = BudgetStatus::kBudgetExhausted;
  result->budget_stop = tracker.stop();
  return true;
}

}  // namespace

SolveResult value_iteration_discounted(const CompiledModel& model,
                                       double discount, Objective objective,
                                       const SolverOptions& options) {
  TML_REQUIRE(discount > 0.0 && discount < 1.0,
              "value_iteration_discounted: discount must be in (0,1), got "
                  << discount);
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  SolveResult result;
  result.values.assign(n, 0.0);
  result.policy.choice_index.assign(n, 0);
  // Warm seed: the discounted Bellman operator is a γ-contraction with a
  // unique fixpoint, so ANY finite seed converges to the same values — a
  // previous solution after a small perturbation just gets there in far
  // fewer sweeps. No certification needed (unlike the undiscounted
  // reachability engines).
  if (options.warm != nullptr && options.warm->values.size() == n) {
    result.values = options.warm->values;
  }

  // Jacobi sweeps: every state reads `values` (the previous iterate) and
  // writes only its own slot of `next` / the policy, so chunks are
  // independent. The convergence delta is a max-reduction — associativity
  // free — so the iterate sequence matches the serial solver bit for bit.
  std::vector<double> next(n, 0.0);
  double last_delta = 0.0;
  BudgetTracker tracker(options.budget);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (!tracker.tick()) {
      flag_if_exhausted(tracker, &result);
      break;
    }
    const double delta = parallel_transform_reduce(
        std::size_t{0}, n, kDefaultGrain, 0.0,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          double local = 0.0;
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            const std::uint32_t begin = row_start[s];
            const std::uint32_t end = row_start[s + 1];
            double best = choice_q(model, s, begin, result.values, discount);
            std::uint32_t best_c = 0;
            for (std::uint32_t c = begin + 1; c < end; ++c) {
              const double q = choice_q(model, s, c, result.values, discount);
              if (better(q, best, objective)) {
                best = q;
                best_c = c - begin;
              }
            }
            next[s] = best;
            result.policy.choice_index[s] = best_c;
            local = std::max(local, std::abs(next[s] - result.values[s]));
          }
          return local;
        },
        [](double a, double b) { return std::max(a, b); }, options.threads);
    result.values.swap(next);
    result.iterations = iter + 1;
    last_delta = fault::poison("solver.sweep", delta);
    if (std::isnan(last_delta)) {
      throw NumericError(
          "value_iteration_discounted: non-finite sweep delta at iteration " +
          std::to_string(result.iterations));
    }
    if (last_delta < options.tolerance && !fault::fire("checker.converge")) {
      result.converged = true;
      break;
    }
  }
  record_vi_stats(result.iterations, last_delta);
  if (!result.converged && result.budget_status == BudgetStatus::kOk &&
      options.throw_on_nonconvergence) {
    throw NumericError("value_iteration_discounted: no convergence after " +
                       std::to_string(result.iterations) + " iterations");
  }
  return result;
}

SolveResult value_iteration_discounted(const Mdp& mdp, double discount,
                                       Objective objective,
                                       const SolverOptions& options) {
  return value_iteration_discounted(compile(mdp), discount, objective,
                                    options);
}

SolveResult policy_iteration_discounted(const CompiledModel& model,
                                        double discount, Objective objective,
                                        const SolverOptions& options) {
  TML_REQUIRE(discount > 0.0 && discount < 1.0,
              "policy_iteration_discounted: discount must be in (0,1)");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  SolveResult result;
  result.policy.choice_index.assign(n, 0);

  BudgetTracker tracker(options.budget);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (!tracker.tick()) {
      flag_if_exhausted(tracker, &result);
      if (result.values.empty()) {
        // Budget fired before the first evaluation: still return a
        // well-formed (all-zero) value vector for the initial policy.
        result.values.assign(n, 0.0);
      }
      break;
    }
    result.iterations = iter + 1;
    // Exact evaluation of the current policy.
    result.values = evaluate_policy_discounted(model, result.policy, discount);
    // Greedy improvement (per-state, against the fixed evaluation — chunks
    // are independent).
    Policy improved = result.policy;
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            const std::uint32_t begin = row_start[s];
            const std::uint32_t end = row_start[s + 1];
            double best = choice_q(model, s, begin + result.policy.at(s),
                                   result.values, discount);
            for (std::uint32_t c = begin; c < end; ++c) {
              const double q = choice_q(model, s, c, result.values, discount);
              // Strict improvement with a tolerance guard against cycling.
              if (objective == Objective::kMaximize ? q > best + 1e-12
                                                    : q < best - 1e-12) {
                best = q;
                improved.choice_index[s] = c - begin;
              }
            }
          }
        },
        options.threads);
    if (improved.choice_index == result.policy.choice_index) {
      result.converged = true;
      break;
    }
    result.policy = std::move(improved);
  }
  static stats::Counter& c_pi_iters = stats::counter("checker.pi.iterations");
  c_pi_iters.add(result.iterations);
  if (result.converged || result.budget_status == BudgetStatus::kBudgetExhausted) {
    return result;
  }
  if (options.throw_on_nonconvergence) {
    throw NumericError("policy_iteration_discounted: no convergence after " +
                       std::to_string(result.iterations) + " iterations");
  }
  return result;
}

SolveResult policy_iteration_discounted(const Mdp& mdp, double discount,
                                        Objective objective,
                                        const SolverOptions& options) {
  return policy_iteration_discounted(compile(mdp), discount, objective,
                                     options);
}

SolveResult total_reward_to_target(const CompiledModel& model,
                                   const StateSet& targets,
                                   Objective objective,
                                   const SolverOptions& options) {
  TML_REQUIRE(targets.size() == model.num_states(),
              "total_reward_to_target: target set size mismatch");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();

  // Finite-value region: Rmin needs some scheduler reaching almost surely
  // (Prob1E); Rmax needs all schedulers reaching almost surely (Prob1A) —
  // PRISM semantics, where a path missing the target carries infinite reward.
  const StateSet finite = objective == Objective::kMinimize
                              ? prob1_existential(model, targets)
                              : prob1_universal(model, targets);

  SolveResult result;
  result.values.assign(n, 0.0);
  result.policy.choice_index.assign(n, 0);
  for (StateId s = 0; s < n; ++s) {
    if (!finite[s]) result.values[s] = kInf;
    if (targets[s]) result.values[s] = 0.0;
  }

  std::vector<double> next = result.values;
  double last_delta = 0.0;
  BudgetTracker tracker(options.budget);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (!tracker.tick()) {
      flag_if_exhausted(tracker, &result);
      break;
    }
    const double delta = parallel_transform_reduce(
        std::size_t{0}, n, kDefaultGrain, 0.0,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          double local = 0.0;
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            if (targets[s] || !finite[s]) continue;
            const std::uint32_t begin = row_start[s];
            const std::uint32_t end = row_start[s + 1];
            double best =
                kInf * (objective == Objective::kMinimize ? 1.0 : -1.0);
            std::uint32_t best_c = result.policy.choice_index[s];
            bool any = false;
            for (std::uint32_t c = begin; c < end; ++c) {
              const double q = choice_q(model, s, c, result.values, 1.0);
              if (!any || better(q, best, objective)) {
                best = q;
                best_c = c - begin;
                any = true;
              }
            }
            next[s] = best;
            result.policy.choice_index[s] = best_c;
            if (std::isfinite(best) && std::isfinite(result.values[s])) {
              local = std::max(local, std::abs(next[s] - result.values[s]));
            } else if (std::isinf(best) != std::isinf(result.values[s])) {
              local = kInf;
            }
          }
          return local;
        },
        [](double a, double b) { return std::max(a, b); }, options.threads);
    result.values.swap(next);
    result.iterations = iter + 1;
    // +Inf deltas are expected while infinite-value information propagates;
    // NaN never is (it would silently burn max_iterations).
    last_delta = fault::poison("solver.sweep", delta);
    if (std::isnan(last_delta)) {
      throw NumericError(
          "total_reward_to_target: NaN sweep delta at iteration " +
          std::to_string(result.iterations));
    }
    if (last_delta < options.tolerance && !fault::fire("checker.converge")) {
      result.converged = true;
      break;
    }
  }
  record_vi_stats(result.iterations, last_delta);
  if (!result.converged && result.budget_status == BudgetStatus::kOk &&
      options.throw_on_nonconvergence) {
    throw NumericError("total_reward_to_target: no convergence after " +
                       std::to_string(result.iterations) + " iterations");
  }
  return result;
}

SolveResult total_reward_to_target(const Mdp& mdp, const StateSet& targets,
                                   Objective objective,
                                   const SolverOptions& options) {
  return total_reward_to_target(compile(mdp), targets, objective, options);
}

std::vector<std::vector<double>> q_values_discounted(
    const CompiledModel& model, std::span<const double> values,
    double discount, std::size_t threads) {
  TML_REQUIRE(values.size() == model.num_states(),
              "q_values_discounted: value vector size mismatch");
  const auto& row_start = model.row_start();
  std::vector<std::vector<double>> q(model.num_states());
  parallel_for(
      0, model.num_states(), kDefaultGrain,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (StateId s = chunk_begin; s < chunk_end; ++s) {
          const std::uint32_t begin = row_start[s];
          const std::uint32_t end = row_start[s + 1];
          q[s].resize(end - begin);
          for (std::uint32_t c = begin; c < end; ++c) {
            q[s][c - begin] = choice_q(model, s, c, values, discount);
          }
        }
      },
      threads);
  return q;
}

std::vector<std::vector<double>> q_values_discounted(
    const Mdp& mdp, std::span<const double> values, double discount,
    std::size_t threads) {
  return q_values_discounted(compile(mdp), values, discount, threads);
}

Policy greedy_policy(const std::vector<std::vector<double>>& q,
                     Objective objective) {
  Policy policy;
  policy.choice_index.resize(q.size());
  for (std::size_t s = 0; s < q.size(); ++s) {
    TML_REQUIRE(!q[s].empty(), "greedy_policy: state " << s << " has no Q row");
    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c < q[s].size(); ++c) {
      if (better(q[s][c], q[s][best], objective)) best = c;
    }
    policy.choice_index[s] = best;
  }
  return policy;
}

std::vector<double> evaluate_policy_discounted(const CompiledModel& model,
                                               const Policy& policy,
                                               double discount) {
  TML_REQUIRE(discount > 0.0 && discount < 1.0,
              "evaluate_policy_discounted: discount out of (0,1)");
  TML_REQUIRE(policy.choice_index.size() == model.num_states(),
              "evaluate_policy_discounted: policy size mismatch");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  // Solve (I − γP) v = r over the policy-selected rows.
  Matrix a = Matrix::identity(n);
  std::vector<double> b(n);
  for (StateId s = 0; s < n; ++s) {
    const std::uint32_t c = row_start[s] + policy.at(s);
    TML_REQUIRE(c < row_start[s + 1],
                "evaluate_policy_discounted: policy chooses missing choice "
                    << policy.at(s) << " in state " << s);
    b[s] = model.state_reward(s) + model.choice_reward(c);
    for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
      a(s, target[k]) -= discount * prob[k];
    }
  }
  return solve_linear_system(std::move(a), std::move(b));
}

std::vector<double> evaluate_policy_discounted(const Mdp& mdp,
                                               const Policy& policy,
                                               double discount) {
  return evaluate_policy_discounted(compile(mdp), policy, discount);
}

std::vector<double> dtmc_total_reward(const CompiledModel& model,
                                      const StateSet& targets) {
  TML_REQUIRE(model.deterministic(),
              "dtmc_total_reward: compiled model is not a DTMC");
  TML_REQUIRE(targets.size() == model.num_states(),
              "dtmc_total_reward: target set size mismatch");
  const std::size_t n = model.num_states();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  const StateSet certain = dtmc_prob1(model, targets);

  // Unknowns: non-target states that reach the target almost surely. Such
  // states only transition into other almost-sure states, so the restricted
  // system is closed.
  std::vector<int> index(n, -1);
  std::vector<StateId> unknowns;
  for (StateId s = 0; s < n; ++s) {
    if (certain[s] && !targets[s]) {
      index[s] = static_cast<int>(unknowns.size());
      unknowns.push_back(s);
    }
  }

  std::vector<double> values(n, kInf);
  for (StateId s = 0; s < n; ++s) {
    if (targets[s]) values[s] = 0.0;
  }
  if (unknowns.empty()) return values;

  Matrix a = Matrix::identity(unknowns.size());
  std::vector<double> b(unknowns.size());
  for (std::size_t i = 0; i < unknowns.size(); ++i) {
    const StateId s = unknowns[i];
    b[i] = model.state_reward(s);
    for (std::uint32_t k = choice_start[s]; k < choice_start[s + 1]; ++k) {
      if (targets[target[k]]) continue;  // pinned to 0
      TML_ASSERT(index[target[k]] >= 0,
                 "dtmc_total_reward: almost-sure state leaks into "
                 "non-almost-sure state "
                     << target[k]);
      a(i, static_cast<std::size_t>(index[target[k]])) -= prob[k];
    }
  }
  const std::vector<double> x = solve_linear_system(std::move(a), std::move(b));
  for (std::size_t i = 0; i < unknowns.size(); ++i) values[unknowns[i]] = x[i];
  return values;
}

std::vector<double> dtmc_total_reward(const Dtmc& chain,
                                      const StateSet& targets) {
  return dtmc_total_reward(compile(chain), targets);
}

std::vector<double> dtmc_reachability(const CompiledModel& model,
                                      const StateSet& targets) {
  TML_REQUIRE(model.deterministic(),
              "dtmc_reachability: compiled model is not a DTMC");
  TML_REQUIRE(targets.size() == model.num_states(),
              "dtmc_reachability: target set size mismatch");
  const std::size_t n = model.num_states();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  const StateSet zero = dtmc_prob0(model, targets);
  const StateSet one = dtmc_prob1(model, targets);
  record_prob01_stats(zero, one);

  std::vector<int> index(n, -1);
  std::vector<StateId> unknowns;
  for (StateId s = 0; s < n; ++s) {
    if (!zero[s] && !one[s]) {
      index[s] = static_cast<int>(unknowns.size());
      unknowns.push_back(s);
    }
  }

  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (one[s]) values[s] = 1.0;
  }
  if (unknowns.empty()) return values;

  Matrix a = Matrix::identity(unknowns.size());
  std::vector<double> b(unknowns.size(), 0.0);
  for (std::size_t i = 0; i < unknowns.size(); ++i) {
    const StateId s = unknowns[i];
    for (std::uint32_t k = choice_start[s]; k < choice_start[s + 1]; ++k) {
      if (one[target[k]]) {
        b[i] += prob[k];
      } else if (!zero[target[k]]) {
        a(i, static_cast<std::size_t>(index[target[k]])) -= prob[k];
      }
    }
  }
  const std::vector<double> x = solve_linear_system(std::move(a), std::move(b));
  for (std::size_t i = 0; i < unknowns.size(); ++i) values[unknowns[i]] = x[i];
  return values;
}

std::vector<double> dtmc_reachability(const Dtmc& chain,
                                      const StateSet& targets) {
  return dtmc_reachability(compile(chain), targets);
}

}  // namespace tml
