// Core model types: MDP, DTMC, policies.
//
// The paper's models are finite MDPs M = (S, A, R, P, L) (§II): finite
// states, finitely many action choices per state, transition distributions
// P(s'|s,a), rewards R (we support both state rewards and action rewards —
// the WSN case study charges one unit per forwarding *attempt*, an action
// reward), and a labeling L of states with atomic propositions used by PCTL.
//
// A DTMC is the special case with exactly one choice per state; the checker
// treats them separately because the algorithms differ (linear system vs.
// min/max value iteration). `Mdp::induced_dtmc` connects the two: fixing a
// memoryless deterministic policy turns an MDP into a DTMC.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bitset.hpp"
#include "src/common/error.hpp"

namespace tml {

using StateId = std::uint32_t;
using ActionId = std::uint32_t;

/// One probabilistic edge of a transition distribution.
struct Transition {
  StateId target = 0;
  double probability = 0.0;
};

/// One enabled action in a state: the action id, the reward earned for
/// taking it, and the distribution over successor states.
struct Choice {
  ActionId action = 0;
  double reward = 0.0;
  std::vector<Transition> transitions;
};

/// Set of states identified by a bit per state (word-packed; see
/// src/common/bitset.hpp for the set-algebra helpers complement /
/// set_union / set_intersection / count / empty).
using StateSet = Bitset;

/// Memoryless deterministic policy: for each state, the index of the chosen
/// entry in that state's choice list (NOT the action id — a state may enable
/// the same action id at most once, but indices are always well defined).
struct Policy {
  std::vector<std::uint32_t> choice_index;

  std::uint32_t at(StateId s) const {
    TML_REQUIRE(s < choice_index.size(), "Policy: state out of range");
    return choice_index[s];
  }
};

/// Memoryless randomized policy: per state, a distribution over the state's
/// choices. Used by max-entropy IRL, where the soft-optimal policy is
/// stochastic.
struct RandomizedPolicy {
  std::vector<std::vector<double>> choice_probabilities;
};

class Dtmc;

/// Finite Markov decision process with labels and rewards.
///
/// Construction: create with the number of states (or use `add_state`),
/// populate choices with `add_choice`, label states with `add_label`, then
/// call `validate()` once before handing the model to any algorithm.
class Mdp {
 public:
  Mdp() = default;
  explicit Mdp(std::size_t num_states) { resize(num_states); }

  // -- structure ----------------------------------------------------------

  std::size_t num_states() const { return states_.size(); }
  StateId add_state(const std::string& name = "");
  void resize(std::size_t num_states);

  StateId initial_state() const { return initial_state_; }
  void set_initial_state(StateId s);

  /// Registers (or looks up) an action name and returns its id.
  ActionId declare_action(const std::string& name);
  const std::string& action_name(ActionId a) const;
  std::size_t num_actions() const { return action_names_.size(); }

  /// Adds a choice to `state`; transition probabilities must sum to 1.
  /// Returns the index of the new choice within the state.
  std::uint32_t add_choice(StateId state, ActionId action,
                           std::vector<Transition> transitions,
                           double action_reward = 0.0);
  std::uint32_t add_choice(StateId state, const std::string& action,
                           std::vector<Transition> transitions,
                           double action_reward = 0.0);

  const std::vector<Choice>& choices(StateId state) const;
  std::vector<Choice>& mutable_choices(StateId state);

  /// Total number of (state, choice) pairs.
  std::size_t num_choices() const;

  // -- rewards ------------------------------------------------------------

  void set_state_reward(StateId state, double reward);
  double state_reward(StateId state) const;
  const std::vector<double>& state_rewards() const { return state_rewards_; }

  // -- labels -------------------------------------------------------------

  void add_label(StateId state, const std::string& label);
  bool has_label(StateId state, const std::string& label) const;

  /// Returns the bitset of states carrying `label` (all-false if the label
  /// was never used).
  StateSet states_with_label(const std::string& label) const;
  std::vector<std::string> labels_of(StateId state) const;
  std::vector<std::string> all_labels() const;

  // -- names --------------------------------------------------------------

  const std::string& state_name(StateId state) const;
  void set_state_name(StateId state, const std::string& name);
  /// Looks up a state by name; throws if absent or ambiguous.
  StateId state_by_name(const std::string& name) const;

  // -- semantics ----------------------------------------------------------

  /// Checks structural sanity: at least one state, every state has >= 1
  /// choice, every distribution sums to 1 within `tol`, probabilities are in
  /// [0,1], every target index is valid. Throws ModelError on violation.
  void validate(double tol = 1e-9) const;

  /// The DTMC obtained by resolving every state with the policy.
  /// State ids, rewards and labels carry over; the action reward of the
  /// chosen choice is added to the state reward of the DTMC.
  Dtmc induced_dtmc(const Policy& policy) const;

  /// The DTMC induced by a randomized policy (transition probabilities and
  /// rewards are mixed according to the choice distribution).
  Dtmc induced_dtmc(const RandomizedPolicy& policy) const;

  /// The policy choosing choice 0 everywhere (useful as a VI seed).
  Policy first_choice_policy() const;

  /// The uniform randomized policy.
  RandomizedPolicy uniform_policy() const;

 private:
  struct StateData {
    std::string name;
    std::vector<Choice> choices;
    std::vector<std::uint32_t> labels;  // indices into label_names_
  };

  std::uint32_t label_id(const std::string& label);

  std::vector<StateData> states_;
  std::vector<double> state_rewards_;
  StateId initial_state_ = 0;
  std::vector<std::string> action_names_;
  std::unordered_map<std::string, ActionId> action_ids_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, std::uint32_t> label_ids_;
};

/// Discrete-time Markov chain: exactly one distribution per state.
///
/// Implemented as a thin facade with the same label/reward machinery as Mdp
/// but a single transition row per state.
class Dtmc {
 public:
  Dtmc() = default;
  explicit Dtmc(std::size_t num_states);

  std::size_t num_states() const { return rows_.size(); }
  StateId add_state(const std::string& name = "");

  StateId initial_state() const { return initial_state_; }
  void set_initial_state(StateId s);

  /// Sets the full transition row of a state (must sum to 1).
  void set_transitions(StateId state, std::vector<Transition> transitions);
  const std::vector<Transition>& transitions(StateId state) const;

  void set_state_reward(StateId state, double reward);
  double state_reward(StateId state) const;
  const std::vector<double>& state_rewards() const { return state_rewards_; }

  void add_label(StateId state, const std::string& label);
  bool has_label(StateId state, const std::string& label) const;
  StateSet states_with_label(const std::string& label) const;
  std::vector<std::string> labels_of(StateId state) const;
  std::vector<std::string> all_labels() const;

  const std::string& state_name(StateId state) const;
  void set_state_name(StateId state, const std::string& name);
  StateId state_by_name(const std::string& name) const;

  void validate(double tol = 1e-9) const;

  /// View of this chain as a one-choice-per-state MDP (used to share checker
  /// plumbing where convenient).
  Mdp as_mdp() const;

 private:
  struct Row {
    std::string name;
    std::vector<Transition> transitions;
    std::vector<std::uint32_t> labels;
  };

  std::uint32_t label_id(const std::string& label);

  std::vector<Row> rows_;
  std::vector<double> state_rewards_;
  StateId initial_state_ = 0;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, std::uint32_t> label_ids_;
};

}  // namespace tml
