#include "src/mdp/trajectory.hpp"

#include <sstream>

namespace tml {

std::vector<StateId> Trajectory::state_sequence() const {
  std::vector<StateId> seq;
  seq.reserve(steps.size() + 1);
  seq.push_back(initial_state);
  for (const Step& step : steps) seq.push_back(step.next_state);
  return seq;
}

bool Trajectory::visits(const StateSet& set) const {
  if (initial_state < set.size() && set[initial_state]) return true;
  for (const Step& step : steps) {
    if (step.next_state < set.size() && set[step.next_state]) return true;
  }
  return false;
}

std::string Trajectory::to_string(const Mdp& mdp) const {
  auto name = [&](StateId s) {
    const std::string& n = mdp.state_name(s);
    return n.empty() ? "s" + std::to_string(s) : n;
  };
  std::ostringstream os;
  StateId current = initial_state;
  for (const Step& step : steps) {
    os << "(" << name(current) << "," << mdp.action_name(step.action) << ") -> ";
    current = step.next_state;
  }
  os << name(current);
  return os.str();
}

void TrajectoryDataset::add(Trajectory trajectory, double weight) {
  TML_REQUIRE(weight >= 0.0, "TrajectoryDataset: negative weight");
  if (weights.empty() && !trajectories.empty() && weight != 1.0) {
    weights.assign(trajectories.size(), 1.0);
  }
  trajectories.push_back(std::move(trajectory));
  if (!weights.empty() || weight != 1.0) {
    if (weights.empty()) weights.assign(trajectories.size() - 1, 1.0);
    weights.push_back(weight);
  }
}

}  // namespace tml
