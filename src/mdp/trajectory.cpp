#include "src/mdp/trajectory.hpp"

#include <istream>
#include <sstream>
#include <unordered_map>

#include "src/common/numeric.hpp"

namespace tml {

std::vector<StateId> Trajectory::state_sequence() const {
  std::vector<StateId> seq;
  seq.reserve(steps.size() + 1);
  seq.push_back(initial_state);
  for (const Step& step : steps) seq.push_back(step.next_state);
  return seq;
}

bool Trajectory::visits(const StateSet& set) const {
  if (initial_state < set.size() && set[initial_state]) return true;
  for (const Step& step : steps) {
    if (step.next_state < set.size() && set[step.next_state]) return true;
  }
  return false;
}

std::string Trajectory::to_string(const Mdp& mdp) const {
  auto name = [&](StateId s) {
    const std::string& n = mdp.state_name(s);
    return n.empty() ? "s" + std::to_string(s) : n;
  };
  std::ostringstream os;
  StateId current = initial_state;
  for (const Step& step : steps) {
    os << "(" << name(current) << "," << mdp.action_name(step.action) << ") -> ";
    current = step.next_state;
  }
  os << name(current);
  return os.str();
}

namespace {

/// Resolves a state token against the chain's names, falling back to a
/// plain numeric id.
StateId resolve_state(
    const std::unordered_map<std::string, StateId>& by_name,
    const std::string& token, std::size_t num_states, std::size_t line) {
  const auto it = by_name.find(token);
  if (it != by_name.end()) return it->second;
  std::size_t pos = 0;
  unsigned long id = 0;
  try {
    id = std::stoul(token, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != token.size() || id >= num_states) {
    throw ModelError("parse_trajectory_batches: line " + std::to_string(line) +
                     ": unknown state '" + token + "'");
  }
  return static_cast<StateId>(id);
}

}  // namespace

std::vector<TrajectoryDataset> parse_trajectory_batches(std::istream& in,
                                                        const Dtmc& chain) {
  std::unordered_map<std::string, StateId> by_name;
  for (StateId s = 0; s < chain.num_states(); ++s) {
    const std::string& name = chain.state_name(s);
    if (!name.empty()) by_name.emplace(name, s);
  }

  std::vector<TrajectoryDataset> batches;
  TrajectoryDataset batch;
  auto flush = [&] {
    if (batch.size() > 0) batches.push_back(std::move(batch));
    batch = TrajectoryDataset{};
  };

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::vector<std::string> tokens;
    for (std::string token; line >> token;) tokens.push_back(std::move(token));
    if (tokens.empty()) continue;
    if (tokens.size() == 1 && tokens.front() == "---") {
      flush();
      continue;
    }

    double weight = 1.0;
    // Any '*'-prefixed last token is a weight spec — a bare "*" is a
    // malformed weight, not a state named "*".
    if (!tokens.back().empty() && tokens.back().front() == '*') {
      // Validated-number path (src/common/numeric.hpp), like the PRISM
      // parser: locale-independent, and "nan"/"inf"/overflowing literals
      // are malformed — the stod this replaces accepted NaN weights
      // (NaN < 0 is false) and let them poison the weighted MLE counts.
      const std::string spec = tokens.back().substr(1);
      double parsed = 0.0;
      const std::size_t consumed = parse_finite_double(spec, &parsed);
      if (spec.empty() || consumed != spec.size() || parsed < 0.0) {
        throw ParseError("parse_trajectory_batches: line " +
                         std::to_string(line_no) + ": malformed weight '" +
                         tokens.back() +
                         "' (want a finite non-negative number)");
      }
      weight = parsed;
      tokens.pop_back();
    }
    if (tokens.size() < 2) {
      throw ModelError("parse_trajectory_batches: line " +
                       std::to_string(line_no) +
                       ": a trajectory needs at least two states");
    }

    Trajectory trajectory;
    trajectory.initial_state =
        resolve_state(by_name, tokens.front(), chain.num_states(), line_no);
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      Step step;
      step.state =
          resolve_state(by_name, tokens[i], chain.num_states(), line_no);
      step.next_state =
          resolve_state(by_name, tokens[i + 1], chain.num_states(), line_no);
      trajectory.steps.push_back(step);
    }
    batch.add(std::move(trajectory), weight);
  }
  flush();
  return batches;
}

std::vector<TrajectoryDataset> parse_trajectory_batches(
    const std::string& text, const Dtmc& chain) {
  std::istringstream in(text);
  return parse_trajectory_batches(in, chain);
}

void TrajectoryDataset::add(Trajectory trajectory, double weight) {
  TML_REQUIRE(weight >= 0.0, "TrajectoryDataset: negative weight");
  if (weights.empty() && !trajectories.empty() && weight != 1.0) {
    weights.assign(trajectories.size(), 1.0);
  }
  trajectories.push_back(std::move(trajectory));
  if (!weights.empty() || weight != 1.0) {
    if (weights.empty()) weights.assign(trajectories.size() - 1, 1.0);
    weights.push_back(weight);
  }
}

}  // namespace tml
