#include "src/mdp/compiled.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "src/common/stats.hpp"
#include "src/mdp/graph.hpp"

namespace tml {

namespace {

constexpr std::size_t kIndexLimit = std::numeric_limits<std::uint32_t>::max();

void record_compile_stats(std::size_t rows, std::size_t nnz) {
  static stats::Counter& c_calls = stats::counter("compile.calls");
  static stats::Counter& c_rows = stats::counter("compile.rows");
  static stats::Counter& c_nnz = stats::counter("compile.nnz");
  c_calls.bump();
  c_rows.add(rows);
  c_nnz.add(nnz);
}

/// Stats shared by both patch_probabilities overloads. `hit` distinguishes
/// an in-place rewrite from a structural fallback.
void record_patch_stats(bool hit, std::size_t dirty_states) {
  static stats::Counter& c_calls = stats::counter("compile.patch_calls");
  static stats::Counter& c_hits = stats::counter("compile.patch_hits");
  static stats::Counter& c_fallbacks =
      stats::counter("compile.patch_fallbacks");
  static stats::Counter& c_dirty = stats::counter("compile.patch_dirty_states");
  c_calls.bump();
  if (hit) {
    c_hits.bump();
    c_dirty.add(dirty_states);
  } else {
    c_fallbacks.bump();
  }
}

}  // namespace

namespace {

/// FNV-1a, 64-bit. Chosen over a fancier hash because the serve cache only
/// needs collision resistance against accidental collisions (requests are
/// compared byte-exact on the source text before a hit is trusted), and
/// FNV keeps this file dependency-free.
struct Fnv1a {
  std::uint64_t state = 1469598103934665603ull;

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state ^= p[i];
      state *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    bytes(v.data(), v.size() * sizeof(T));
  }
};

}  // namespace

std::uint64_t CompiledModel::content_hash() const {
  Fnv1a h;
  h.u64(num_states_);
  h.u64(initial_state_);
  h.u64(deterministic_ ? 1 : 0);
  h.vec(row_start_);
  h.vec(choice_start_);
  h.vec(target_);
  h.vec(prob_);  // bitwise doubles: vec() copies raw bytes
  h.vec(state_reward_);
  h.vec(choice_reward_);
  h.vec(choice_action_);
  h.u64(label_names_.size());
  for (std::size_t i = 0; i < label_names_.size(); ++i) {
    h.u64(label_names_[i].size());
    h.bytes(label_names_[i].data(), label_names_[i].size());
    h.u64(label_sets_[i].size());
    h.vec(label_sets_[i].words());
  }
  return h.state;
}

StateSet CompiledModel::states_with_label(const std::string& label) const {
  for (std::size_t i = 0; i < label_names_.size(); ++i) {
    if (label_names_[i] == label) return label_sets_[i];
  }
  return StateSet(num_states_, false);
}

void CompiledModel::build_predecessors() const {
  static stats::Counter& c_builds = stats::counter("compile.pred_builds");
  static stats::Counter& c_dedup = stats::counter("compile.pred_dedup_hits");
  c_builds.bump();
  std::size_t dedup_hits = 0;
  const std::size_t n = num_states_;
  // Two passes over the columns with a per-target "last seen source" stamp:
  // sources are visited in increasing order, so a repeated (s, t) pair —
  // multiple edges of s hitting t across its choices — is caught by the
  // stamp and each distinct pair is counted exactly once.
  constexpr StateId kNone = std::numeric_limits<StateId>::max();
  std::vector<StateId> last_source(n, kNone);
  pred_start_.assign(n + 1, 0);
  for (StateId s = 0; s < n; ++s) {
    for (std::uint32_t c = row_start_[s]; c < row_start_[s + 1]; ++c) {
      for (std::uint32_t k = choice_start_[c]; k < choice_start_[c + 1]; ++k) {
        if (prob_[k] <= 0.0) continue;
        const StateId t = target_[k];
        if (last_source[t] == s) {
          ++dedup_hits;
          continue;
        }
        last_source[t] = s;
        ++pred_start_[t + 1];
      }
    }
  }
  for (std::size_t s = 0; s < n; ++s) pred_start_[s + 1] += pred_start_[s];
  pred_.resize(pred_start_[n]);
  std::vector<std::uint32_t> fill(pred_start_.begin(), pred_start_.end() - 1);
  std::fill(last_source.begin(), last_source.end(), kNone);
  for (StateId s = 0; s < n; ++s) {
    for (std::uint32_t c = row_start_[s]; c < row_start_[s + 1]; ++c) {
      for (std::uint32_t k = choice_start_[c]; k < choice_start_[c + 1]; ++k) {
        if (prob_[k] <= 0.0) continue;
        const StateId t = target_[k];
        if (last_source[t] == s) continue;
        last_source[t] = s;
        pred_[fill[t]++] = s;
      }
    }
  }
  c_dedup.add(dedup_hits);
  preds_built_ = true;
  pred_epoch_ = mutation_epoch_;
}

const SccDecomposition& CompiledModel::scc() const {
  if (!scc_built_) {
    scc_ = scc_decomposition(*this);
    scc_built_ = true;
    scc_epoch_ = mutation_epoch_;
  }
  require_fresh(scc_epoch_, "CompiledModel::scc");
  return scc_;
}

void CompiledModel::require_fresh(std::uint64_t built_epoch,
                                  const char* what) const {
  if (built_epoch != mutation_epoch_) {
    throw ModelError(
        std::string(what) +
        ": graph cache is stale — the model was mutated in place (set_prob) "
        "after the cache was built; call invalidate_graph_caches() to "
        "rebuild, or mutate through patch_probabilities(), which proves the "
        "support unchanged and keeps the caches valid");
  }
}

void CompiledModel::invalidate_graph_caches() const {
  preds_built_ = false;
  pred_start_.clear();
  pred_.clear();
  scc_built_ = false;
  scc_ = SccDecomposition{};
}

CompiledModel compile(const Mdp& mdp) {
  static stats::Timer& t_compile = stats::timer("compile.time");
  const stats::ScopedTimer span(t_compile);
  mdp.validate();
  const std::size_t n = mdp.num_states();

  CompiledModel out;
  out.num_states_ = n;
  out.initial_state_ = mdp.initial_state();
  out.deterministic_ = false;

  std::size_t num_choices = 0;
  std::size_t num_transitions = 0;
  for (StateId s = 0; s < n; ++s) {
    num_choices += mdp.choices(s).size();
    for (const Choice& c : mdp.choices(s)) {
      num_transitions += c.transitions.size();
    }
  }
  TML_REQUIRE(num_choices < kIndexLimit && num_transitions < kIndexLimit,
              "compile: model exceeds 32-bit index space");

  out.row_start_.reserve(n + 1);
  out.choice_start_.reserve(num_choices + 1);
  out.target_.reserve(num_transitions);
  out.prob_.reserve(num_transitions);
  out.choice_reward_.reserve(num_choices);
  out.choice_action_.reserve(num_choices);
  out.state_reward_ = mdp.state_rewards();

  out.row_start_.push_back(0);
  out.choice_start_.push_back(0);
  for (StateId s = 0; s < n; ++s) {
    for (const Choice& c : mdp.choices(s)) {
      for (const Transition& t : c.transitions) {
        out.target_.push_back(t.target);
        out.prob_.push_back(t.probability);
      }
      out.choice_start_.push_back(static_cast<std::uint32_t>(out.target_.size()));
      out.choice_reward_.push_back(c.reward);
      out.choice_action_.push_back(c.action);
    }
    out.row_start_.push_back(
        static_cast<std::uint32_t>(out.choice_start_.size() - 1));
  }

  out.label_names_ = mdp.all_labels();
  out.label_sets_.reserve(out.label_names_.size());
  for (const std::string& label : out.label_names_) {
    out.label_sets_.push_back(mdp.states_with_label(label));
  }
  record_compile_stats(n, num_transitions);
  return out;
}

CompiledModel compile(const Dtmc& chain) {
  static stats::Timer& t_compile = stats::timer("compile.time");
  const stats::ScopedTimer span(t_compile);
  chain.validate();
  const std::size_t n = chain.num_states();

  CompiledModel out;
  out.num_states_ = n;
  out.initial_state_ = chain.initial_state();
  out.deterministic_ = true;

  std::size_t num_transitions = 0;
  for (StateId s = 0; s < n; ++s) num_transitions += chain.transitions(s).size();
  TML_REQUIRE(num_transitions < kIndexLimit,
              "compile: model exceeds 32-bit index space");

  out.row_start_.reserve(n + 1);
  out.choice_start_.reserve(n + 1);
  out.target_.reserve(num_transitions);
  out.prob_.reserve(num_transitions);
  out.state_reward_ = chain.state_rewards();
  out.choice_reward_.assign(n, 0.0);
  out.choice_action_.assign(n, 0);

  out.row_start_.push_back(0);
  out.choice_start_.push_back(0);
  for (StateId s = 0; s < n; ++s) {
    for (const Transition& t : chain.transitions(s)) {
      out.target_.push_back(t.target);
      out.prob_.push_back(t.probability);
    }
    out.choice_start_.push_back(static_cast<std::uint32_t>(out.target_.size()));
    out.row_start_.push_back(static_cast<std::uint32_t>(s) + 1);
  }

  out.label_names_ = chain.all_labels();
  out.label_sets_.reserve(out.label_names_.size());
  for (const std::string& label : out.label_names_) {
    out.label_sets_.push_back(chain.states_with_label(label));
  }
  record_compile_stats(n, num_transitions);
  return out;
}

CompiledModel CompiledModel::make_absorbing(const StateSet& absorb) const {
  TML_REQUIRE(absorb.size() == num_states_,
              "make_absorbing: set size mismatch");
  CompiledModel out;
  out.num_states_ = num_states_;
  out.initial_state_ = initial_state_;
  out.deterministic_ = deterministic_;
  out.state_reward_ = state_reward_;
  out.label_names_ = label_names_;
  out.label_sets_ = label_sets_;

  out.row_start_.reserve(num_states_ + 1);
  out.choice_start_.reserve(num_choices() + 1);
  out.target_.reserve(num_transitions());
  out.prob_.reserve(num_transitions());
  out.choice_reward_.reserve(num_choices());
  out.choice_action_.reserve(num_choices());

  out.row_start_.push_back(0);
  out.choice_start_.push_back(0);
  for (StateId s = 0; s < num_states_; ++s) {
    if (absorb[s]) {
      out.target_.push_back(s);
      out.prob_.push_back(1.0);
      out.choice_start_.push_back(
          static_cast<std::uint32_t>(out.target_.size()));
      out.choice_reward_.push_back(0.0);
      out.choice_action_.push_back(0);
    } else {
      for (std::uint32_t c = row_start_[s]; c < row_start_[s + 1]; ++c) {
        for (std::uint32_t k = choice_start_[c]; k < choice_start_[c + 1];
             ++k) {
          out.target_.push_back(target_[k]);
          out.prob_.push_back(prob_[k]);
        }
        out.choice_start_.push_back(
            static_cast<std::uint32_t>(out.target_.size()));
        out.choice_reward_.push_back(choice_reward_[c]);
        out.choice_action_.push_back(choice_action_[c]);
      }
    }
    out.row_start_.push_back(
        static_cast<std::uint32_t>(out.choice_start_.size() - 1));
  }
  return out;
}

namespace {

/// Mutable-internals bundle handed to patch_core by the two friend
/// overloads (patch_core itself is not a friend of CompiledModel).
struct PatchAccess {
  std::vector<double>& prob;
  std::vector<double>& state_reward;
  std::vector<double>& choice_reward;
  const std::vector<std::string>& label_names;
  const std::vector<StateSet>& label_sets;
};

/// Shared core of the two patch_probabilities overloads, generic over the
/// builder shape via row lambdas (`transitions_of(s, ci)` etc.). Two
/// passes: a read-only structure/support check that leaves the model
/// untouched on mismatch, then the in-place rewrite. Returns via `bless`
/// whether the caller should re-stamp the graph caches.
template <typename Source, typename NumChoicesOf, typename RewardOf,
          typename ActionOf, typename TransitionsOf>
PatchResult patch_core(CompiledModel& model, PatchAccess acc,
                       const Source& source, bool source_deterministic,
                       NumChoicesOf num_choices_of, RewardOf reward_of,
                       ActionOf action_of, TransitionsOf transitions_of) {
  PatchResult out;
  const std::size_t n = source.num_states();
  auto fallback = [&]() {
    record_patch_stats(/*hit=*/false, 0);
    return PatchResult{};
  };

  // ---- pass 1: structure + support check (pure reads) --------------------
  if (n != model.num_states() ||
      source_deterministic != model.deterministic() ||
      source.initial_state() != model.initial_state()) {
    return fallback();
  }
  {
    std::uint32_t c = 0;
    std::uint32_t k = 0;
    const auto& choice_start = model.choice_start();
    const auto& target = model.target();
    for (StateId s = 0; s < n; ++s) {
      if (num_choices_of(s) != model.num_choices_of(s)) return fallback();
      for (std::size_t ci = 0; ci < num_choices_of(s); ++ci, ++c) {
        const std::vector<Transition>& transitions = transitions_of(s, ci);
        if (transitions.size() != choice_start[c + 1] - choice_start[c]) {
          return fallback();
        }
        if (action_of(s, ci) != model.choice_action(c)) return fallback();
        for (const Transition& t : transitions) {
          // Same targets in the same order, and the same positive support:
          // an entry moving between zero and nonzero changes the graph, so
          // every graph-derived cache would be wrong — full recompile.
          if (t.target != target[k]) return fallback();
          if ((t.probability > 0.0) != (acc.prob[k] > 0.0)) return fallback();
          ++k;
        }
      }
    }
  }
  // Labels participate in checking semantics; a changed labelling is a
  // structural change even though the graph is intact.
  {
    const std::vector<std::string> labels = source.all_labels();
    if (labels != acc.label_names) return fallback();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (source.states_with_label(labels[i]) != acc.label_sets[i]) {
        return fallback();
      }
    }
  }

  // ---- pass 2: in-place rewrite ------------------------------------------
  out.patched = true;
  out.dirty = StateSet(n, false);
  const std::vector<double>& rewards = source.state_rewards();
  std::uint32_t c = 0;
  std::uint32_t k = 0;
  for (StateId s = 0; s < n; ++s) {
    bool dirty = false;
    if (!rewards.empty() && acc.state_reward[s] != rewards[s]) {
      acc.state_reward[s] = rewards[s];
      dirty = true;
    }
    for (std::size_t ci = 0; ci < num_choices_of(s); ++ci, ++c) {
      const double reward = reward_of(s, ci);
      if (acc.choice_reward[c] != reward) {
        acc.choice_reward[c] = reward;
        dirty = true;
      }
      for (const Transition& t : transitions_of(s, ci)) {
        const double delta = std::abs(t.probability - acc.prob[k]);
        if (delta > 0.0) {
          out.max_abs_delta = std::max(out.max_abs_delta, delta);
          acc.prob[k] = t.probability;
          dirty = true;
        }
        ++k;
      }
    }
    if (dirty) {
      out.dirty.set(s);
      ++out.dirty_states;
    }
  }
  record_patch_stats(/*hit=*/true, out.dirty_states);
  return out;
}

}  // namespace

PatchResult patch_probabilities(CompiledModel& model, const Mdp& mdp) {
  mdp.validate();
  PatchResult out = patch_core(
      model,
      PatchAccess{model.prob_, model.state_reward_, model.choice_reward_,
                  model.label_names_, model.label_sets_},
      mdp, /*source_deterministic=*/false,
      [&](StateId s) { return mdp.choices(s).size(); },
      [&](StateId s, std::size_t c) { return mdp.choices(s)[c].reward; },
      [&](StateId s, std::size_t c) { return mdp.choices(s)[c].action; },
      [&](StateId s, std::size_t c) -> const std::vector<Transition>& {
        return mdp.choices(s)[c].transitions;
      });
  if (out.patched) {
    // The support check proves the positive-probability graph is unchanged,
    // so the lazy predecessor/SCC caches still describe this model exactly:
    // bump the epoch for external observers, then re-bless built caches.
    ++model.mutation_epoch_;
    if (model.preds_built_) model.pred_epoch_ = model.mutation_epoch_;
    if (model.scc_built_) model.scc_epoch_ = model.mutation_epoch_;
  }
  return out;
}

PatchResult patch_probabilities(CompiledModel& model, const Dtmc& chain) {
  chain.validate();
  PatchResult out = patch_core(
      model,
      PatchAccess{model.prob_, model.state_reward_, model.choice_reward_,
                  model.label_names_, model.label_sets_},
      chain, /*source_deterministic=*/true,
      [](StateId) -> std::size_t { return 1; },
      [](StateId, std::size_t) { return 0.0; },  // compile(Dtmc) zeroes these
      [](StateId, std::size_t) -> ActionId { return 0; },
      [&](StateId s, std::size_t) -> const std::vector<Transition>& {
        return chain.transitions(s);
      });
  if (out.patched) {
    ++model.mutation_epoch_;
    if (model.preds_built_) model.pred_epoch_ = model.mutation_epoch_;
    if (model.scc_built_) model.scc_epoch_ = model.mutation_epoch_;
  }
  return out;
}

}  // namespace tml
