#include "src/mdp/compiled.hpp"

#include <algorithm>
#include <limits>

#include "src/common/stats.hpp"
#include "src/mdp/graph.hpp"

namespace tml {

namespace {

constexpr std::size_t kIndexLimit = std::numeric_limits<std::uint32_t>::max();

void record_compile_stats(std::size_t rows, std::size_t nnz) {
  static stats::Counter& c_calls = stats::counter("compile.calls");
  static stats::Counter& c_rows = stats::counter("compile.rows");
  static stats::Counter& c_nnz = stats::counter("compile.nnz");
  c_calls.bump();
  c_rows.add(rows);
  c_nnz.add(nnz);
}

}  // namespace

StateSet CompiledModel::states_with_label(const std::string& label) const {
  for (std::size_t i = 0; i < label_names_.size(); ++i) {
    if (label_names_[i] == label) return label_sets_[i];
  }
  return StateSet(num_states_, false);
}

void CompiledModel::build_predecessors() const {
  static stats::Counter& c_builds = stats::counter("compile.pred_builds");
  static stats::Counter& c_dedup = stats::counter("compile.pred_dedup_hits");
  c_builds.bump();
  std::size_t dedup_hits = 0;
  const std::size_t n = num_states_;
  // Two passes over the columns with a per-target "last seen source" stamp:
  // sources are visited in increasing order, so a repeated (s, t) pair —
  // multiple edges of s hitting t across its choices — is caught by the
  // stamp and each distinct pair is counted exactly once.
  constexpr StateId kNone = std::numeric_limits<StateId>::max();
  std::vector<StateId> last_source(n, kNone);
  pred_start_.assign(n + 1, 0);
  for (StateId s = 0; s < n; ++s) {
    for (std::uint32_t c = row_start_[s]; c < row_start_[s + 1]; ++c) {
      for (std::uint32_t k = choice_start_[c]; k < choice_start_[c + 1]; ++k) {
        if (prob_[k] <= 0.0) continue;
        const StateId t = target_[k];
        if (last_source[t] == s) {
          ++dedup_hits;
          continue;
        }
        last_source[t] = s;
        ++pred_start_[t + 1];
      }
    }
  }
  for (std::size_t s = 0; s < n; ++s) pred_start_[s + 1] += pred_start_[s];
  pred_.resize(pred_start_[n]);
  std::vector<std::uint32_t> fill(pred_start_.begin(), pred_start_.end() - 1);
  std::fill(last_source.begin(), last_source.end(), kNone);
  for (StateId s = 0; s < n; ++s) {
    for (std::uint32_t c = row_start_[s]; c < row_start_[s + 1]; ++c) {
      for (std::uint32_t k = choice_start_[c]; k < choice_start_[c + 1]; ++k) {
        if (prob_[k] <= 0.0) continue;
        const StateId t = target_[k];
        if (last_source[t] == s) continue;
        last_source[t] = s;
        pred_[fill[t]++] = s;
      }
    }
  }
  c_dedup.add(dedup_hits);
  preds_built_ = true;
}

const SccDecomposition& CompiledModel::scc() const {
  if (!scc_built_) {
    scc_ = scc_decomposition(*this);
    scc_built_ = true;
  }
  return scc_;
}

CompiledModel compile(const Mdp& mdp) {
  static stats::Timer& t_compile = stats::timer("compile.time");
  const stats::ScopedTimer span(t_compile);
  mdp.validate();
  const std::size_t n = mdp.num_states();

  CompiledModel out;
  out.num_states_ = n;
  out.initial_state_ = mdp.initial_state();
  out.deterministic_ = false;

  std::size_t num_choices = 0;
  std::size_t num_transitions = 0;
  for (StateId s = 0; s < n; ++s) {
    num_choices += mdp.choices(s).size();
    for (const Choice& c : mdp.choices(s)) {
      num_transitions += c.transitions.size();
    }
  }
  TML_REQUIRE(num_choices < kIndexLimit && num_transitions < kIndexLimit,
              "compile: model exceeds 32-bit index space");

  out.row_start_.reserve(n + 1);
  out.choice_start_.reserve(num_choices + 1);
  out.target_.reserve(num_transitions);
  out.prob_.reserve(num_transitions);
  out.choice_reward_.reserve(num_choices);
  out.choice_action_.reserve(num_choices);
  out.state_reward_ = mdp.state_rewards();

  out.row_start_.push_back(0);
  out.choice_start_.push_back(0);
  for (StateId s = 0; s < n; ++s) {
    for (const Choice& c : mdp.choices(s)) {
      for (const Transition& t : c.transitions) {
        out.target_.push_back(t.target);
        out.prob_.push_back(t.probability);
      }
      out.choice_start_.push_back(static_cast<std::uint32_t>(out.target_.size()));
      out.choice_reward_.push_back(c.reward);
      out.choice_action_.push_back(c.action);
    }
    out.row_start_.push_back(
        static_cast<std::uint32_t>(out.choice_start_.size() - 1));
  }

  out.label_names_ = mdp.all_labels();
  out.label_sets_.reserve(out.label_names_.size());
  for (const std::string& label : out.label_names_) {
    out.label_sets_.push_back(mdp.states_with_label(label));
  }
  record_compile_stats(n, num_transitions);
  return out;
}

CompiledModel compile(const Dtmc& chain) {
  static stats::Timer& t_compile = stats::timer("compile.time");
  const stats::ScopedTimer span(t_compile);
  chain.validate();
  const std::size_t n = chain.num_states();

  CompiledModel out;
  out.num_states_ = n;
  out.initial_state_ = chain.initial_state();
  out.deterministic_ = true;

  std::size_t num_transitions = 0;
  for (StateId s = 0; s < n; ++s) num_transitions += chain.transitions(s).size();
  TML_REQUIRE(num_transitions < kIndexLimit,
              "compile: model exceeds 32-bit index space");

  out.row_start_.reserve(n + 1);
  out.choice_start_.reserve(n + 1);
  out.target_.reserve(num_transitions);
  out.prob_.reserve(num_transitions);
  out.state_reward_ = chain.state_rewards();
  out.choice_reward_.assign(n, 0.0);
  out.choice_action_.assign(n, 0);

  out.row_start_.push_back(0);
  out.choice_start_.push_back(0);
  for (StateId s = 0; s < n; ++s) {
    for (const Transition& t : chain.transitions(s)) {
      out.target_.push_back(t.target);
      out.prob_.push_back(t.probability);
    }
    out.choice_start_.push_back(static_cast<std::uint32_t>(out.target_.size()));
    out.row_start_.push_back(static_cast<std::uint32_t>(s) + 1);
  }

  out.label_names_ = chain.all_labels();
  out.label_sets_.reserve(out.label_names_.size());
  for (const std::string& label : out.label_names_) {
    out.label_sets_.push_back(chain.states_with_label(label));
  }
  record_compile_stats(n, num_transitions);
  return out;
}

CompiledModel CompiledModel::make_absorbing(const StateSet& absorb) const {
  TML_REQUIRE(absorb.size() == num_states_,
              "make_absorbing: set size mismatch");
  CompiledModel out;
  out.num_states_ = num_states_;
  out.initial_state_ = initial_state_;
  out.deterministic_ = deterministic_;
  out.state_reward_ = state_reward_;
  out.label_names_ = label_names_;
  out.label_sets_ = label_sets_;

  out.row_start_.reserve(num_states_ + 1);
  out.choice_start_.reserve(num_choices() + 1);
  out.target_.reserve(num_transitions());
  out.prob_.reserve(num_transitions());
  out.choice_reward_.reserve(num_choices());
  out.choice_action_.reserve(num_choices());

  out.row_start_.push_back(0);
  out.choice_start_.push_back(0);
  for (StateId s = 0; s < num_states_; ++s) {
    if (absorb[s]) {
      out.target_.push_back(s);
      out.prob_.push_back(1.0);
      out.choice_start_.push_back(
          static_cast<std::uint32_t>(out.target_.size()));
      out.choice_reward_.push_back(0.0);
      out.choice_action_.push_back(0);
    } else {
      for (std::uint32_t c = row_start_[s]; c < row_start_[s + 1]; ++c) {
        for (std::uint32_t k = choice_start_[c]; k < choice_start_[c + 1];
             ++k) {
          out.target_.push_back(target_[k]);
          out.prob_.push_back(prob_[k]);
        }
        out.choice_start_.push_back(
            static_cast<std::uint32_t>(out.target_.size()));
        out.choice_reward_.push_back(choice_reward_[c]);
        out.choice_action_.push_back(choice_action_[c]);
      }
    }
    out.row_start_.push_back(
        static_cast<std::uint32_t>(out.choice_start_.size() - 1));
  }
  return out;
}

}  // namespace tml
