#include "src/mdp/model.hpp"

#include <algorithm>
#include <cmath>

namespace tml {

namespace {

void check_distribution(const std::vector<Transition>& transitions,
                        std::size_t num_states, double tol,
                        const std::string& where) {
  if (transitions.empty()) {
    throw ModelError(where + ": empty distribution");
  }
  double sum = 0.0;
  for (const Transition& t : transitions) {
    if (t.target >= num_states) {
      throw ModelError(where + ": target state " + std::to_string(t.target) +
                       " out of range");
    }
    if (t.probability < -tol || t.probability > 1.0 + tol) {
      throw ModelError(where + ": probability " +
                       std::to_string(t.probability) + " out of [0,1]");
    }
    sum += t.probability;
  }
  if (std::abs(sum - 1.0) > tol) {
    throw ModelError(where + ": distribution sums to " + std::to_string(sum));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Mdp

StateId Mdp::add_state(const std::string& name) {
  const StateId id = static_cast<StateId>(states_.size());
  states_.push_back(StateData{name, {}, {}});
  state_rewards_.push_back(0.0);
  return id;
}

void Mdp::resize(std::size_t num_states) {
  TML_REQUIRE(num_states >= states_.size(), "Mdp::resize: cannot shrink");
  states_.resize(num_states);
  state_rewards_.resize(num_states, 0.0);
}

void Mdp::set_initial_state(StateId s) {
  TML_REQUIRE(s < states_.size(), "Mdp: initial state out of range");
  initial_state_ = s;
}

ActionId Mdp::declare_action(const std::string& name) {
  TML_REQUIRE(!name.empty(), "Mdp: empty action name");
  auto it = action_ids_.find(name);
  if (it != action_ids_.end()) return it->second;
  const ActionId id = static_cast<ActionId>(action_names_.size());
  action_names_.push_back(name);
  action_ids_.emplace(name, id);
  return id;
}

const std::string& Mdp::action_name(ActionId a) const {
  TML_REQUIRE(a < action_names_.size(), "Mdp: unknown action id " << a);
  return action_names_[a];
}

std::uint32_t Mdp::add_choice(StateId state, ActionId action,
                              std::vector<Transition> transitions,
                              double action_reward) {
  TML_REQUIRE(state < states_.size(), "Mdp::add_choice: state out of range");
  TML_REQUIRE(action < action_names_.size(),
              "Mdp::add_choice: undeclared action id " << action);
  states_[state].choices.push_back(
      Choice{action, action_reward, std::move(transitions)});
  return static_cast<std::uint32_t>(states_[state].choices.size() - 1);
}

std::uint32_t Mdp::add_choice(StateId state, const std::string& action,
                              std::vector<Transition> transitions,
                              double action_reward) {
  return add_choice(state, declare_action(action), std::move(transitions),
                    action_reward);
}

const std::vector<Choice>& Mdp::choices(StateId state) const {
  TML_REQUIRE(state < states_.size(), "Mdp::choices: state out of range");
  return states_[state].choices;
}

std::vector<Choice>& Mdp::mutable_choices(StateId state) {
  TML_REQUIRE(state < states_.size(), "Mdp::choices: state out of range");
  return states_[state].choices;
}

std::size_t Mdp::num_choices() const {
  std::size_t n = 0;
  for (const auto& s : states_) n += s.choices.size();
  return n;
}

void Mdp::set_state_reward(StateId state, double reward) {
  TML_REQUIRE(state < states_.size(), "Mdp: state out of range");
  state_rewards_[state] = reward;
}

double Mdp::state_reward(StateId state) const {
  TML_REQUIRE(state < states_.size(), "Mdp: state out of range");
  return state_rewards_[state];
}

std::uint32_t Mdp::label_id(const std::string& label) {
  TML_REQUIRE(!label.empty(), "Mdp: empty label");
  auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(label_names_.size());
  label_names_.push_back(label);
  label_ids_.emplace(label, id);
  return id;
}

void Mdp::add_label(StateId state, const std::string& label) {
  TML_REQUIRE(state < states_.size(), "Mdp::add_label: state out of range");
  const std::uint32_t id = label_id(label);
  auto& labels = states_[state].labels;
  if (std::find(labels.begin(), labels.end(), id) == labels.end()) {
    labels.push_back(id);
  }
}

bool Mdp::has_label(StateId state, const std::string& label) const {
  TML_REQUIRE(state < states_.size(), "Mdp::has_label: state out of range");
  auto it = label_ids_.find(label);
  if (it == label_ids_.end()) return false;
  const auto& labels = states_[state].labels;
  return std::find(labels.begin(), labels.end(), it->second) != labels.end();
}

StateSet Mdp::states_with_label(const std::string& label) const {
  StateSet set(states_.size(), false);
  auto it = label_ids_.find(label);
  if (it == label_ids_.end()) return set;
  for (std::size_t s = 0; s < states_.size(); ++s) {
    const auto& labels = states_[s].labels;
    if (std::find(labels.begin(), labels.end(), it->second) != labels.end()) {
      set[s] = true;
    }
  }
  return set;
}

std::vector<std::string> Mdp::labels_of(StateId state) const {
  TML_REQUIRE(state < states_.size(), "Mdp::labels_of: state out of range");
  std::vector<std::string> out;
  for (std::uint32_t id : states_[state].labels) out.push_back(label_names_[id]);
  return out;
}

std::vector<std::string> Mdp::all_labels() const { return label_names_; }

const std::string& Mdp::state_name(StateId state) const {
  TML_REQUIRE(state < states_.size(), "Mdp::state_name: out of range");
  return states_[state].name;
}

void Mdp::set_state_name(StateId state, const std::string& name) {
  TML_REQUIRE(state < states_.size(), "Mdp::set_state_name: out of range");
  states_[state].name = name;
}

StateId Mdp::state_by_name(const std::string& name) const {
  std::optional<StateId> found;
  for (std::size_t s = 0; s < states_.size(); ++s) {
    if (states_[s].name == name) {
      TML_REQUIRE(!found.has_value(), "Mdp: ambiguous state name " << name);
      found = static_cast<StateId>(s);
    }
  }
  TML_REQUIRE(found.has_value(), "Mdp: unknown state name " << name);
  return *found;
}

void Mdp::validate(double tol) const {
  if (states_.empty()) throw ModelError("Mdp: no states");
  if (initial_state_ >= states_.size()) {
    throw ModelError("Mdp: initial state out of range");
  }
  for (std::size_t s = 0; s < states_.size(); ++s) {
    const auto& state = states_[s];
    if (state.choices.empty()) {
      throw ModelError("Mdp: state " + std::to_string(s) + " (" + state.name +
                       ") has no choices");
    }
    for (std::size_t c = 0; c < state.choices.size(); ++c) {
      check_distribution(state.choices[c].transitions, states_.size(), tol,
                         "Mdp state " + std::to_string(s) + " choice " +
                             std::to_string(c));
    }
  }
}

Dtmc Mdp::induced_dtmc(const Policy& policy) const {
  TML_REQUIRE(policy.choice_index.size() == states_.size(),
              "induced_dtmc: policy size mismatch");
  Dtmc chain(states_.size());
  chain.set_initial_state(initial_state_);
  for (std::size_t s = 0; s < states_.size(); ++s) {
    const std::uint32_t c = policy.choice_index[s];
    TML_REQUIRE(c < states_[s].choices.size(),
                "induced_dtmc: policy chooses missing choice " << c
                    << " in state " << s);
    const Choice& choice = states_[s].choices[c];
    chain.set_transitions(static_cast<StateId>(s), choice.transitions);
    chain.set_state_reward(static_cast<StateId>(s),
                           state_rewards_[s] + choice.reward);
    chain.set_state_name(static_cast<StateId>(s), states_[s].name);
    for (std::uint32_t id : states_[s].labels) {
      chain.add_label(static_cast<StateId>(s), label_names_[id]);
    }
  }
  return chain;
}

Dtmc Mdp::induced_dtmc(const RandomizedPolicy& policy) const {
  TML_REQUIRE(policy.choice_probabilities.size() == states_.size(),
              "induced_dtmc: policy size mismatch");
  Dtmc chain(states_.size());
  chain.set_initial_state(initial_state_);
  for (std::size_t s = 0; s < states_.size(); ++s) {
    const auto& probs = policy.choice_probabilities[s];
    TML_REQUIRE(probs.size() == states_[s].choices.size(),
                "induced_dtmc: choice distribution size mismatch in state "
                    << s);
    std::unordered_map<StateId, double> merged;
    double reward = state_rewards_[s];
    for (std::size_t c = 0; c < probs.size(); ++c) {
      const Choice& choice = states_[s].choices[c];
      reward += probs[c] * choice.reward;
      for (const Transition& t : choice.transitions) {
        merged[t.target] += probs[c] * t.probability;
      }
    }
    std::vector<Transition> row;
    row.reserve(merged.size());
    for (const auto& [target, p] : merged) row.push_back({target, p});
    std::sort(row.begin(), row.end(),
              [](const Transition& a, const Transition& b) {
                return a.target < b.target;
              });
    chain.set_transitions(static_cast<StateId>(s), std::move(row));
    chain.set_state_reward(static_cast<StateId>(s), reward);
    chain.set_state_name(static_cast<StateId>(s), states_[s].name);
    for (std::uint32_t id : states_[s].labels) {
      chain.add_label(static_cast<StateId>(s), label_names_[id]);
    }
  }
  return chain;
}

Policy Mdp::first_choice_policy() const {
  Policy p;
  p.choice_index.assign(states_.size(), 0);
  return p;
}

RandomizedPolicy Mdp::uniform_policy() const {
  RandomizedPolicy p;
  p.choice_probabilities.resize(states_.size());
  for (std::size_t s = 0; s < states_.size(); ++s) {
    const std::size_t n = states_[s].choices.size();
    p.choice_probabilities[s].assign(n, n == 0 ? 0.0 : 1.0 / double(n));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Dtmc

Dtmc::Dtmc(std::size_t num_states)
    : rows_(num_states), state_rewards_(num_states, 0.0) {}

StateId Dtmc::add_state(const std::string& name) {
  const StateId id = static_cast<StateId>(rows_.size());
  rows_.push_back(Row{name, {}, {}});
  state_rewards_.push_back(0.0);
  return id;
}

void Dtmc::set_initial_state(StateId s) {
  TML_REQUIRE(s < rows_.size(), "Dtmc: initial state out of range");
  initial_state_ = s;
}

void Dtmc::set_transitions(StateId state, std::vector<Transition> transitions) {
  TML_REQUIRE(state < rows_.size(), "Dtmc::set_transitions: out of range");
  rows_[state].transitions = std::move(transitions);
}

const std::vector<Transition>& Dtmc::transitions(StateId state) const {
  TML_REQUIRE(state < rows_.size(), "Dtmc::transitions: out of range");
  return rows_[state].transitions;
}

void Dtmc::set_state_reward(StateId state, double reward) {
  TML_REQUIRE(state < rows_.size(), "Dtmc: state out of range");
  state_rewards_[state] = reward;
}

double Dtmc::state_reward(StateId state) const {
  TML_REQUIRE(state < rows_.size(), "Dtmc: state out of range");
  return state_rewards_[state];
}

std::uint32_t Dtmc::label_id(const std::string& label) {
  TML_REQUIRE(!label.empty(), "Dtmc: empty label");
  auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(label_names_.size());
  label_names_.push_back(label);
  label_ids_.emplace(label, id);
  return id;
}

void Dtmc::add_label(StateId state, const std::string& label) {
  TML_REQUIRE(state < rows_.size(), "Dtmc::add_label: out of range");
  const std::uint32_t id = label_id(label);
  auto& labels = rows_[state].labels;
  if (std::find(labels.begin(), labels.end(), id) == labels.end()) {
    labels.push_back(id);
  }
}

bool Dtmc::has_label(StateId state, const std::string& label) const {
  TML_REQUIRE(state < rows_.size(), "Dtmc::has_label: out of range");
  auto it = label_ids_.find(label);
  if (it == label_ids_.end()) return false;
  const auto& labels = rows_[state].labels;
  return std::find(labels.begin(), labels.end(), it->second) != labels.end();
}

StateSet Dtmc::states_with_label(const std::string& label) const {
  StateSet set(rows_.size(), false);
  auto it = label_ids_.find(label);
  if (it == label_ids_.end()) return set;
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    const auto& labels = rows_[s].labels;
    if (std::find(labels.begin(), labels.end(), it->second) != labels.end()) {
      set[s] = true;
    }
  }
  return set;
}

std::vector<std::string> Dtmc::labels_of(StateId state) const {
  TML_REQUIRE(state < rows_.size(), "Dtmc::labels_of: out of range");
  std::vector<std::string> out;
  for (std::uint32_t id : rows_[state].labels) out.push_back(label_names_[id]);
  return out;
}

std::vector<std::string> Dtmc::all_labels() const { return label_names_; }

const std::string& Dtmc::state_name(StateId state) const {
  TML_REQUIRE(state < rows_.size(), "Dtmc::state_name: out of range");
  return rows_[state].name;
}

void Dtmc::set_state_name(StateId state, const std::string& name) {
  TML_REQUIRE(state < rows_.size(), "Dtmc::set_state_name: out of range");
  rows_[state].name = name;
}

StateId Dtmc::state_by_name(const std::string& name) const {
  std::optional<StateId> found;
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    if (rows_[s].name == name) {
      TML_REQUIRE(!found.has_value(), "Dtmc: ambiguous state name " << name);
      found = static_cast<StateId>(s);
    }
  }
  TML_REQUIRE(found.has_value(), "Dtmc: unknown state name " << name);
  return *found;
}

void Dtmc::validate(double tol) const {
  if (rows_.empty()) throw ModelError("Dtmc: no states");
  if (initial_state_ >= rows_.size()) {
    throw ModelError("Dtmc: initial state out of range");
  }
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    check_distribution(rows_[s].transitions, rows_.size(), tol,
                       "Dtmc state " + std::to_string(s));
  }
}

Mdp Dtmc::as_mdp() const {
  Mdp mdp(rows_.size());
  mdp.set_initial_state(initial_state_);
  const ActionId tau = mdp.declare_action("tau");
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    mdp.add_choice(static_cast<StateId>(s), tau, rows_[s].transitions);
    mdp.set_state_reward(static_cast<StateId>(s), state_rewards_[s]);
    mdp.set_state_name(static_cast<StateId>(s), rows_[s].name);
    for (std::uint32_t id : rows_[s].labels) {
      mdp.add_label(static_cast<StateId>(s), label_names_[id]);
    }
  }
  return mdp;
}

}  // namespace tml
