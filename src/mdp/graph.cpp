#include "src/mdp/graph.hpp"

#include <deque>

namespace tml {

namespace {

/// Backward closure of `seeds` over the compiled model's cached predecessor
/// structure. States in `blocked` (when provided) are never added: a path
/// that must pass through a blocked state does not count. Used with
/// blocked = targets to compute "can fail before reaching the target".
StateSet backward_closure(const CompiledModel& model, const StateSet& seeds,
                          const StateSet* blocked = nullptr) {
  StateSet reached = seeds;
  std::deque<StateId> queue;
  for (StateId s = 0; s < seeds.size(); ++s) {
    if (seeds[s]) queue.push_back(s);
  }
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (StateId p : model.predecessors(s)) {
      if (!reached[p] && (blocked == nullptr || !(*blocked)[p])) {
        reached[p] = true;
        queue.push_back(p);
      }
    }
  }
  return reached;
}

void require_size(const CompiledModel& model, const StateSet& targets,
                  const char* where) {
  TML_REQUIRE(targets.size() == model.num_states(),
              where << ": target set size mismatch");
}

}  // namespace

StateSet reachable_existential(const CompiledModel& model,
                               const StateSet& targets) {
  require_size(model, targets, "reachable_existential");
  return backward_closure(model, targets);
}

StateSet avoid_certain(const CompiledModel& model, const StateSet& targets) {
  require_size(model, targets, "avoid_certain");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  // Greatest fixpoint: start from S \ T, repeatedly remove states with no
  // choice whose support stays inside the candidate set.
  StateSet inside = complement(targets);
  bool changed = true;
  while (changed) {
    changed = false;
    for (StateId s = 0; s < n; ++s) {
      if (!inside[s]) continue;
      bool has_safe_choice = false;
      for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
        bool all_inside = true;
        for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
          if (prob[k] > 0.0 && !inside[target[k]]) {
            all_inside = false;
            break;
          }
        }
        if (all_inside) {
          has_safe_choice = true;
          break;
        }
      }
      if (!has_safe_choice) {
        inside[s] = false;
        changed = true;
      }
    }
  }
  return inside;
}

StateSet prob1_existential(const CompiledModel& model,
                           const StateSet& targets) {
  require_size(model, targets, "prob1_existential");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  // de Alfaro's nested fixpoint. Outer: over-approximation u of Prob1E.
  // Inner: states that can reach T via choices whose support stays in u.
  StateSet u(n, true);
  while (true) {
    StateSet v = targets;
    bool inner_changed = true;
    while (inner_changed) {
      inner_changed = false;
      for (StateId s = 0; s < n; ++s) {
        if (v[s] || !u[s]) continue;
        for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
          bool support_in_u = true;
          bool hits_v = false;
          for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
               ++k) {
            if (prob[k] <= 0.0) continue;
            if (!u[target[k]]) support_in_u = false;
            if (v[target[k]]) hits_v = true;
          }
          if (support_in_u && hits_v) {
            v[s] = true;
            inner_changed = true;
            break;
          }
        }
      }
    }
    if (v == u) return u;
    u = v;
  }
}

StateSet prob1_universal(const CompiledModel& model, const StateSet& targets) {
  require_size(model, targets, "prob1_universal");
  // Pmin(F T)(s) < 1 iff some scheduler reaches, with positive probability
  // and WITHOUT passing through T, the region where T can be avoided
  // forever. Target states themselves always count as probability 1.
  const StateSet avoid = avoid_certain(model, targets);
  const StateSet can_escape = backward_closure(model, avoid, &targets);
  return complement(can_escape);
}

StateSet dtmc_reach_positive(const CompiledModel& model,
                             const StateSet& targets) {
  require_size(model, targets, "dtmc_reach_positive");
  return backward_closure(model, targets);
}

StateSet dtmc_prob0(const CompiledModel& model, const StateSet& targets) {
  return complement(dtmc_reach_positive(model, targets));
}

StateSet dtmc_prob1(const CompiledModel& model, const StateSet& targets) {
  const StateSet zero = dtmc_prob0(model, targets);
  // P(F T)(s) = 1 iff s cannot reach a probability-0 state before passing
  // through T (paths that hit T first have already succeeded).
  const StateSet can_fail = backward_closure(model, zero, &targets);
  return complement(can_fail);
}

StateSet forward_reachable(const CompiledModel& model, StateId from) {
  TML_REQUIRE(from < model.num_states(),
              "forward_reachable: state out of range");
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  StateSet reached(model.num_states(), false);
  std::deque<StateId> queue{from};
  reached[from] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (std::uint32_t k = choice_start[row_start[s]];
         k < choice_start[row_start[s + 1]]; ++k) {
      if (prob[k] > 0.0 && !reached[target[k]]) {
        reached[target[k]] = true;
        queue.push_back(target[k]);
      }
    }
  }
  return reached;
}

// ---------------------------------------------------------------------------
// Builder-facing wrappers: compile once, run the CSR kernel.

StateSet reachable_existential(const Mdp& mdp, const StateSet& targets) {
  return reachable_existential(compile(mdp), targets);
}

StateSet avoid_certain(const Mdp& mdp, const StateSet& targets) {
  return avoid_certain(compile(mdp), targets);
}

StateSet prob1_existential(const Mdp& mdp, const StateSet& targets) {
  return prob1_existential(compile(mdp), targets);
}

StateSet prob1_universal(const Mdp& mdp, const StateSet& targets) {
  return prob1_universal(compile(mdp), targets);
}

StateSet dtmc_reach_positive(const Dtmc& chain, const StateSet& targets) {
  return dtmc_reach_positive(compile(chain), targets);
}

StateSet dtmc_prob0(const Dtmc& chain, const StateSet& targets) {
  return dtmc_prob0(compile(chain), targets);
}

StateSet dtmc_prob1(const Dtmc& chain, const StateSet& targets) {
  return dtmc_prob1(compile(chain), targets);
}

StateSet forward_reachable(const Mdp& mdp, StateId from) {
  return forward_reachable(compile(mdp), from);
}

StateSet forward_reachable(const Dtmc& chain, StateId from) {
  return forward_reachable(compile(chain), from);
}

}  // namespace tml
