#include "src/mdp/graph.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace tml {

namespace {

constexpr std::uint32_t kNoComponent = std::numeric_limits<std::uint32_t>::max();

/// Tarjan SCC pass shared by scc_decomposition and the MEC fixpoint.
/// `allowed == nullptr` decomposes the whole model over every
/// positive-probability edge. Otherwise only states in *allowed take part,
/// and only edges of choices whose full support lies inside *allowed count
/// (a choice that can leave the candidate set is unusable for staying in an
/// end component). `same_component`, when given, tightens the filter
/// further: a choice is usable only if its whole support shares the
/// source's component id from the PREVIOUS fixpoint round — without this, a
/// choice leaking into a different component still contributes its internal
/// edges and can glue together a set that no policy can actually keep
/// closed. States outside get component == kNoComponent and appear in no
/// block.
///
/// Iterative (explicit DFS frames) so million-state chains cannot overflow
/// the call stack. Blocks are emitted in Tarjan order: an SCC is emitted
/// only after every SCC reachable from it, so block ids are a reverse
/// topological order of the condensation — "dependency order" for the
/// topological solvers.
SccDecomposition tarjan_scc(const CompiledModel& model, const StateSet* allowed,
                            const std::vector<std::uint32_t>* same_component =
                                nullptr) {
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();

  // Per-transition usability, resolved once up front.
  std::vector<char> edge_ok(model.num_transitions(), 0);
  for (StateId s = 0; s < n; ++s) {
    if (allowed != nullptr && !(*allowed)[s]) continue;
    for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
      bool choice_inside = true;
      if (allowed != nullptr) {
        for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
          if (prob[k] <= 0.0) continue;
          if (!(*allowed)[target[k]] ||
              (same_component != nullptr &&
               (*same_component)[target[k]] != (*same_component)[s])) {
            choice_inside = false;
            break;
          }
        }
      }
      if (!choice_inside) continue;
      for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
        if (prob[k] > 0.0) edge_ok[k] = 1;
      }
    }
  }

  SccDecomposition out;
  out.component.assign(n, kNoComponent);
  out.block_start.push_back(0);

  std::vector<std::uint32_t> index(n, kNoComponent);
  std::vector<std::uint32_t> lowlink(n, 0);
  Bitset on_stack(n, false);
  std::vector<StateId> stack;
  struct Frame {
    StateId state;
    std::uint32_t edge;  // next transition index to examine
  };
  std::vector<Frame> frames;
  std::uint32_t counter = 0;

  const auto first_edge = [&](StateId s) { return choice_start[row_start[s]]; };
  const auto last_edge = [&](StateId s) {
    return choice_start[row_start[s + 1]];
  };

  for (StateId root = 0; root < n; ++root) {
    if (index[root] != kNoComponent) continue;
    if (allowed != nullptr && !(*allowed)[root]) continue;
    index[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    frames.push_back(Frame{root, first_edge(root)});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const StateId s = f.state;
      std::uint32_t k = f.edge;
      const std::uint32_t end = last_edge(s);
      while (k < end && !edge_ok[k]) ++k;
      if (k < end) {
        f.edge = k + 1;
        const StateId t = target[k];
        if (index[t] == kNoComponent) {
          index[t] = lowlink[t] = counter++;
          stack.push_back(t);
          on_stack[t] = true;
          frames.push_back(Frame{t, first_edge(t)});
        } else if (on_stack[t]) {
          lowlink[s] = std::min(lowlink[s], index[t]);
        }
        continue;
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().state] =
            std::min(lowlink[frames.back().state], lowlink[s]);
      }
      if (lowlink[s] != index[s]) continue;
      // s is the root of a finished SCC: pop the block.
      const std::uint32_t block_id =
          static_cast<std::uint32_t>(out.block_start.size() - 1);
      const std::size_t begin = out.block_states.size();
      for (;;) {
        const StateId v = stack.back();
        stack.pop_back();
        on_stack[v] = false;
        out.component[v] = block_id;
        out.block_states.push_back(v);
        if (v == s) break;
      }
      std::sort(out.block_states.begin() + static_cast<std::ptrdiff_t>(begin),
                out.block_states.end());
      out.block_start.push_back(
          static_cast<std::uint32_t>(out.block_states.size()));
    }
  }

  // Nontrivial blocks: more than one state, or a usable self-loop edge.
  out.nontrivial = Bitset(out.num_blocks(), false);
  for (std::uint32_t b = 0; b < out.num_blocks(); ++b) {
    const auto block = out.block(b);
    if (block.size() > 1) {
      out.nontrivial[b] = true;
      continue;
    }
    const StateId s = block.front();
    for (std::uint32_t k = first_edge(s); k < last_edge(s); ++k) {
      if (edge_ok[k] && target[k] == s) {
        out.nontrivial[b] = true;
        break;
      }
    }
  }
  return out;
}

/// Backward closure of `seeds` over the compiled model's cached predecessor
/// structure. States in `blocked` (when provided) are never added: a path
/// that must pass through a blocked state does not count. Used with
/// blocked = targets to compute "can fail before reaching the target".
StateSet backward_closure(const CompiledModel& model, const StateSet& seeds,
                          const StateSet* blocked = nullptr) {
  StateSet reached = seeds;
  std::deque<StateId> queue;
  for (StateId s = 0; s < seeds.size(); ++s) {
    if (seeds[s]) queue.push_back(s);
  }
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (StateId p : model.predecessors(s)) {
      if (!reached[p] && (blocked == nullptr || !(*blocked)[p])) {
        reached[p] = true;
        queue.push_back(p);
      }
    }
  }
  return reached;
}

void require_size(const CompiledModel& model, const StateSet& targets,
                  const char* where) {
  TML_REQUIRE(targets.size() == model.num_states(),
              where << ": target set size mismatch");
}

}  // namespace

StateSet reachable_existential(const CompiledModel& model,
                               const StateSet& targets) {
  require_size(model, targets, "reachable_existential");
  return backward_closure(model, targets);
}

StateSet avoid_certain(const CompiledModel& model, const StateSet& targets) {
  require_size(model, targets, "avoid_certain");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  // Greatest fixpoint: start from S \ T, repeatedly remove states with no
  // choice whose support stays inside the candidate set.
  StateSet inside = complement(targets);
  bool changed = true;
  while (changed) {
    changed = false;
    for (StateId s = 0; s < n; ++s) {
      if (!inside[s]) continue;
      bool has_safe_choice = false;
      for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
        bool all_inside = true;
        for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
          if (prob[k] > 0.0 && !inside[target[k]]) {
            all_inside = false;
            break;
          }
        }
        if (all_inside) {
          has_safe_choice = true;
          break;
        }
      }
      if (!has_safe_choice) {
        inside[s] = false;
        changed = true;
      }
    }
  }
  return inside;
}

StateSet prob1_existential(const CompiledModel& model,
                           const StateSet& targets) {
  require_size(model, targets, "prob1_existential");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  // de Alfaro's nested fixpoint. Outer: over-approximation u of Prob1E.
  // Inner: states that can reach T via choices whose support stays in u.
  StateSet u(n, true);
  while (true) {
    StateSet v = targets;
    bool inner_changed = true;
    while (inner_changed) {
      inner_changed = false;
      for (StateId s = 0; s < n; ++s) {
        if (v[s] || !u[s]) continue;
        for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
          bool support_in_u = true;
          bool hits_v = false;
          for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
               ++k) {
            if (prob[k] <= 0.0) continue;
            if (!u[target[k]]) support_in_u = false;
            if (v[target[k]]) hits_v = true;
          }
          if (support_in_u && hits_v) {
            v[s] = true;
            inner_changed = true;
            break;
          }
        }
      }
    }
    if (v == u) return u;
    u = v;
  }
}

StateSet prob1_universal(const CompiledModel& model, const StateSet& targets) {
  require_size(model, targets, "prob1_universal");
  // Pmin(F T)(s) < 1 iff some scheduler reaches, with positive probability
  // and WITHOUT passing through T, the region where T can be avoided
  // forever. Target states themselves always count as probability 1.
  const StateSet avoid = avoid_certain(model, targets);
  const StateSet can_escape = backward_closure(model, avoid, &targets);
  return complement(can_escape);
}

StateSet dtmc_reach_positive(const CompiledModel& model,
                             const StateSet& targets) {
  require_size(model, targets, "dtmc_reach_positive");
  return backward_closure(model, targets);
}

StateSet dtmc_prob0(const CompiledModel& model, const StateSet& targets) {
  return complement(dtmc_reach_positive(model, targets));
}

StateSet dtmc_prob1(const CompiledModel& model, const StateSet& targets) {
  const StateSet zero = dtmc_prob0(model, targets);
  // P(F T)(s) = 1 iff s cannot reach a probability-0 state before passing
  // through T (paths that hit T first have already succeeded).
  const StateSet can_fail = backward_closure(model, zero, &targets);
  return complement(can_fail);
}

StateSet forward_reachable(const CompiledModel& model, StateId from) {
  TML_REQUIRE(from < model.num_states(),
              "forward_reachable: state out of range");
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  StateSet reached(model.num_states(), false);
  std::deque<StateId> queue{from};
  reached[from] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (std::uint32_t k = choice_start[row_start[s]];
         k < choice_start[row_start[s + 1]]; ++k) {
      if (prob[k] > 0.0 && !reached[target[k]]) {
        reached[target[k]] = true;
        queue.push_back(target[k]);
      }
    }
  }
  return reached;
}

SccDecomposition scc_decomposition(const CompiledModel& model) {
  return tarjan_scc(model, nullptr);
}

std::vector<std::vector<StateId>> maximal_end_components(
    const CompiledModel& model, const StateSet& within) {
  require_size(model, within, "maximal_end_components");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();

  // Standard fixpoint: decompose the candidate set into SCCs over choices
  // whose support stays inside the source's own component, keep only states
  // with such an internal choice, repeat until both the candidate set and
  // the partition are stable. Filtering against the component — not just
  // the candidate union — is essential: a choice leaking into a DIFFERENT
  // component still contributes its internal edges under the union filter
  // and can hold together a "strongly connected" set that no policy can
  // keep closed (the glue edges belong to choices that may leave it).
  // Candidates shrink and partitions only refine, so the loop terminates.
  StateSet candidate = within;
  SccDecomposition d = tarjan_scc(model, &candidate);
  std::vector<std::uint32_t> comp;
  for (;;) {
    StateSet keep(n, false);
    bool changed = false;
    for (StateId s = 0; s < n; ++s) {
      if (!candidate[s]) continue;
      bool has_internal_choice = false;
      for (std::uint32_t c = row_start[s];
           c < row_start[s + 1] && !has_internal_choice; ++c) {
        bool inside = true;
        for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
          if (prob[k] <= 0.0) continue;
          const StateId t = target[k];
          if (!candidate[t] || d.component[t] != d.component[s]) {
            inside = false;
            break;
          }
        }
        has_internal_choice = inside;
      }
      if (has_internal_choice) {
        keep[s] = true;
      } else {
        changed = true;
      }
    }
    candidate = std::move(keep);
    if (!changed && comp == d.component) break;
    comp = d.component;
    d = tarjan_scc(model, &candidate, &comp);
  }

  std::vector<std::vector<StateId>> mecs;
  for (std::uint32_t b = 0; b < d.num_blocks(); ++b) {
    const auto block = d.block(b);
    mecs.emplace_back(block.begin(), block.end());  // already sorted
  }
  std::sort(mecs.begin(), mecs.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return mecs;
}

// ---------------------------------------------------------------------------
// Builder-facing wrappers: compile once, run the CSR kernel.

StateSet reachable_existential(const Mdp& mdp, const StateSet& targets) {
  return reachable_existential(compile(mdp), targets);
}

StateSet avoid_certain(const Mdp& mdp, const StateSet& targets) {
  return avoid_certain(compile(mdp), targets);
}

StateSet prob1_existential(const Mdp& mdp, const StateSet& targets) {
  return prob1_existential(compile(mdp), targets);
}

StateSet prob1_universal(const Mdp& mdp, const StateSet& targets) {
  return prob1_universal(compile(mdp), targets);
}

StateSet dtmc_reach_positive(const Dtmc& chain, const StateSet& targets) {
  return dtmc_reach_positive(compile(chain), targets);
}

StateSet dtmc_prob0(const Dtmc& chain, const StateSet& targets) {
  return dtmc_prob0(compile(chain), targets);
}

StateSet dtmc_prob1(const Dtmc& chain, const StateSet& targets) {
  return dtmc_prob1(compile(chain), targets);
}

StateSet forward_reachable(const Mdp& mdp, StateId from) {
  return forward_reachable(compile(mdp), from);
}

StateSet forward_reachable(const Dtmc& chain, StateId from) {
  return forward_reachable(compile(chain), from);
}

}  // namespace tml
