#include "src/mdp/graph.hpp"

#include <deque>

namespace tml {

namespace {

/// Predecessor lists over all choice edges (probability > 0).
std::vector<std::vector<StateId>> predecessors(const Mdp& mdp) {
  std::vector<std::vector<StateId>> preds(mdp.num_states());
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    for (const Choice& c : mdp.choices(s)) {
      for (const Transition& t : c.transitions) {
        if (t.probability > 0.0) preds[t.target].push_back(s);
      }
    }
  }
  return preds;
}

std::vector<std::vector<StateId>> predecessors(const Dtmc& chain) {
  std::vector<std::vector<StateId>> preds(chain.num_states());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    for (const Transition& t : chain.transitions(s)) {
      if (t.probability > 0.0) preds[t.target].push_back(s);
    }
  }
  return preds;
}

/// Backward closure of `seeds` over the predecessor relation. States in
/// `blocked` (when provided) are never added: a path that must pass through
/// a blocked state does not count. Used with blocked = targets to compute
/// "can fail before reaching the target".
StateSet backward_closure(const std::vector<std::vector<StateId>>& preds,
                          const StateSet& seeds,
                          const StateSet* blocked = nullptr) {
  StateSet reached = seeds;
  std::deque<StateId> queue;
  for (StateId s = 0; s < seeds.size(); ++s) {
    if (seeds[s]) queue.push_back(s);
  }
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (StateId p : preds[s]) {
      if (!reached[p] && (blocked == nullptr || !(*blocked)[p])) {
        reached[p] = true;
        queue.push_back(p);
      }
    }
  }
  return reached;
}

}  // namespace

StateSet reachable_existential(const Mdp& mdp, const StateSet& targets) {
  TML_REQUIRE(targets.size() == mdp.num_states(),
              "reachable_existential: target set size mismatch");
  return backward_closure(predecessors(mdp), targets);
}

StateSet avoid_certain(const Mdp& mdp, const StateSet& targets) {
  TML_REQUIRE(targets.size() == mdp.num_states(),
              "avoid_certain: target set size mismatch");
  const std::size_t n = mdp.num_states();
  // Greatest fixpoint: start from S \ T, repeatedly remove states with no
  // choice whose support stays inside the candidate set.
  StateSet inside = complement(targets);
  bool changed = true;
  while (changed) {
    changed = false;
    for (StateId s = 0; s < n; ++s) {
      if (!inside[s]) continue;
      bool has_safe_choice = false;
      for (const Choice& c : mdp.choices(s)) {
        bool all_inside = true;
        for (const Transition& t : c.transitions) {
          if (t.probability > 0.0 && !inside[t.target]) {
            all_inside = false;
            break;
          }
        }
        if (all_inside) {
          has_safe_choice = true;
          break;
        }
      }
      if (!has_safe_choice) {
        inside[s] = false;
        changed = true;
      }
    }
  }
  return inside;
}

StateSet prob1_existential(const Mdp& mdp, const StateSet& targets) {
  TML_REQUIRE(targets.size() == mdp.num_states(),
              "prob1_existential: target set size mismatch");
  const std::size_t n = mdp.num_states();
  // de Alfaro's nested fixpoint. Outer: over-approximation u of Prob1E.
  // Inner: states that can reach T via choices whose support stays in u.
  StateSet u(n, true);
  while (true) {
    StateSet v = targets;
    bool inner_changed = true;
    while (inner_changed) {
      inner_changed = false;
      for (StateId s = 0; s < n; ++s) {
        if (v[s] || !u[s]) continue;
        for (const Choice& c : mdp.choices(s)) {
          bool support_in_u = true;
          bool hits_v = false;
          for (const Transition& t : c.transitions) {
            if (t.probability <= 0.0) continue;
            if (!u[t.target]) support_in_u = false;
            if (v[t.target]) hits_v = true;
          }
          if (support_in_u && hits_v) {
            v[s] = true;
            inner_changed = true;
            break;
          }
        }
      }
    }
    if (v == u) return u;
    u = v;
  }
}

StateSet prob1_universal(const Mdp& mdp, const StateSet& targets) {
  // Pmin(F T)(s) < 1 iff some scheduler reaches, with positive probability
  // and WITHOUT passing through T, the region where T can be avoided
  // forever. Target states themselves always count as probability 1.
  const StateSet avoid = avoid_certain(mdp, targets);
  const StateSet can_escape =
      backward_closure(predecessors(mdp), avoid, &targets);
  return complement(can_escape);
}

StateSet dtmc_reach_positive(const Dtmc& chain, const StateSet& targets) {
  TML_REQUIRE(targets.size() == chain.num_states(),
              "dtmc_reach_positive: target set size mismatch");
  return backward_closure(predecessors(chain), targets);
}

StateSet dtmc_prob0(const Dtmc& chain, const StateSet& targets) {
  return complement(dtmc_reach_positive(chain, targets));
}

StateSet dtmc_prob1(const Dtmc& chain, const StateSet& targets) {
  const StateSet zero = dtmc_prob0(chain, targets);
  // P(F T)(s) = 1 iff s cannot reach a probability-0 state before passing
  // through T (paths that hit T first have already succeeded).
  const StateSet can_fail =
      backward_closure(predecessors(chain), zero, &targets);
  return complement(can_fail);
}

StateSet forward_reachable(const Mdp& mdp, StateId from) {
  TML_REQUIRE(from < mdp.num_states(), "forward_reachable: state out of range");
  StateSet reached(mdp.num_states(), false);
  std::deque<StateId> queue{from};
  reached[from] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const Choice& c : mdp.choices(s)) {
      for (const Transition& t : c.transitions) {
        if (t.probability > 0.0 && !reached[t.target]) {
          reached[t.target] = true;
          queue.push_back(t.target);
        }
      }
    }
  }
  return reached;
}

StateSet forward_reachable(const Dtmc& chain, StateId from) {
  TML_REQUIRE(from < chain.num_states(),
              "forward_reachable: state out of range");
  StateSet reached(chain.num_states(), false);
  std::deque<StateId> queue{from};
  reached[from] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const Transition& t : chain.transitions(s)) {
      if (t.probability > 0.0 && !reached[t.target]) {
        reached[t.target] = true;
        queue.push_back(t.target);
      }
    }
  }
  return reached;
}

}  // namespace tml
