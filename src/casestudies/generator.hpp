// Parameterized model-family generator: large PRISM-subset fixtures on tap.
//
// The ROADMAP's scaling work (bisimulation quotienting, compact CSR,
// serving) needs 10^5–10^6-state models to measure against, but the
// checked-in case studies top out at a few thousand states. This module
// generates three parameterized families — all emitting through
// `to_prism()`, so the output is exactly the PRISM subset our parser
// accepts, and all fully deterministic in (spec, seed) down to the byte:
//
//   * grid robot (MDP) — a W×W grid; the robot starts at (0,0) and chooses
//     up/down/left/right moves that slip laterally with dyadic probability
//     1/8 per side; walking off the grid bounces back. The far corner is
//     the absorbing "goal"; `hazard_density` seeds absorbing "hazard" cells
//     (placement drawn from `seed`). Every move costs reward 1. With no
//     hazards the grid has an exact diagonal symmetry (x,y) ~ (y,x), which
//     the bisimulation quotient finds — a structural, not replication,
//     collapse of ~2x.
//
//   * queueing mesh (DTMC) — a two-station tandem queue with per-queue
//     capacity C: slotted time, independent dyadic arrival / transfer /
//     departure events per slot (rates drawn as k/64 from `seed`), state
//     reward = total occupancy, labels "empty" and "full". (C+1)^2 states
//     with no symmetry at all: the quotient's worst case, kept as the
//     no-collapse control family.
//
//   * replicated WSN field (MDP) — R independent copies of the paper's §V-A
//     wireless-sensor grid (src/casestudies/wsn.hpp), a dispatcher state
//     routing the query uniformly to one replica's source, and a shared
//     "delivered" sink. With `jitter` 0 the replicas are identical and
//     bisimulation collapses R*g^2+2 states to g^2+2 — the massive
//     symmetry-reduction case; nonzero `jitter` perturbs each replica's
//     ignore probabilities (dyadic deltas from `seed`) and destroys the
//     collapse. R == 1 is exactly `build_wsn_mdp` — byte-compatible with
//     the hand-written wsn.prism fixture.

#pragma once

#include <cstdint>
#include <string>

#include "src/mdp/model.hpp"

namespace tml {

enum class GeneratorFamily { kGridRobot, kQueueMesh, kWsnField };

/// Wire/CLI name of a family ("grid", "queue", "wsn").
const char* family_name(GeneratorFamily family);

struct GeneratorSpec {
  GeneratorFamily family = GeneratorFamily::kWsnField;
  /// Family scale knob: grid side W (grid robot, W^2 states), per-queue
  /// capacity C (queueing mesh, (C+1)^2 states), or replica count R
  /// (WSN field, R*g^2 + 2 states; g^2 + 1 when R == 1).
  std::size_t size = 3;
  /// Seeds every randomized ingredient (hazard placement, queue rates,
  /// replica jitter). Identical specs generate identical bytes.
  std::uint64_t seed = 1;
  /// Grid robot: fraction of non-corner cells turned into absorbing
  /// "hazard" states.
  double hazard_density = 0.0;
  /// WSN field: per-replica ignore-probability perturbation amplitude.
  /// 0 keeps the replicas identical (the maximally collapsible case).
  double jitter = 0.0;
  /// WSN field: grid side of each replica (paper: 3).
  std::size_t wsn_grid = 3;
};

/// Number of states the spec's model will have, without building it —
/// lets tests and CI smoke checks assert scale cheaply.
std::size_t expected_states(const GeneratorSpec& spec);

/// True when the family generates a DTMC (queueing mesh), false for the
/// MDP families.
bool family_is_dtmc(GeneratorFamily family);

Mdp generate_grid_robot(const GeneratorSpec& spec);
Dtmc generate_queue_mesh(const GeneratorSpec& spec);
Mdp generate_wsn_field(const GeneratorSpec& spec);

/// Builds the spec's model and serializes it through to_prism() — the
/// single entry point tml_gen and the round-trip tests use.
std::string generate_prism(const GeneratorSpec& spec);

}  // namespace tml
