// Autonomous-car obstacle avoidance case study (§V-B, Fig. 1).
//
// Eleven states. Right lane: S0 (start) → S1 → S2 (van/collision, unsafe)
// → S3 → S4 (target sink). Left lane: S5 → S6 → S7 → S8 → S9. S10 is the
// off-road / failed-to-return sink (unsafe). Actions: 0 = move forward,
// 1 = change lane to the left, 2 = change lane to the right; available in
// S0–S3 and S5–S9 (the paper's Fig. 1); S2 keeps its actions (it is unsafe
// but not absorbing), S4 and S10 are sinks.
//
// Deterministic dynamics (with an optional slip probability for the
// stochastic variants used in tests):
//   right Si --0--> S(i+1);            S9 --0--> S10 (ran out of road)
//   right Si --1--> left  S(i+5)  (same longitudinal position)
//   left  Si --2--> right S(i−5)
//   right Si --2--> S10, left Si --1--> S10   (off-road)
//
// Features per state (the paper's φ1, φ2, φ3): lane indicator (1 = right
// lane), normalized distance to the nearest unsafe state {S2, S10}, and
// the goal indicator for S4.
//
// The expert demonstration given in §V-B:
//   (S0,0),(S1,1),(S6,0),(S7,0),(S8,2),(S3,0),(S4,0).

#pragma once

#include "src/irl/features.hpp"
#include "src/mdp/model.hpp"
#include "src/mdp/trajectory.hpp"

namespace tml {

struct CarConfig {
  /// Probability that an action slips to "stay in place" (0 = the paper's
  /// deterministic maneuver model).
  double slip = 0.0;
};

/// Builds the 11-state MDP. Labels: "unsafe" on S2 and S10, "crash" on S2,
/// "offroad" on S10, "goal" on S4, "right" / "left" lane markers.
/// State names are "S0".."S10"; action names "forward", "left", "right".
Mdp build_car_mdp(const CarConfig& config = {});

/// The three-feature map of §V-B.
StateFeatures car_features(const Mdp& mdp);

/// The expert trajectory of §V-B as a dataset (one demonstration).
TrajectoryDataset car_expert_demonstrations(const Mdp& mdp);

/// Formats a deterministic policy as the paper prints it:
/// "(S0,1),(S1,0),...". Sink states show their single action 0.
std::string car_policy_to_string(const Mdp& mdp, const Policy& policy);

/// True if following `policy` from S0 ever enters an unsafe state within
/// `max_steps` (deterministic dynamics walk; with slip > 0 this checks the
/// zero-slip skeleton).
bool car_policy_unsafe(const Mdp& mdp, const Policy& policy,
                       std::size_t max_steps = 32);

}  // namespace tml
