// Wireless-sensor-network query routing case study (§V-A).
//
// A 3×3 grid of nodes n11..n33. Row 1 holds "station" nodes (n11 forwards
// to the base station), row 3 holds "field" nodes; a query originates at
// the field node n33 and must be routed peer-to-peer to n11 and forwarded
// on. A node asked to accept a message ignores it with a node-dependent
// probability; each forwarding attempt costs reward 1, so the cumulative
// reward R{attempts} counts the attempts needed to deliver
// (`R<=X [ F "delivered" ]`).
//
// We flatten the paper's network of per-node MDPs (composed by shared
// actions; the underlying SRI tech report is unavailable) into a routing
// MDP over the message's location: at each node the routing controller
// chooses which toward-station neighbour to forward to; the attempt
// succeeds with probability 1 − ignore(neighbour) and otherwise the message
// stays put and is retried. This preserves exactly the quantity §V-A
// measures (expected forwarding attempts as a function of the node ignore
// probabilities) — see DESIGN.md, substitutions.
//
// Repair parameters, as in the paper: correction p lowers the ignore
// probability of field/station nodes (rows 1 and 3), correction q lowers
// that of the other nodes (row 2).

#pragma once

#include <string>

#include "src/core/perturbation.hpp"
#include "src/learn/weighted_mle.hpp"
#include "src/mdp/model.hpp"
#include "src/mdp/trajectory.hpp"

namespace tml {

struct WsnConfig {
  /// Ignore probability of field (row 3) and station (row 1) nodes.
  /// Calibrated so the base model's expected attempts land above 40 (the
  /// X=40 case needs repair) but below 100 (X=100 holds outright).
  double ignore_field_station = 0.92;
  /// Ignore probability of the remaining (row 2) nodes. Higher than the
  /// field/station rows so the optimal route hugs the grid edge through
  /// n32 — the node §V-A.2's Data Repair reasons about.
  double ignore_other = 0.94;
  /// Grid side (paper: 3).
  std::size_t grid = 3;
  /// Extra ignore probability for nodes in the far column (j = grid).
  /// Breaks the tie between the two edge routes so the optimal policy goes
  /// through n32 — the node §V-A.2's Data Repair reasons about.
  double far_column_bias = 0.004;
};

/// The routing MDP at corrections (p, q): ignore probabilities become
/// ignore_field_station − p and ignore_other − q. State names are
/// "n<i><j>" plus the "done" state labelled "delivered"; the initial state
/// is n<grid><grid> (the query source).
Mdp build_wsn_mdp(const WsnConfig& config, double p = 0.0, double q = 0.0);

/// True if grid row `i` (1-based) holds field or station nodes.
bool wsn_is_field_or_station_row(const WsnConfig& config, std::size_t i);

/// Perturbation scheme over the induced routing chain implementing the
/// paper's (p, q) corrections: p raises the success probability of every
/// chosen hop into a field/station node (balanced against the retry
/// self-loop), q likewise for other nodes. Bounds [0, max_correction]
/// define Feas_MP.
PerturbationScheme wsn_perturbation(const WsnConfig& config,
                                    const Dtmc& induced,
                                    double max_correction);

/// Generates message-routing traces by simulating the chain induced by the
/// optimal (minimum-attempts) routing policy of the given MDP. Each
/// trajectory is one routed query (absorbed at "done" or cut at max_steps).
TrajectoryDataset generate_wsn_traces(const Mdp& mdp, std::size_t num_queries,
                                      std::uint64_t seed,
                                      std::size_t max_steps = 400);

/// Splits a trace dataset (over the induced chain of `mdp`) into the
/// paper's Data Repair groups: per-step observations at n11 and n32 that
/// show the message being ignored ("ign_n11", "ign_n32") and failed
/// forwarding at the remaining nodes ("fwd_fail"); successful forwards are
/// pinned as trusted. Since our repair groups are per-trajectory, the
/// dataset is first exploded into single-step trajectories.
struct WsnDataRepairSetup {
  TrajectoryDataset step_data;          ///< one-step trajectories
  std::vector<RepairGroup> groups;      ///< ign_n11, ign_n32, fwd_fail + pinned
};
WsnDataRepairSetup wsn_data_repair_setup(const Mdp& mdp,
                                         const Dtmc& induced,
                                         const TrajectoryDataset& traces);

}  // namespace tml
