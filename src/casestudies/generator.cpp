#include "src/casestudies/generator.hpp"

#include <algorithm>
#include <vector>

#include "src/casestudies/wsn.hpp"
#include "src/common/rng.hpp"
#include "src/mdp/export.hpp"

namespace tml {

namespace {

/// Merges duplicate targets (e.g. bounce-backs folding into the current
/// cell) so each transition row has unique, ascending targets.
std::vector<Transition> merge_targets(std::vector<Transition> row) {
  std::sort(row.begin(), row.end(),
            [](const Transition& a, const Transition& b) {
              return a.target < b.target;
            });
  std::size_t w = 0;
  for (std::size_t r = 0; r < row.size(); ++r) {
    if (w > 0 && row[w - 1].target == row[r].target) {
      row[w - 1].probability += row[r].probability;
    } else {
      row[w++] = row[r];
    }
  }
  row.resize(w);
  return row;
}

}  // namespace

const char* family_name(GeneratorFamily family) {
  switch (family) {
    case GeneratorFamily::kGridRobot: return "grid";
    case GeneratorFamily::kQueueMesh: return "queue";
    case GeneratorFamily::kWsnField: return "wsn";
  }
  return "unknown";
}

bool family_is_dtmc(GeneratorFamily family) {
  return family == GeneratorFamily::kQueueMesh;
}

std::size_t expected_states(const GeneratorSpec& spec) {
  switch (spec.family) {
    case GeneratorFamily::kGridRobot:
      return spec.size * spec.size;
    case GeneratorFamily::kQueueMesh:
      return (spec.size + 1) * (spec.size + 1);
    case GeneratorFamily::kWsnField:
      if (spec.size <= 1) return spec.wsn_grid * spec.wsn_grid + 1;
      return spec.size * spec.wsn_grid * spec.wsn_grid + 2;
  }
  return 0;
}

Mdp generate_grid_robot(const GeneratorSpec& spec) {
  const std::size_t w = spec.size;
  TML_REQUIRE(w >= 2, "grid robot: side must be at least 2, got " << w);
  TML_REQUIRE(spec.hazard_density >= 0.0 && spec.hazard_density < 1.0,
              "grid robot: hazard density out of [0,1): "
                  << spec.hazard_density);
  const auto index = [w](std::size_t x, std::size_t y) {
    return static_cast<StateId>(y * w + x);
  };
  const StateId goal = index(w - 1, w - 1);

  Mdp mdp(w * w);
  mdp.set_initial_state(index(0, 0));
  mdp.add_label(goal, "goal");

  // Hazard placement from the seed; the start and goal corners stay clear.
  Rng rng(spec.seed);
  StateSet hazard(w * w);
  for (std::size_t y = 0; y < w; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const StateId s = index(x, y);
      if (s == mdp.initial_state() || s == goal) continue;
      if (spec.hazard_density > 0.0 && rng.bernoulli(spec.hazard_density)) {
        hazard.set(s);
        mdp.add_label(s, "hazard");
      }
    }
  }

  // Moves: intended direction with probability 3/4, each lateral slip 1/8
  // (all dyadic, so quotient signatures aggregate exactly). Off-grid mass
  // bounces back onto the current cell.
  struct Dir {
    const char* name;
    int dx, dy;
  };
  constexpr Dir kDirs[] = {
      {"up", 0, -1}, {"down", 0, 1}, {"left", -1, 0}, {"right", 1, 0}};
  const auto step = [&](std::size_t x, std::size_t y, const Dir& d) {
    const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(x) + d.dx;
    const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(y) + d.dy;
    if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(w) ||
        ny >= static_cast<std::ptrdiff_t>(w)) {
      return index(x, y);  // bounce
    }
    return index(static_cast<std::size_t>(nx), static_cast<std::size_t>(ny));
  };
  for (std::size_t y = 0; y < w; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const StateId s = index(x, y);
      if (s == goal || hazard[s]) {
        mdp.add_choice(s, "stay", {Transition{s, 1.0}}, 0.0);
        continue;
      }
      for (std::size_t d = 0; d < 4; ++d) {
        // Laterals of a vertical move are the horizontal moves and vice
        // versa (dirs 0/1 are vertical, 2/3 horizontal).
        const Dir& main = kDirs[d];
        const Dir& lat_a = kDirs[d < 2 ? 2 : 0];
        const Dir& lat_b = kDirs[d < 2 ? 3 : 1];
        mdp.add_choice(s, main.name,
                       merge_targets({Transition{step(x, y, main), 0.75},
                                      Transition{step(x, y, lat_a), 0.125},
                                      Transition{step(x, y, lat_b), 0.125}}),
                       1.0);
      }
    }
  }
  mdp.validate();
  return mdp;
}

Dtmc generate_queue_mesh(const GeneratorSpec& spec) {
  const std::size_t c = spec.size;
  TML_REQUIRE(c >= 1, "queue mesh: capacity must be at least 1");
  const std::size_t side = c + 1;
  const auto index = [side](std::size_t q1, std::size_t q2) {
    return static_cast<StateId>(q1 * side + q2);
  };

  // Dyadic slot rates k/64 drawn from the seed: arrival into queue 1,
  // transfer 1 -> 2, departure from queue 2.
  Rng rng(spec.seed);
  const double arrive = static_cast<double>(16 + rng.index(9)) / 64.0;
  const double transfer = static_cast<double>(24 + rng.index(9)) / 64.0;
  const double depart = static_cast<double>(20 + rng.index(9)) / 64.0;

  Dtmc chain(side * side);
  chain.set_initial_state(index(0, 0));
  for (std::size_t q1 = 0; q1 < side; ++q1) {
    for (std::size_t q2 = 0; q2 < side; ++q2) {
      const StateId s = index(q1, q2);
      chain.set_state_reward(s, static_cast<double>(q1 + q2));
      if (q1 == 0 && q2 == 0) chain.add_label(s, "empty");
      if (q1 == c) chain.add_label(s, "full");
      // Independent slot events, gated on the current occupancy; the three
      // event bits enumerate up to 8 outcomes whose dyadic probabilities
      // multiply exactly.
      const bool can_arrive = q1 < c;
      const bool can_transfer = q1 > 0 && q2 < c;
      const bool can_depart = q2 > 0;
      std::vector<Transition> row;
      for (int bits = 0; bits < 8; ++bits) {
        const bool a = can_arrive && (bits & 1);
        const bool t = can_transfer && (bits & 2);
        const bool d = can_depart && (bits & 4);
        double p = 1.0;
        if (can_arrive) p *= a ? arrive : 1.0 - arrive;
        if (can_transfer) p *= t ? transfer : 1.0 - transfer;
        if (can_depart) p *= d ? depart : 1.0 - depart;
        // Ungated event bits would double-count outcomes; only keep the
        // canonical (bit = 0) copy.
        if ((!can_arrive && (bits & 1)) || (!can_transfer && (bits & 2)) ||
            (!can_depart && (bits & 4))) {
          continue;
        }
        const std::size_t n1 = q1 + (a ? 1 : 0) - (t ? 1 : 0);
        const std::size_t n2 = q2 + (t ? 1 : 0) - (d ? 1 : 0);
        row.push_back(Transition{index(n1, n2), p});
      }
      chain.set_transitions(s, merge_targets(std::move(row)));
    }
  }
  chain.validate();
  return chain;
}

Mdp generate_wsn_field(const GeneratorSpec& spec) {
  const std::size_t g = spec.wsn_grid;
  const std::size_t replicas = std::max<std::size_t>(1, spec.size);
  WsnConfig config;
  config.grid = g;
  if (replicas == 1) {
    // Single replica: exactly the paper's §V-A model (and byte-compatible
    // with the checked-in wsn.prism when g == 3); jitter has no one to
    // differentiate, so it is ignored.
    return build_wsn_mdp(config);
  }
  TML_REQUIRE(spec.jitter >= 0.0 && spec.jitter < 0.05,
              "wsn field: jitter amplitude out of [0, 0.05): " << spec.jitter);

  // Per-replica ignore-probability delta: jitter * (k - 128)/256 with
  // k drawn from the seed — dyadic when jitter is, and 0 when jitter is 0
  // (identical replicas, the maximally collapsible case).
  Rng rng(spec.seed);
  std::vector<double> delta(replicas, 0.0);
  for (std::size_t r = 0; r < replicas; ++r) {
    const double draw = static_cast<double>(rng.index(257)) - 128.0;
    delta[r] = spec.jitter * draw / 256.0;
  }

  const std::size_t nodes = g * g;
  const StateId done = static_cast<StateId>(replicas * nodes);
  const StateId dispatch = done + 1;
  const auto node = [&](std::size_t r, std::size_t i, std::size_t j) {
    return static_cast<StateId>(r * nodes + (i - 1) * g + (j - 1));
  };
  const auto ignore = [&](std::size_t r, std::size_t i, std::size_t j) {
    double base = wsn_is_field_or_station_row(config, i)
                      ? config.ignore_field_station
                      : config.ignore_other;
    if (j == g) base += config.far_column_bias;
    base += delta[r];
    TML_REQUIRE(base > 0.0 && base < 1.0,
                "wsn field: jittered ignore probability out of (0,1)");
    return base;
  };

  Mdp mdp(replicas * nodes + 2);
  mdp.set_initial_state(dispatch);
  mdp.add_label(done, "delivered");

  // Uniform dispatcher: route the query to one replica's source (its
  // far-corner field node).
  std::vector<Transition> route;
  route.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    route.push_back(
        Transition{node(r, g, g), 1.0 / static_cast<double>(replicas)});
  }
  mdp.add_choice(dispatch, "route", std::move(route), 0.0);

  for (std::size_t r = 0; r < replicas; ++r) {
    for (std::size_t i = 1; i <= g; ++i) {
      for (std::size_t j = 1; j <= g; ++j) {
        const StateId s = node(r, i, j);
        if (i == 1) mdp.add_label(s, "station");
        if (i == g) mdp.add_label(s, "field");
        if (i == 1 && j == 1) {
          const double ign = ignore(r, 1, 1);
          mdp.add_choice(s, "deliver",
                         {Transition{done, 1.0 - ign}, Transition{s, ign}},
                         1.0);
          continue;
        }
        if (i > 1) {  // forward toward the station row
          const StateId t = node(r, i - 1, j);
          const double ign = ignore(r, i - 1, j);
          mdp.add_choice(s, "fwd_up",
                         {Transition{t, 1.0 - ign}, Transition{s, ign}}, 1.0);
        }
        if (j > 1) {  // forward left
          const StateId t = node(r, i, j - 1);
          const double ign = ignore(r, i, j - 1);
          mdp.add_choice(s, "fwd_left",
                         {Transition{t, 1.0 - ign}, Transition{s, ign}}, 1.0);
        }
      }
    }
  }
  mdp.add_choice(done, "stay", {Transition{done, 1.0}}, 0.0);
  mdp.validate();
  return mdp;
}

std::string generate_prism(const GeneratorSpec& spec) {
  switch (spec.family) {
    case GeneratorFamily::kGridRobot:
      return to_prism(generate_grid_robot(spec), "grid_robot");
    case GeneratorFamily::kQueueMesh:
      return to_prism(generate_queue_mesh(spec), "queue_mesh");
    case GeneratorFamily::kWsnField:
      return to_prism(generate_wsn_field(spec), "wsn_field");
  }
  TML_REQUIRE(false, "generate_prism: unknown family");
  return {};
}

}  // namespace tml
