#include "src/casestudies/wsn.hpp"

#include <cmath>

#include "src/mdp/simulate.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

std::string node_name(std::size_t i, std::size_t j) {
  return "n" + std::to_string(i) + std::to_string(j);
}

double ignore_probability(const WsnConfig& config, std::size_t row,
                          std::size_t col, double p, double q) {
  double base = wsn_is_field_or_station_row(config, row)
                    ? config.ignore_field_station - p
                    : config.ignore_other - q;
  if (col == config.grid) base += config.far_column_bias;
  TML_REQUIRE(base > 0.0 && base < 1.0,
              "wsn: corrected ignore probability out of (0,1): " << base);
  return base;
}

}  // namespace

bool wsn_is_field_or_station_row(const WsnConfig& config, std::size_t i) {
  return i == 1 || i == config.grid;
}

Mdp build_wsn_mdp(const WsnConfig& config, double p, double q) {
  TML_REQUIRE(config.grid >= 2, "wsn: grid must be at least 2x2");
  const std::size_t n = config.grid;
  auto index = [n](std::size_t i, std::size_t j) {
    return static_cast<StateId>((i - 1) * n + (j - 1));
  };
  const StateId done = static_cast<StateId>(n * n);

  Mdp mdp(n * n + 1);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      mdp.set_state_name(index(i, j), node_name(i, j));
      if (i == 1) mdp.add_label(index(i, j), "station");
      if (i == n) mdp.add_label(index(i, j), "field");
    }
  }
  mdp.set_state_name(done, "done");
  mdp.add_label(done, "delivered");
  mdp.set_initial_state(index(n, n));

  // Forwarding choices: each attempt costs reward 1; the entered node
  // accepts with probability 1 − ignore(entered node), else the message
  // stays for a retry.
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const StateId s = index(i, j);
      if (i == 1 && j == 1) {
        // n11 forwards straight to the base station hub.
        const double ign = ignore_probability(config, 1, 1, p, q);
        mdp.add_choice(s, "deliver",
                       {Transition{done, 1.0 - ign}, Transition{s, ign}},
                       1.0);
        continue;
      }
      if (i > 1) {  // forward "up" toward the station row
        const StateId t = index(i - 1, j);
        const double ign = ignore_probability(config, i - 1, j, p, q);
        mdp.add_choice(s, "fwd_" + node_name(i - 1, j),
                       {Transition{t, 1.0 - ign}, Transition{s, ign}}, 1.0);
      }
      if (j > 1) {  // forward "left"
        const StateId t = index(i, j - 1);
        const double ign = ignore_probability(config, i, j - 1, p, q);
        mdp.add_choice(s, "fwd_" + node_name(i, j - 1),
                       {Transition{t, 1.0 - ign}, Transition{s, ign}}, 1.0);
      }
    }
  }
  mdp.add_choice(done, "stay", {Transition{done, 1.0}}, 0.0);
  mdp.validate();
  return mdp;
}

PerturbationScheme wsn_perturbation(const WsnConfig& config,
                                    const Dtmc& induced,
                                    double max_correction) {
  TML_REQUIRE(max_correction > 0.0, "wsn_perturbation: non-positive cap");
  PerturbationScheme scheme(induced);
  const Var p = scheme.add_variable("p", 0.0, max_correction);
  const Var q = scheme.add_variable("q", 0.0, max_correction);

  const std::size_t n = config.grid;
  const StateId done = induced.state_by_name("done");
  for (StateId s = 0; s < induced.num_states(); ++s) {
    if (s == done) continue;
    // Routing rows have the shape {hop target, self retry}; find the hop.
    const auto& row = induced.transitions(s);
    StateId hop = s;
    for (const Transition& t : row) {
      if (t.target != s) hop = t.target;
    }
    if (hop == s) continue;  // detached state
    // Class of the *entered* node decides which correction applies; the
    // "done" hop is n11's delivery, governed by the station row.
    std::size_t entered_row;
    if (hop == done) {
      entered_row = 1;
    } else {
      entered_row = static_cast<std::size_t>(hop) / n + 1;
    }
    const Var var = wsn_is_field_or_station_row(config, entered_row) ? p : q;
    // Correction raises the success probability, balanced against the
    // retry self-loop.
    scheme.attach_balanced(var, s, hop, s);
  }
  return scheme;
}

TrajectoryDataset generate_wsn_traces(const Mdp& mdp, std::size_t num_queries,
                                      std::uint64_t seed,
                                      std::size_t max_steps) {
  const StateSet delivered = mdp.states_with_label("delivered");
  const Policy policy =
      total_reward_to_target(mdp, delivered, Objective::kMinimize).policy;
  Rng rng(seed);
  SimulationOptions options;
  options.max_steps = max_steps;
  options.absorbing = delivered;
  return simulate_dataset(mdp, policy, rng, num_queries, options);
}

WsnDataRepairSetup wsn_data_repair_setup(const Mdp& mdp, const Dtmc& induced,
                                         const TrajectoryDataset& traces) {
  WsnDataRepairSetup setup;
  const StateId n11 = induced.state_by_name("n11");
  const StateId n32 = induced.state_by_name("n32");

  RepairGroup ign_n11{"n11", {}, false};
  RepairGroup ign_n32{"n32", {}, false};
  RepairGroup fwd_fail{"fwd_fail", {}, false};
  RepairGroup success{"success", {}, true};

  for (const Trajectory& trace : traces.trajectories) {
    for (const Step& step : trace.steps) {
      Trajectory single;
      single.initial_state = step.state;
      // The induced chain is a one-choice-per-state structure; steps are
      // re-indexed to choice 0 of the DTMC view.
      single.steps.push_back(Step{step.state, 0, 0, step.next_state});
      const std::size_t idx = setup.step_data.size();
      setup.step_data.add(std::move(single));
      const bool ignored = step.next_state == step.state;
      if (!ignored) {
        success.members.push_back(idx);
      } else if (step.state == n11) {
        ign_n11.members.push_back(idx);
      } else if (step.state == n32) {
        ign_n32.members.push_back(idx);
      } else {
        fwd_fail.members.push_back(idx);
      }
    }
  }
  TML_REQUIRE(!ign_n11.members.empty(),
              "wsn_data_repair_setup: no ignore observations at n11 — "
              "increase the trace count");
  TML_REQUIRE(!ign_n32.members.empty(),
              "wsn_data_repair_setup: no ignore observations at n32 — the "
              "routing policy must pass through n32");
  setup.groups = {std::move(ign_n11), std::move(ign_n32), std::move(fwd_fail),
                  std::move(success)};
  (void)mdp;
  return setup;
}

}  // namespace tml
