#include "src/casestudies/car.hpp"

#include <algorithm>
#include <sstream>

namespace tml {

namespace {

constexpr StateId kGoal = 4;
constexpr StateId kCrash = 2;
constexpr StateId kOffroad = 10;

bool is_right_lane(StateId s) { return s <= 4; }
bool is_left_lane(StateId s) { return s >= 5 && s <= 9; }

/// Deterministic successor of (state, action); kOffroad for off-road moves.
StateId successor(StateId s, std::uint32_t action) {
  if (action == 0) {  // forward
    if (is_right_lane(s)) return s == kGoal ? kGoal : s + 1;
    if (is_left_lane(s)) return s == 9 ? kOffroad : s + 1;
    return kOffroad;
  }
  if (action == 1) {  // change lane to the left
    if (is_right_lane(s) && s != kGoal) return s + 5;
    return kOffroad;
  }
  // action == 2: change lane to the right
  if (is_left_lane(s)) return s - 5;
  return kOffroad;
}

std::vector<Transition> slip_transitions(StateId s, StateId target,
                                         double slip) {
  if (slip <= 0.0 || target == s) return {Transition{target, 1.0}};
  return {Transition{target, 1.0 - slip}, Transition{s, slip}};
}

}  // namespace

Mdp build_car_mdp(const CarConfig& config) {
  TML_REQUIRE(config.slip >= 0.0 && config.slip < 1.0,
              "build_car_mdp: slip must be in [0,1)");
  Mdp mdp(11);
  for (StateId s = 0; s <= 10; ++s) {
    mdp.set_state_name(s, "S" + std::to_string(s));
  }
  mdp.set_initial_state(0);

  const ActionId forward = mdp.declare_action("forward");
  const ActionId left = mdp.declare_action("left");
  const ActionId right = mdp.declare_action("right");

  for (StateId s = 0; s <= 10; ++s) {
    if (s == kGoal || s == kOffroad) {
      mdp.add_choice(s, forward, {Transition{s, 1.0}});
      continue;
    }
    mdp.add_choice(s, forward,
                   slip_transitions(s, successor(s, 0), config.slip));
    mdp.add_choice(s, left, slip_transitions(s, successor(s, 1), config.slip));
    mdp.add_choice(s, right,
                   slip_transitions(s, successor(s, 2), config.slip));
  }

  mdp.add_label(kCrash, "unsafe");
  mdp.add_label(kCrash, "crash");
  mdp.add_label(kOffroad, "unsafe");
  mdp.add_label(kOffroad, "offroad");
  mdp.add_label(kGoal, "goal");
  for (StateId s = 0; s <= 4; ++s) mdp.add_label(s, "right");
  for (StateId s = 5; s <= 9; ++s) mdp.add_label(s, "left");

  mdp.validate();
  return mdp;
}

StateFeatures car_features(const Mdp& mdp) {
  TML_REQUIRE(mdp.num_states() == 11, "car_features: wrong model");
  StateFeatures features(11, 3);

  // φ2: Manhattan distance on the (lane, position) layout to the nearest
  // unsafe location — S2 at (right, 2), S10 just past the left lane's end
  // at (left, 5) — normalized by the maximum distance.
  auto lane_pos = [](StateId s) -> std::pair<int, int> {
    if (s <= 4) return {0, static_cast<int>(s)};
    if (s <= 9) return {1, static_cast<int>(s) - 5};
    return {1, 5};
  };
  std::vector<double> distance(11, 0.0);
  double max_distance = 0.0;
  for (StateId s = 0; s <= 10; ++s) {
    const auto [lane, pos] = lane_pos(s);
    const int d_crash = std::abs(lane - 0) + std::abs(pos - 2);
    const int d_off = std::abs(lane - 1) + std::abs(pos - 5);
    distance[s] = static_cast<double>(std::min(d_crash, d_off));
    max_distance = std::max(max_distance, distance[s]);
  }

  for (StateId s = 0; s <= 10; ++s) {
    features.set(s, 0, mdp.has_label(s, "right") ? 1.0 : 0.0);  // φ1: lane
    features.set(s, 1, distance[s] / max_distance);             // φ2: safety
    features.set(s, 2, s == kGoal ? 1.0 : 0.0);                 // φ3: goal
  }
  return features;
}

TrajectoryDataset car_expert_demonstrations(const Mdp& mdp) {
  // §V-B: (S0,0),(S1,1),(S6,0),(S7,0),(S8,2),(S3,0),(S4,0).
  const std::vector<std::pair<StateId, std::uint32_t>> expert = {
      {0, 0}, {1, 1}, {6, 0}, {7, 0}, {8, 2}, {3, 0}};
  Trajectory demo;
  demo.initial_state = 0;
  StateId current = 0;
  for (const auto& [state, action] : expert) {
    TML_REQUIRE(state == current, "car expert demo: discontinuous trajectory");
    const StateId next = successor(state, action);
    demo.steps.push_back(
        Step{state, action, mdp.choices(state)[action].action, next});
    current = next;
  }
  TML_REQUIRE(current == kGoal, "car expert demo: does not reach the goal");
  TrajectoryDataset data;
  data.add(std::move(demo));
  return data;
}

std::string car_policy_to_string(const Mdp& mdp, const Policy& policy) {
  std::ostringstream os;
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    if (s > 0) os << ", ";
    const Choice& choice = mdp.choices(s)[policy.at(s)];
    os << "(" << mdp.state_name(s) << "," << choice.action << ")";
  }
  return os.str();
}

bool car_policy_unsafe(const Mdp& mdp, const Policy& policy,
                       std::size_t max_steps) {
  StateId current = mdp.initial_state();
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (mdp.has_label(current, "unsafe")) return true;
    const Choice& choice = mdp.choices(current)[policy.at(current)];
    // Zero-slip skeleton: follow the intended (non-self) successor.
    StateId next = current;
    double best = -1.0;
    for (const Transition& t : choice.transitions) {
      if (t.target != current && t.probability > best) {
        best = t.probability;
        next = t.target;
      }
    }
    if (next == current) break;  // sink
    current = next;
  }
  return mdp.has_label(current, "unsafe");
}

}  // namespace tml
