#include "src/hmm/hmm.hpp"

#include <algorithm>
#include <cmath>

namespace tml {

namespace {

void check_distribution(const std::vector<double>& row, double tol,
                        const std::string& what) {
  double sum = 0.0;
  for (double p : row) {
    if (p < -tol || p > 1.0 + tol) {
      throw ModelError(what + ": entry " + std::to_string(p) +
                       " out of [0,1]");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > tol) {
    throw ModelError(what + ": sums to " + std::to_string(sum));
  }
}

std::size_t sample_index(const std::vector<double>& dist, Rng& rng) {
  return rng.categorical(dist);
}

}  // namespace

void Hmm::validate(double tol) const {
  if (initial.empty()) throw ModelError("Hmm: no states");
  if (transition.size() != num_states() || emission.size() != num_states()) {
    throw ModelError("Hmm: matrix row counts disagree with num_states");
  }
  check_distribution(initial, tol, "Hmm initial");
  for (std::size_t i = 0; i < num_states(); ++i) {
    if (transition[i].size() != num_states()) {
      throw ModelError("Hmm: transition row size mismatch");
    }
    check_distribution(transition[i], tol,
                       "Hmm transition row " + std::to_string(i));
    if (emission[i].size() != num_symbols() || emission[i].empty()) {
      throw ModelError("Hmm: emission row size mismatch");
    }
    check_distribution(emission[i], tol,
                       "Hmm emission row " + std::to_string(i));
  }
}

Hmm::Sample Hmm::sample(std::size_t length, Rng& rng) const {
  validate();
  Sample out;
  if (length == 0) return out;
  std::size_t state = sample_index(initial, rng);
  for (std::size_t t = 0; t < length; ++t) {
    out.states.push_back(state);
    out.observations.push_back(sample_index(emission[state], rng));
    state = sample_index(transition[state], rng);
  }
  return out;
}

namespace {

/// Scaled forward–backward against (possibly reweighted) emission scores.
/// `score[i][o]` plays the role of B and need not be normalized — posterior
/// regularization multiplies in exp(−λ) factors.
HmmPosterior forward_backward_scored(
    const Hmm& hmm, const ObservationSequence& obs,
    const std::vector<std::vector<double>>& score) {
  const std::size_t n = hmm.num_states();
  const std::size_t len = obs.size();
  TML_REQUIRE(len > 0, "forward_backward: empty observation sequence");
  for (std::size_t o : obs) {
    TML_REQUIRE(o < hmm.num_symbols(),
                "forward_backward: observation symbol " << o
                    << " out of range");
  }

  std::vector<std::vector<double>> alpha(len, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> beta(len, std::vector<double>(n, 0.0));
  std::vector<double> scale(len, 0.0);

  // Forward.
  for (std::size_t i = 0; i < n; ++i) {
    alpha[0][i] = hmm.initial[i] * score[i][obs[0]];
    scale[0] += alpha[0][i];
  }
  TML_REQUIRE(scale[0] > 0.0, "forward_backward: impossible observation 0");
  for (double& a : alpha[0]) a /= scale[0];
  for (std::size_t t = 1; t < len; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += alpha[t - 1][i] * hmm.transition[i][j];
      }
      alpha[t][j] = acc * score[j][obs[t]];
      scale[t] += alpha[t][j];
    }
    TML_REQUIRE(scale[t] > 0.0,
                "forward_backward: impossible observation at position " << t);
    for (double& a : alpha[t]) a /= scale[t];
  }

  // Backward (same scaling).
  for (std::size_t i = 0; i < n; ++i) beta[len - 1][i] = 1.0;
  for (std::size_t t = len - 1; t-- > 0;) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        acc += hmm.transition[i][j] * score[j][obs[t + 1]] * beta[t + 1][j];
      }
      beta[t][i] = acc / scale[t + 1];
    }
  }

  HmmPosterior posterior;
  posterior.gamma.assign(len, std::vector<double>(n, 0.0));
  for (std::size_t t = 0; t < len; ++t) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      posterior.gamma[t][i] = alpha[t][i] * beta[t][i];
      total += posterior.gamma[t][i];
    }
    TML_ASSERT(total > 0.0, "forward_backward: zero posterior mass");
    for (double& g : posterior.gamma[t]) g /= total;
  }

  if (len > 1) {
    posterior.xi.assign(
        len - 1,
        std::vector<std::vector<double>>(n, std::vector<double>(n, 0.0)));
    for (std::size_t t = 0; t + 1 < len; ++t) {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          const double v = alpha[t][i] * hmm.transition[i][j] *
                           score[j][obs[t + 1]] * beta[t + 1][j];
          posterior.xi[t][i][j] = v;
          total += v;
        }
      }
      TML_ASSERT(total > 0.0, "forward_backward: zero xi mass");
      for (auto& row : posterior.xi[t]) {
        for (double& v : row) v /= total;
      }
    }
  }

  posterior.log_likelihood = 0.0;
  for (double c : scale) posterior.log_likelihood += std::log(c);
  return posterior;
}

double occupancy(const HmmPosterior& posterior, std::size_t state) {
  double total = 0.0;
  for (const auto& slice : posterior.gamma) total += slice[state];
  return total;
}

}  // namespace

HmmPosterior forward_backward(const Hmm& hmm, const ObservationSequence& obs) {
  hmm.validate();
  return forward_backward_scored(hmm, obs, hmm.emission);
}

double log_likelihood(const Hmm& hmm, const ObservationSequence& obs) {
  return forward_backward(hmm, obs).log_likelihood;
}

std::vector<std::size_t> viterbi(const Hmm& hmm,
                                 const ObservationSequence& obs) {
  hmm.validate();
  const std::size_t n = hmm.num_states();
  const std::size_t len = obs.size();
  TML_REQUIRE(len > 0, "viterbi: empty observation sequence");

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  auto safe_log = [](double p) {
    return p > 0.0 ? std::log(p) : -1e300;
  };

  std::vector<std::vector<double>> delta(len, std::vector<double>(n, kNegInf));
  std::vector<std::vector<std::size_t>> arg(len,
                                            std::vector<std::size_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    delta[0][i] = safe_log(hmm.initial[i]) + safe_log(hmm.emission[i][obs[0]]);
  }
  for (std::size_t t = 1; t < len; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      double best = kNegInf;
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double v = delta[t - 1][i] + safe_log(hmm.transition[i][j]);
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      delta[t][j] = best + safe_log(hmm.emission[j][obs[t]]);
      arg[t][j] = best_i;
    }
  }
  std::vector<std::size_t> path(len, 0);
  path[len - 1] = static_cast<std::size_t>(
      std::max_element(delta[len - 1].begin(), delta[len - 1].end()) -
      delta[len - 1].begin());
  for (std::size_t t = len - 1; t-- > 0;) {
    path[t] = arg[t + 1][path[t + 1]];
  }
  return path;
}

namespace {

/// Projects a sequence's posterior onto the occupancy constraints via
/// per-state multipliers λ: the emission scores of constrained states are
/// damped by exp(−λ) and forward–backward re-run — the exact
/// posterior-regularization projection for expectation constraints on a
/// chain. Occupancy is monotone non-increasing in the state's own λ, so
/// each multiplier is found by bisection (coordinate-wise rounds for
/// multiple constraints), which — unlike fixed-step dual ascent — cannot
/// oscillate and always lands on the feasible side of the bound.
HmmPosterior project_posterior(const Hmm& hmm, const ObservationSequence& obs,
                               const std::vector<OccupancyConstraint>& cs,
                               const EmOptions& options) {
  HmmPosterior posterior = forward_backward_scored(hmm, obs, hmm.emission);
  if (cs.empty()) return posterior;

  std::vector<double> lambda(cs.size(), 0.0);
  auto run_with = [&](const std::vector<double>& lambdas) {
    std::vector<std::vector<double>> score = hmm.emission;
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const double damp = std::exp(-lambdas[k]);
      for (double& s : score[cs[k].state]) s *= damp;
    }
    return forward_backward_scored(hmm, obs, score);
  };

  const std::size_t coordinate_rounds = cs.size() == 1 ? 1 : 3;
  for (std::size_t round = 0; round < coordinate_rounds; ++round) {
    for (std::size_t k = 0; k < cs.size(); ++k) {
      lambda[k] = 0.0;
      posterior = run_with(lambda);
      if (occupancy(posterior, cs[k].state) <=
          cs[k].max_expected_visits + 1e-9) {
        continue;  // inactive constraint
      }
      // Find an upper bracket where the bound holds.
      double hi = 1.0;
      const double hi_cap = 64.0;
      while (hi < hi_cap) {
        lambda[k] = hi;
        posterior = run_with(lambda);
        if (occupancy(posterior, cs[k].state) <=
            cs[k].max_expected_visits) {
          break;
        }
        hi *= 2.0;
      }
      double lo = 0.0;
      for (std::size_t it = 0; it < options.projection_iterations; ++it) {
        const double mid = 0.5 * (lo + hi);
        lambda[k] = mid;
        posterior = run_with(lambda);
        if (occupancy(posterior, cs[k].state) <=
            cs[k].max_expected_visits) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      // End on the feasible side.
      lambda[k] = hi;
      posterior = run_with(lambda);
    }
  }
  return posterior;
}

Hmm m_step(const Hmm& shape, const std::vector<HmmPosterior>& posteriors,
           const std::vector<ObservationSequence>& data, double smoothing) {
  const std::size_t n = shape.num_states();
  const std::size_t m = shape.num_symbols();
  Hmm out = shape;

  std::vector<double> pi(n, smoothing);
  std::vector<std::vector<double>> a(n, std::vector<double>(n, smoothing));
  std::vector<std::vector<double>> b(n, std::vector<double>(m, smoothing));

  for (std::size_t s = 0; s < data.size(); ++s) {
    const HmmPosterior& post = posteriors[s];
    for (std::size_t i = 0; i < n; ++i) pi[i] += post.gamma[0][i];
    for (const auto& slice : post.xi) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) a[i][j] += slice[i][j];
      }
    }
    for (std::size_t t = 0; t < data[s].size(); ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        b[i][data[s][t]] += post.gamma[t][i];
      }
    }
  }

  auto normalize = [](std::vector<double>& row) {
    double sum = 0.0;
    for (double v : row) sum += v;
    TML_REQUIRE(sum > 0.0, "m_step: empty row");
    for (double& v : row) v /= sum;
  };
  normalize(pi);
  for (auto& row : a) normalize(row);
  for (auto& row : b) normalize(row);
  out.initial = std::move(pi);
  out.transition = std::move(a);
  out.emission = std::move(b);
  return out;
}

EmResult em_loop(const Hmm& initial_model,
                 const std::vector<ObservationSequence>& data,
                 const std::vector<OccupancyConstraint>& constraints,
                 const EmOptions& options) {
  initial_model.validate();
  TML_REQUIRE(!data.empty(), "baum_welch: no observation sequences");
  for (const auto& seq : data) {
    TML_REQUIRE(!seq.empty(), "baum_welch: empty observation sequence");
  }

  EmResult result;
  result.model = initial_model;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::vector<HmmPosterior> posteriors;
    posteriors.reserve(data.size());
    double ll = 0.0;
    for (const auto& seq : data) {
      // The reported likelihood is under the unprojected model; the
      // projection only shapes the posterior the M-step consumes.
      ll += log_likelihood(result.model, seq);
      posteriors.push_back(
          project_posterior(result.model, seq, constraints, options));
    }
    result.log_likelihood_trace.push_back(ll);
    result.model =
        m_step(result.model, posteriors, data, options.smoothing);

    result.constrained_occupancy.assign(constraints.size(), 0.0);
    for (std::size_t k = 0; k < constraints.size(); ++k) {
      for (const HmmPosterior& post : posteriors) {
        result.constrained_occupancy[k] += occupancy(post,
                                                     constraints[k].state);
      }
      result.constrained_occupancy[k] /= static_cast<double>(data.size());
    }

    if (result.log_likelihood_trace.size() >= 2) {
      const double prev = result.log_likelihood_trace[
          result.log_likelihood_trace.size() - 2];
      if (std::abs(ll - prev) < options.tolerance * (1.0 + std::abs(prev))) {
        result.converged = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace

EmResult baum_welch(const Hmm& initial_model,
                    const std::vector<ObservationSequence>& data,
                    const EmOptions& options) {
  return em_loop(initial_model, data, {}, options);
}

EmResult constrained_baum_welch(
    const Hmm& initial_model, const std::vector<ObservationSequence>& data,
    const std::vector<OccupancyConstraint>& constraints,
    const EmOptions& options) {
  for (const OccupancyConstraint& c : constraints) {
    TML_REQUIRE(c.state < initial_model.num_states(),
                "constrained_baum_welch: constrained state out of range");
    TML_REQUIRE(c.max_expected_visits >= 0.0,
                "constrained_baum_welch: negative occupancy bound");
  }
  return em_loop(initial_model, data, constraints, options);
}

}  // namespace tml
