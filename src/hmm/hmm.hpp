// Hidden Markov models with constrained EM learning.
//
// §VII of the paper sketches how TML extends to "probabilistic models that
// have hidden states (e.g., Hidden Markov Models): we can incorporate the
// temporal constraints into the E-step of an EM algorithm for parameter
// learning." This module implements that extension:
//
//  * a discrete-observation HMM (initial distribution π, transition matrix
//    A, emission matrix B) with exact forward–backward inference in scaled
//    form and Baum–Welch (EM) parameter learning; and
//  * *constrained* Baum–Welch: after each E-step, the posterior over
//    hidden-state trajectories is projected onto a constraint set via
//    posterior regularization — the same Prop. 4 machinery Reward Repair
//    uses. Constraints bound the expected occupancy of designated hidden
//    states per trajectory (e.g. "the expected number of visits to the
//    `unsafe` hidden state is at most c"), and the projection multiplies
//    the per-position posterior of the constrained state by exp(−λ) until
//    the bound holds (a dual ascent on the single-constraint Lagrangian).
//
// The M-step then re-estimates (π, A, B) from the projected posteriors, so
// the learned dynamics respect the constraint in expectation — the TML
// guarantee transported to partially observed models.

#pragma once

#include <cstddef>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace tml {

/// Discrete-observation HMM. Rows of `transition` and `emission` are
/// distributions; `initial` is a distribution over hidden states.
struct Hmm {
  std::vector<double> initial;                   ///< π[state]
  std::vector<std::vector<double>> transition;   ///< A[from][to]
  std::vector<std::vector<double>> emission;     ///< B[state][symbol]

  std::size_t num_states() const { return initial.size(); }
  std::size_t num_symbols() const {
    return emission.empty() ? 0 : emission[0].size();
  }

  void validate(double tol = 1e-9) const;

  /// Samples a trajectory of hidden states and observations.
  struct Sample {
    std::vector<std::size_t> states;
    std::vector<std::size_t> observations;
  };
  Sample sample(std::size_t length, Rng& rng) const;
};

/// An observation sequence.
using ObservationSequence = std::vector<std::size_t>;

/// Posterior quantities of one sequence (scaled forward–backward).
struct HmmPosterior {
  /// gamma[t][i] = P(state_t = i | observations).
  std::vector<std::vector<double>> gamma;
  /// xi[t][i][j] = P(state_t = i, state_{t+1} = j | observations),
  /// t = 0..T−2.
  std::vector<std::vector<std::vector<double>>> xi;
  double log_likelihood = 0.0;
};

/// Exact forward–backward.
HmmPosterior forward_backward(const Hmm& hmm, const ObservationSequence& obs);

/// Log-likelihood of a sequence.
double log_likelihood(const Hmm& hmm, const ObservationSequence& obs);

/// Most probable hidden path (Viterbi).
std::vector<std::size_t> viterbi(const Hmm& hmm,
                                 const ObservationSequence& obs);

/// Occupancy constraint on the posterior: the expected number of visits to
/// `state` over a sequence must not exceed `max_expected_visits`.
struct OccupancyConstraint {
  std::size_t state = 0;
  double max_expected_visits = 0.0;
};

struct EmOptions {
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;       ///< log-likelihood improvement threshold
  double smoothing = 1e-6;       ///< M-step additive smoothing
  /// Dual-ascent controls for the constrained E-step projection.
  std::size_t projection_iterations = 60;
  double projection_step = 0.5;
};

struct EmResult {
  Hmm model;
  std::vector<double> log_likelihood_trace;  ///< per EM iteration
  std::size_t iterations = 0;
  bool converged = false;
  /// Expected visits to each constrained state under the final posteriors
  /// (averaged over sequences).
  std::vector<double> constrained_occupancy;
};

/// Plain Baum–Welch.
EmResult baum_welch(const Hmm& initial_model,
                    const std::vector<ObservationSequence>& data,
                    const EmOptions& options = {});

/// Constrained Baum–Welch: every E-step posterior is projected to satisfy
/// the occupancy constraints before the M-step re-estimates parameters.
EmResult constrained_baum_welch(
    const Hmm& initial_model, const std::vector<ObservationSequence>& data,
    const std::vector<OccupancyConstraint>& constraints,
    const EmOptions& options = {});

}  // namespace tml
