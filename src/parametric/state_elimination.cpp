#include "src/parametric/state_elimination.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>

#include "src/common/fault.hpp"
#include "src/common/stats.hpp"
#include "src/mdp/compiled.hpp"
#include "src/rational/subterm_pool.hpp"

namespace tml {

namespace {

EliminationOptions g_default_options{};

/// Folds a run's local EliminationStats into the caller-provided struct (if
/// any) and into the global registry. The local struct is always populated so
/// the registry metrics don't depend on whether the caller asked for stats.
void record_elimination(const EliminationStats& local, EliminationStats* out) {
  if (out != nullptr) {
    out->states_eliminated += local.states_eliminated;
    out->max_degree_seen =
        std::max(out->max_degree_seen, local.max_degree_seen);
    out->max_terms_seen = std::max(out->max_terms_seen, local.max_terms_seen);
    out->fill_in_edges += local.fill_in_edges;
    out->scc_blocks += local.scc_blocks;
    out->pool_hits += local.pool_hits;
    out->pool_misses += local.pool_misses;
    out->heuristic = local.heuristic;
  }
  static stats::Counter& c_runs = stats::counter("parametric.eliminations");
  static stats::Counter& c_states =
      stats::counter("parametric.states_eliminated");
  static stats::Counter& c_fill = stats::counter("parametric.fill_in_edges");
  static stats::Counter& c_hits = stats::counter("parametric.pool_hits");
  static stats::Counter& c_misses = stats::counter("parametric.pool_misses");
  static stats::Gauge& g_degree = stats::gauge("parametric.peak_degree");
  static stats::Gauge& g_terms = stats::gauge("parametric.peak_terms");
  static stats::Gauge& g_blocks = stats::gauge("parametric.scc_blocks");
  c_runs.bump();
  c_states.add(local.states_eliminated);
  c_fill.add(local.fill_in_edges);
  c_hits.add(local.pool_hits);
  c_misses.add(local.pool_misses);
  g_degree.set_max(static_cast<double>(local.max_degree_seen));
  g_terms.set_max(static_cast<double>(local.max_terms_seen));
  g_blocks.set_max(static_cast<double>(local.scc_blocks));
}

/// Working form of the chain during elimination: per-state sorted edge rows
/// of rational functions plus the per-state accumulated value term r(s).
/// Rows are parallel sorted vectors (binary-searched), not std::map — the
/// access pattern is scan-heavy with rare point inserts, and the vectors
/// keep the functions contiguous.
struct Workspace {
  struct Row {
    std::vector<StateId> tgt;          // sorted ascending
    std::vector<RationalFunction> fn;  // parallel to tgt
  };

  std::vector<Row> rows;
  std::vector<RationalFunction> value;  // r(s)
  std::vector<char> alive;
  std::vector<std::vector<StateId>> preds;  // sorted, deduplicated
  std::size_t fill_in = 0;  // new (u, t) pairs created by folding

  explicit Workspace(std::size_t n)
      : rows(n), value(n), alive(n, 0), preds(n) {}

  static std::size_t lower_index(const std::vector<StateId>& v, StateId t) {
    return static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), t) - v.begin());
  }

  RationalFunction* find(StateId u, StateId t) {
    Row& row = rows[u];
    const std::size_t i = lower_index(row.tgt, t);
    if (i < row.tgt.size() && row.tgt[i] == t) return &row.fn[i];
    return nullptr;
  }

  void add_edge(StateId u, StateId t, RationalFunction p) {
    Row& row = rows[u];
    const std::size_t i = lower_index(row.tgt, t);
    if (i < row.tgt.size() && row.tgt[i] == t) {
      row.fn[i] += p;
      return;
    }
    row.tgt.insert(row.tgt.begin() + static_cast<std::ptrdiff_t>(i), t);
    row.fn.insert(row.fn.begin() + static_cast<std::ptrdiff_t>(i),
                  std::move(p));
    std::vector<StateId>& ps = preds[t];
    const std::size_t j = lower_index(ps, u);
    if (j == ps.size() || ps[j] != u) {
      ps.insert(ps.begin() + static_cast<std::ptrdiff_t>(j), u);
    }
    ++fill_in;
  }

  void remove_edge(StateId u, StateId t) {
    Row& row = rows[u];
    const std::size_t i = lower_index(row.tgt, t);
    if (i < row.tgt.size() && row.tgt[i] == t) {
      row.tgt.erase(row.tgt.begin() + static_cast<std::ptrdiff_t>(i));
      row.fn.erase(row.fn.begin() + static_cast<std::ptrdiff_t>(i));
    }
    std::vector<StateId>& ps = preds[t];
    const std::size_t j = lower_index(ps, u);
    if (j < ps.size() && ps[j] == u) {
      ps.erase(ps.begin() + static_cast<std::ptrdiff_t>(j));
    }
  }

  bool has_edge(StateId u, StateId t) const {
    const Row& row = rows[u];
    return std::binary_search(row.tgt.begin(), row.tgt.end(), t);
  }

  std::size_t out_degree(StateId s) const {
    return rows[s].tgt.size() - (has_edge(s, s) ? 1 : 0);
  }

  std::size_t in_degree(StateId s) const {
    return preds[s].size() -
           (std::binary_search(preds[s].begin(), preds[s].end(), s) ? 1 : 0);
  }
};

/// Support-graph forward reachability from `from` over the parametric rows.
StateSet support_forward_reachable(const ParametricDtmc& chain, StateId from) {
  StateSet reached(chain.num_states(), false);
  std::deque<StateId> queue{from};
  reached[from] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const auto& [t, p] : chain.row(s)) {
      if (!reached[t]) {
        reached[t] = true;
        queue.push_back(t);
      }
    }
  }
  return reached;
}

/// Support-graph backward closure of `seeds`.
StateSet support_backward_reachable(const ParametricDtmc& chain,
                                    const StateSet& seeds) {
  std::vector<std::vector<StateId>> preds(chain.num_states());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    for (const auto& [t, p] : chain.row(s)) preds[t].push_back(s);
  }
  StateSet reached = seeds;
  std::deque<StateId> queue;
  for (StateId s = 0; s < seeds.size(); ++s) {
    if (seeds[s]) queue.push_back(s);
  }
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (StateId p : preds[s]) {
      if (!reached[p]) {
        reached[p] = true;
        queue.push_back(p);
      }
    }
  }
  return reached;
}

/// Complexity is tracked on the factored representation — degree and factor
/// term mass are both O(#factors); touching numerator()/denominator() here
/// would force facade expansion in the hot loop.
void track_complexity(EliminationStats* stats, const RationalFunction& f) {
  if (stats == nullptr) return;
  stats->max_degree_seen = std::max(stats->max_degree_seen, f.degree());
  stats->max_terms_seen = std::max(stats->max_terms_seen, f.factored_terms());
}

/// Total factor count over a state's row functions and value — the symbolic
/// weight term of the kPenalty heuristic.
std::uint64_t symbolic_mass(const Workspace& ws, StateId s) {
  std::uint64_t mass = ws.value[s].num_factors();
  for (const RationalFunction& fn : ws.rows[s].fn) mass += fn.num_factors();
  return mass;
}

/// Priority of eliminating `s` next (lower is better).
std::uint64_t penalty_of(const Workspace& ws, StateId s,
                         EliminationOrder order) {
  const std::uint64_t fill = static_cast<std::uint64_t>(ws.in_degree(s)) *
                             static_cast<std::uint64_t>(ws.out_degree(s));
  if (order == EliminationOrder::kFewestNewEdges) return fill;
  // kPenalty: fill weighted by symbolic row mass, with the mass alone as a
  // tie-break among zero-fill states.
  const std::uint64_t mass = symbolic_mass(ws, s);
  return fill * (1 + mass) + mass;
}

/// Eliminates one alive state: detaches the self-loop, rescales the row by
/// 1 / (1 − loop), folds the state into every predecessor and retires it.
void eliminate_state(Workspace& ws, StateId s, EliminationStats* stats) {
  Workspace::Row& row = ws.rows[s];

  RationalFunction loop;
  if (RationalFunction* self = ws.find(s, s)) {
    loop = *self;
    ws.remove_edge(s, s);
  }
  const RationalFunction denom = one_minus(loop);
  TML_REQUIRE(!denom.is_zero() && !fault::fire("parametric.pivot"),
              "state elimination: state " << s
                  << " is absorbing (1 - selfloop == 0); preprocessing "
                     "should have removed it");
  const RationalFunction inv = denom.inverse();
  for (RationalFunction& p : row.fn) {
    p *= inv;
    track_complexity(stats, p);
  }
  ws.value[s] *= inv;
  track_complexity(stats, ws.value[s]);

  // Fold s into each predecessor.
  const std::vector<StateId> preds = ws.preds[s];
  for (StateId u : preds) {
    if (u == s || !ws.alive[u]) continue;
    RationalFunction* weight = ws.find(u, s);
    if (weight == nullptr) continue;
    const RationalFunction w = *weight;
    ws.remove_edge(u, s);
    ws.value[u] += w * ws.value[s];
    track_complexity(stats, ws.value[u]);
    for (std::size_t i = 0; i < row.tgt.size(); ++i) {
      ws.add_edge(u, row.tgt[i], w * row.fn[i]);
    }
  }

  // Retire s.
  for (StateId t : row.tgt) {
    std::vector<StateId>& ps = ws.preds[t];
    const std::size_t j = Workspace::lower_index(ps, s);
    if (j < ps.size() && ps[j] == s) {
      ps.erase(ps.begin() + static_cast<std::ptrdiff_t>(j));
    }
  }
  row.tgt.clear();
  row.fn.clear();
  ws.preds[s].clear();
  ws.alive[s] = 0;
  if (stats != nullptr) ++stats->states_eliminated;
}

/// Eliminates every alive state in `candidates` in the order selected by
/// `options.order`. The dynamic orders run over a lazily revalidated
/// min-priority queue: entries are (penalty, state) pairs; a popped entry
/// whose stored penalty no longer matches the current one is re-pushed with
/// the fresh penalty instead of being acted on, and after each elimination
/// the states whose rows changed are re-pushed eagerly so the queue head
/// stays accurate.
void eliminate_candidates(Workspace& ws, const std::vector<StateId>& candidates,
                          const EliminationOptions& options,
                          EliminationStats* stats, BudgetTracker& tracker) {
  if (options.order == EliminationOrder::kInOrder) {
    for (StateId s : candidates) {
      if (!ws.alive[s]) continue;
      if (!tracker.tick()) tracker.require_ok("state elimination");
      eliminate_state(ws, s, stats);
    }
    return;
  }

  using Entry = std::pair<std::uint64_t, StateId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  std::vector<char> in_set(ws.rows.size(), 0);
  for (StateId s : candidates) {
    if (!ws.alive[s]) continue;
    in_set[s] = 1;
    queue.emplace(penalty_of(ws, s, options.order), s);
  }

  std::vector<StateId> affected;
  while (!queue.empty()) {
    const auto [pen, s] = queue.top();
    queue.pop();
    if (!ws.alive[s]) continue;
    const std::uint64_t current = penalty_of(ws, s, options.order);
    if (current != pen) {
      queue.emplace(current, s);  // stale entry; revalidate lazily
      continue;
    }
    if (!tracker.tick()) tracker.require_ok("state elimination");

    affected.clear();
    for (StateId u : ws.preds[s]) {
      if (u != s && ws.alive[u] && in_set[u]) affected.push_back(u);
    }
    for (StateId t : ws.rows[s].tgt) {
      if (t != s && ws.alive[t] && in_set[t]) affected.push_back(t);
    }

    eliminate_state(ws, s, stats);

    for (StateId u : affected) {
      if (ws.alive[u]) queue.emplace(penalty_of(ws, u, options.order), u);
    }
  }
}

/// Condenses the elimination support graph into SCC blocks in dependency
/// order and returns, per block, the alive non-initial states it contains
/// (empty blocks dropped). Reuses CompiledModel::scc() by lowering the
/// workspace support into a uniform-probability DTMC: the SCC structure
/// only depends on the edge support, so any positive weights do.
std::vector<std::vector<StateId>> scc_candidate_blocks(const Workspace& ws,
                                                       StateId init) {
  const std::size_t n = ws.rows.size();
  Dtmc support(n);
  for (StateId s = 0; s < n; ++s) {
    const std::vector<StateId>& tgt = ws.rows[s].tgt;
    if (!ws.alive[s] || tgt.empty()) {
      support.set_transitions(s, {{s, 1.0}});
      continue;
    }
    const bool has_self = ws.has_edge(s, s);
    const std::size_t m = tgt.size() + (has_self ? 0 : 1);
    const double p = 1.0 / static_cast<double>(m);
    std::vector<Transition> out;
    out.reserve(m);
    for (StateId t : tgt) out.push_back({t, p});
    // Dead targets never occur (workspace construction drops them), so this
    // row is a genuine distribution over alive states up to rounding.
    if (!has_self) {
      out.push_back({s, 1.0 - p * static_cast<double>(tgt.size())});
    }
    support.set_transitions(s, std::move(out));
  }
  const CompiledModel compiled = compile(support);
  const SccDecomposition& scc = compiled.scc();

  std::vector<std::vector<StateId>> blocks;
  for (std::uint32_t b = 0; b < scc.num_blocks(); ++b) {
    std::vector<StateId> candidates;
    for (StateId s : scc.block(b)) {
      if (ws.alive[s] && s != init) candidates.push_back(s);
    }
    if (!candidates.empty()) {
      std::sort(candidates.begin(), candidates.end());
      blocks.push_back(std::move(candidates));
    }
  }
  return blocks;
}

/// Eliminates every alive state except `init` under `options`, then closes
/// the initial state's own loop: x_init = r'(init) / (1 − P'(init, init)).
RationalFunction eliminate_all(Workspace& ws, StateId init,
                               const EliminationOptions& options,
                               EliminationStats* stats,
                               BudgetTracker& tracker) {
  if (options.scc_local) {
    // Blocks come in dependency order (block 0 most downstream), so by the
    // time a block runs every state it can reach outside the block — except
    // the never-eliminated init — is already gone, and all fill-in stays
    // block-local.
    const std::vector<std::vector<StateId>> blocks =
        scc_candidate_blocks(ws, init);
    if (stats != nullptr) stats->scc_blocks = blocks.size();
    for (const std::vector<StateId>& block : blocks) {
      eliminate_candidates(ws, block, options, stats, tracker);
    }
  } else {
    std::vector<StateId> candidates;
    for (StateId s = 0; s < ws.rows.size(); ++s) {
      if (ws.alive[s] && s != init) candidates.push_back(s);
    }
    eliminate_candidates(ws, candidates, options, stats, tracker);
  }
  if (stats != nullptr) stats->fill_in_edges = ws.fill_in;

  // Close the initial state's own loop.
  RationalFunction loop;
  if (RationalFunction* self = ws.find(init, init)) loop = *self;
  const RationalFunction denom = one_minus(loop);
  TML_REQUIRE(!denom.is_zero(),
              "state elimination: initial state is absorbing with no value");
  return ws.value[init] * denom.inverse();
}

/// Shared tail of both entry points: stats bookkeeping (heuristic name,
/// subterm-pool hit/miss deltas), budget tracking, elimination, registry.
RationalFunction run_elimination(Workspace& ws, StateId init,
                                 const EliminationOptions& options,
                                 EliminationStats* stats) {
  EliminationStats local;
  local.heuristic = to_string(options.order);
  EliminationStats* track =
      (stats != nullptr || stats::enabled()) ? &local : nullptr;
  SubtermPool& pool = SubtermPool::instance();
  const std::uint64_t hits_before = pool.hits();
  const std::uint64_t misses_before = pool.misses();
  BudgetTracker tracker(options.budget != nullptr ? *options.budget
                                                  : default_budget());
  RationalFunction result = eliminate_all(ws, init, options, track, tracker);
  if (track != nullptr) {
    local.pool_hits = pool.hits() - hits_before;
    local.pool_misses = pool.misses() - misses_before;
    record_elimination(local, stats);
  }
  return result;
}

}  // namespace

const char* to_string(EliminationOrder order) {
  switch (order) {
    case EliminationOrder::kInOrder: return "in-order";
    case EliminationOrder::kFewestNewEdges: return "fewest-new-edges";
    case EliminationOrder::kPenalty: return "penalty";
  }
  return "unknown";
}

EliminationOptions default_elimination_options() { return g_default_options; }

void set_default_elimination_options(EliminationOptions options) {
  options.budget = nullptr;  // defaults never carry a budget pointer
  g_default_options = options;
}

RationalFunction reachability_probability(const ParametricDtmc& chain,
                                          const StateSet& targets,
                                          const EliminationOptions& options,
                                          EliminationStats* stats) {
  static stats::Timer& t_elim = stats::timer("parametric.elimination.time");
  const stats::ScopedTimer span(t_elim);
  TML_REQUIRE(targets.size() == chain.num_states(),
              "reachability_probability: target set size mismatch");
  const StateId init = chain.initial_state();
  if (targets[init]) return RationalFunction(1.0);

  const StateSet forward = support_forward_reachable(chain, init);
  const StateSet can_reach = support_backward_reachable(chain, targets);
  if (!can_reach[init]) return RationalFunction();  // probability 0

  // Relevant interior states: reachable from init, can reach targets, and
  // are not targets themselves. Transitions into targets become value mass;
  // transitions into irrelevant states (prob-0 sinks) are dropped.
  Workspace ws(chain.num_states());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!forward[s] || !can_reach[s] || targets[s]) continue;
    ws.alive[s] = 1;
  }
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!ws.alive[s]) continue;
    for (const auto& [t, p] : chain.row(s)) {
      if (targets[t]) {
        ws.value[s] += *p;
      } else if (ws.alive[t]) {
        ws.add_edge(s, t, *p);
      }
      // else: transition into a prob-0 region; contributes nothing.
    }
  }
  ws.fill_in = 0;  // construction edges are not fill-in
  return run_elimination(ws, init, options, stats);
}

RationalFunction reachability_probability(const ParametricDtmc& chain,
                                          const StateSet& targets,
                                          EliminationStats* stats,
                                          const Budget* budget) {
  EliminationOptions options = default_elimination_options();
  options.budget = budget;
  return reachability_probability(chain, targets, options, stats);
}

RationalFunction expected_total_reward(const ParametricDtmc& chain,
                                       const StateSet& targets,
                                       const EliminationOptions& options,
                                       EliminationStats* stats) {
  static stats::Timer& t_elim = stats::timer("parametric.elimination.time");
  const stats::ScopedTimer span(t_elim);
  TML_REQUIRE(targets.size() == chain.num_states(),
              "expected_total_reward: target set size mismatch");
  const StateId init = chain.initial_state();
  if (targets[init]) return RationalFunction();

  const StateSet forward = support_forward_reachable(chain, init);
  const StateSet can_reach = support_backward_reachable(chain, targets);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (forward[s] && !can_reach[s]) {
      throw ModelError(
          "expected_total_reward: state " + std::to_string(s) +
          " is reachable from the initial state but cannot reach the target; "
          "the expected reward is infinite");
    }
  }

  Workspace ws(chain.num_states());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!forward[s] || targets[s]) continue;
    ws.alive[s] = 1;
    ws.value[s] = chain.state_reward(s);
  }
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!ws.alive[s]) continue;
    for (const auto& [t, p] : chain.row(s)) {
      if (targets[t]) continue;  // x(target) = 0
      TML_ASSERT(ws.alive[t],
                 "expected_total_reward: edge into unprocessed state");
      ws.add_edge(s, t, *p);
    }
  }
  ws.fill_in = 0;  // construction edges are not fill-in
  return run_elimination(ws, init, options, stats);
}

RationalFunction expected_total_reward(const ParametricDtmc& chain,
                                       const StateSet& targets,
                                       EliminationStats* stats,
                                       const Budget* budget) {
  EliminationOptions options = default_elimination_options();
  options.budget = budget;
  return expected_total_reward(chain, targets, options, stats);
}

}  // namespace tml
