#include "src/parametric/state_elimination.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "src/common/fault.hpp"
#include "src/common/stats.hpp"

namespace tml {

namespace {

/// Folds a run's local EliminationStats into the caller-provided struct (if
/// any) and into the global registry. The local struct is always populated so
/// the registry metrics don't depend on whether the caller asked for stats.
void record_elimination(const EliminationStats& local, EliminationStats* out) {
  if (out != nullptr) {
    out->states_eliminated += local.states_eliminated;
    out->max_degree_seen =
        std::max(out->max_degree_seen, local.max_degree_seen);
    out->max_terms_seen = std::max(out->max_terms_seen, local.max_terms_seen);
  }
  static stats::Counter& c_runs = stats::counter("parametric.eliminations");
  static stats::Counter& c_states =
      stats::counter("parametric.states_eliminated");
  static stats::Gauge& g_degree = stats::gauge("parametric.peak_degree");
  static stats::Gauge& g_terms = stats::gauge("parametric.peak_terms");
  c_runs.bump();
  c_states.add(local.states_eliminated);
  g_degree.set_max(static_cast<double>(local.max_degree_seen));
  g_terms.set_max(static_cast<double>(local.max_terms_seen));
}

/// Working form of the chain during elimination: sparse rows of rational
/// functions plus the per-state accumulated value term r(s).
struct Workspace {
  // rows[s] maps successor -> probability function. Only "alive" states
  // participate.
  std::vector<std::map<StateId, RationalFunction>> rows;
  std::vector<RationalFunction> value;  // r(s)
  std::vector<bool> alive;
  std::vector<std::set<StateId>> preds;

  explicit Workspace(std::size_t n)
      : rows(n), value(n), alive(n, false), preds(n) {}

  void add_edge(StateId u, StateId t, const RationalFunction& p) {
    auto [it, inserted] = rows[u].emplace(t, p);
    if (!inserted) it->second += p;
    preds[t].insert(u);
  }

  void remove_edge(StateId u, StateId t) {
    rows[u].erase(t);
    preds[t].erase(u);
  }
};

/// Support-graph forward reachability from `from` over the parametric rows.
StateSet support_forward_reachable(const ParametricDtmc& chain, StateId from) {
  StateSet reached(chain.num_states(), false);
  std::deque<StateId> queue{from};
  reached[from] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const auto& [t, p] : chain.row(s)) {
      if (!reached[t]) {
        reached[t] = true;
        queue.push_back(t);
      }
    }
  }
  return reached;
}

/// Support-graph backward closure of `seeds`.
StateSet support_backward_reachable(const ParametricDtmc& chain,
                                    const StateSet& seeds) {
  std::vector<std::vector<StateId>> preds(chain.num_states());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    for (const auto& [t, p] : chain.row(s)) preds[t].push_back(s);
  }
  StateSet reached = seeds;
  std::deque<StateId> queue;
  for (StateId s = 0; s < seeds.size(); ++s) {
    if (seeds[s]) queue.push_back(s);
  }
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (StateId p : preds[s]) {
      if (!reached[p]) {
        reached[p] = true;
        queue.push_back(p);
      }
    }
  }
  return reached;
}

void track_complexity(EliminationStats* stats, const RationalFunction& f) {
  if (stats == nullptr) return;
  stats->max_degree_seen = std::max(stats->max_degree_seen, f.degree());
  stats->max_terms_seen =
      std::max(stats->max_terms_seen, f.numerator().num_terms() +
                                          f.denominator().num_terms());
}

/// Eliminates every alive state except `init`; returns the closed form
/// x_init = r'(init) / (1 − P'(init, init)).
RationalFunction eliminate_all(Workspace& ws, StateId init,
                               EliminationStats* stats, BudgetTracker& tracker) {
  const std::size_t n = ws.rows.size();

  // Min-degree style ordering: repeatedly pick the alive state (≠ init)
  // with the smallest fill-in estimate |preds|·|succs|.
  while (true) {
    if (!tracker.tick()) tracker.require_ok("state elimination");
    StateId victim = init;
    std::size_t best_cost = SIZE_MAX;
    for (StateId s = 0; s < n; ++s) {
      if (!ws.alive[s] || s == init) continue;
      // Self-loops don't count toward fill-in.
      const std::size_t outs =
          ws.rows[s].size() - (ws.rows[s].count(s) ? 1 : 0);
      const std::size_t ins = ws.preds[s].size() - (ws.preds[s].count(s) ? 1 : 0);
      const std::size_t cost = ins * outs;
      if (cost < best_cost) {
        best_cost = cost;
        victim = s;
      }
    }
    if (victim == init) break;  // nothing left to eliminate
    const StateId s = victim;

    // Rescale row s by 1 / (1 − loop).
    RationalFunction loop;
    if (auto it = ws.rows[s].find(s); it != ws.rows[s].end()) {
      loop = it->second;
      ws.remove_edge(s, s);
    }
    const RationalFunction denom = one_minus(loop);
    TML_REQUIRE(!denom.is_zero() && !fault::fire("parametric.pivot"),
                "state elimination: state " << s
                    << " is absorbing (1 - selfloop == 0); preprocessing "
                       "should have removed it");
    const RationalFunction inv = denom.inverse();
    for (auto& [t, p] : ws.rows[s]) {
      p *= inv;
      track_complexity(stats, p);
    }
    ws.value[s] *= inv;
    track_complexity(stats, ws.value[s]);

    // Fold s into each predecessor.
    const std::set<StateId> preds = ws.preds[s];
    for (StateId u : preds) {
      if (u == s || !ws.alive[u]) continue;
      auto uit = ws.rows[u].find(s);
      if (uit == ws.rows[u].end()) continue;
      const RationalFunction w = uit->second;
      ws.remove_edge(u, s);
      ws.value[u] += w * ws.value[s];
      track_complexity(stats, ws.value[u]);
      for (const auto& [t, p] : ws.rows[s]) {
        ws.add_edge(u, t, w * p);
      }
    }

    // Retire s.
    for (const auto& [t, p] : ws.rows[s]) ws.preds[t].erase(s);
    ws.rows[s].clear();
    ws.preds[s].clear();
    ws.alive[s] = false;
    if (stats != nullptr) ++stats->states_eliminated;
  }

  // Close the initial state's own loop.
  RationalFunction loop;
  if (auto it = ws.rows[init].find(init); it != ws.rows[init].end()) {
    loop = it->second;
  }
  const RationalFunction denom = one_minus(loop);
  TML_REQUIRE(!denom.is_zero(),
              "state elimination: initial state is absorbing with no value");
  return ws.value[init] * denom.inverse();
}

}  // namespace

RationalFunction reachability_probability(const ParametricDtmc& chain,
                                          const StateSet& targets,
                                          EliminationStats* stats,
                                          const Budget* budget) {
  static stats::Timer& t_elim = stats::timer("parametric.elimination.time");
  const stats::ScopedTimer span(t_elim);
  TML_REQUIRE(targets.size() == chain.num_states(),
              "reachability_probability: target set size mismatch");
  const StateId init = chain.initial_state();
  if (targets[init]) return RationalFunction(1.0);

  const StateSet forward = support_forward_reachable(chain, init);
  const StateSet can_reach = support_backward_reachable(chain, targets);
  if (!can_reach[init]) return RationalFunction();  // probability 0

  // Relevant interior states: reachable from init, can reach targets, and
  // are not targets themselves. Transitions into targets become value mass;
  // transitions into irrelevant states (prob-0 sinks) are dropped.
  Workspace ws(chain.num_states());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!forward[s] || !can_reach[s] || targets[s]) continue;
    ws.alive[s] = true;
  }
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!ws.alive[s]) continue;
    for (const auto& [t, p] : chain.row(s)) {
      if (targets[t]) {
        ws.value[s] += *p;
      } else if (ws.alive[t]) {
        ws.add_edge(s, t, *p);
      }
      // else: transition into a prob-0 region; contributes nothing.
    }
  }
  EliminationStats local;
  EliminationStats* track =
      (stats != nullptr || stats::enabled()) ? &local : nullptr;
  BudgetTracker tracker(budget != nullptr ? *budget : default_budget());
  RationalFunction result = eliminate_all(ws, init, track, tracker);
  if (track != nullptr) record_elimination(local, stats);
  return result;
}

RationalFunction expected_total_reward(const ParametricDtmc& chain,
                                       const StateSet& targets,
                                       EliminationStats* stats,
                                       const Budget* budget) {
  static stats::Timer& t_elim = stats::timer("parametric.elimination.time");
  const stats::ScopedTimer span(t_elim);
  TML_REQUIRE(targets.size() == chain.num_states(),
              "expected_total_reward: target set size mismatch");
  const StateId init = chain.initial_state();
  if (targets[init]) return RationalFunction();

  const StateSet forward = support_forward_reachable(chain, init);
  const StateSet can_reach = support_backward_reachable(chain, targets);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (forward[s] && !can_reach[s]) {
      throw ModelError(
          "expected_total_reward: state " + std::to_string(s) +
          " is reachable from the initial state but cannot reach the target; "
          "the expected reward is infinite");
    }
  }

  Workspace ws(chain.num_states());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!forward[s] || targets[s]) continue;
    ws.alive[s] = true;
    ws.value[s] = chain.state_reward(s);
  }
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!ws.alive[s]) continue;
    for (const auto& [t, p] : chain.row(s)) {
      if (targets[t]) continue;  // x(target) = 0
      TML_ASSERT(ws.alive[t],
                 "expected_total_reward: edge into unprocessed state");
      ws.add_edge(s, t, *p);
    }
  }
  EliminationStats local;
  EliminationStats* track =
      (stats != nullptr || stats::enabled()) ? &local : nullptr;
  BudgetTracker tracker(budget != nullptr ? *budget : default_budget());
  RationalFunction result = eliminate_all(ws, init, track, tracker);
  if (track != nullptr) record_elimination(local, stats);
  return result;
}

}  // namespace tml
