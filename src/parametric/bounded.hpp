// Symbolic step-bounded analyses for parametric DTMCs.
//
// §III of the paper notes that "a real controller would use bounded-time
// variants of temporal properties". These routines extend the parametric
// engine to that fragment: k-step reachability probability and k-step
// cumulative reward are computed by symbolic value iteration over rational
// functions, yielding a polynomial (degree grows with k) instead of the
// rational functions of the unbounded case.
//
// Cost note: each iteration multiplies transition functions into the value
// vector, so the symbolic degree grows linearly in k — usable for the
// short horizons bounded controller properties have, and guarded by the
// same randomized cross-validation as the unbounded engine.
//
// All entry points poll the budget (nullptr = default_budget()) once per
// state row per sweep and throw the typed BudgetExhausted error on
// exhaustion — a half-swept symbolic value vector is not a usable partial
// answer. Runs are metered under the parametric.bounded.* stats entries.

#pragma once

#include "src/common/budget.hpp"
#include "src/mdp/model.hpp"
#include "src/parametric/parametric_dtmc.hpp"

namespace tml {

/// P(F<=k targets) from the initial state, as a function of the
/// parameters. Targets are absorbing for the purpose of the count (their
/// value is pinned to 1 from step 0).
RationalFunction bounded_reachability_probability(const ParametricDtmc& chain,
                                                  const StateSet& targets,
                                                  std::size_t bound,
                                                  const Budget* budget = nullptr);

/// P(stay U<=k goal) from the initial state: constrained bounded until
/// (escape states contribute 0).
RationalFunction bounded_until_probability(const ParametricDtmc& chain,
                                           const StateSet& stay,
                                           const StateSet& goal,
                                           std::size_t bound,
                                           const Budget* budget = nullptr);

/// Expected reward accumulated over the first `horizon` steps (C<=k).
RationalFunction cumulative_reward(const ParametricDtmc& chain,
                                   std::size_t horizon,
                                   const Budget* budget = nullptr);

}  // namespace tml
