// Parametric model checking by state elimination.
//
// This is the algorithm PRISM's parametric engine (and PARAM / Storm's
// `stateelimination`) uses, due to Daws (2004) and Hahn, Hermanns & Zhang
// (2010): repeatedly eliminate a non-initial, non-target state s by
// redirecting every u → s → t path around it,
//
//     P'(u,t) = P(u,t) + P(u,s) · P(s,t) / (1 − P(s,s)),
//
// performing all arithmetic over rational functions. After all interior
// states are gone, the reachability probability (resp. expected total
// reward) from the initial state is a single closed-form rational function
// of the parameters.
//
// For expected reward the same elimination acts on the value equations
// x_s = r(s) + Σ_t P(s,t)·x_t with targets pinned to 0:
//
//     r'(u) = r(u) + P(u,s) · r(s) / (1 − P(s,s)).
//
// The *order* in which interior states are eliminated does not change the
// answer but dominates the cost: a bad order fills the working graph with
// dense rows of large rational functions. EliminationOptions selects the
// ordering heuristic (see EliminationOrder) and whether elimination runs
// SCC-locally — the support graph is condensed into topologically ordered
// blocks (CompiledModel::scc()) and each block is fully eliminated before
// any block upstream of it, so fill-in edges stay inside the current block
// (plus the never-eliminated initial state) instead of smearing across the
// whole chain.
//
// Preconditions (checked structurally on the transition support — valid in
// the repair feasible region where present transitions keep positive
// probability):
//  * reachability: none (states that cannot reach the target contribute 0);
//  * expected reward: every state reachable from the initial state must
//    reach the target with probability 1; otherwise the expectation is
//    infinite and we throw ModelError, matching the checker's +inf verdict.

#pragma once

#include "src/common/budget.hpp"
#include "src/mdp/model.hpp"
#include "src/parametric/parametric_dtmc.hpp"
#include "src/rational/rational_function.hpp"

namespace tml {

/// Pluggable elimination-ordering heuristics.
enum class EliminationOrder : std::uint8_t {
  /// Eliminate in ascending state id — the naive reference order. Kept for
  /// back-compat and as the baseline the differential tests and perf benches
  /// compare against.
  kInOrder,
  /// Dynamic minimum fill-in estimate: always eliminate the state with the
  /// fewest potential new edges |preds|·|succs| (self-loops excluded),
  /// maintained over a lazily revalidated priority queue.
  kFewestNewEdges,
  /// Like kFewestNewEdges but the fill estimate is weighted by the symbolic
  /// mass of the state's row (factor counts of its rational functions), so
  /// structurally cheap pivots with huge functions are deferred. This is the
  /// default and mirrors Storm's dynamic-penalty state elimination.
  kPenalty,
};

/// Stable lowercase name of an ordering heuristic ("in-order", ...).
const char* to_string(EliminationOrder order);

/// Knobs for one elimination run. Default-constructed options give the
/// library default: penalty-ordered, SCC-local elimination.
struct EliminationOptions {
  EliminationOrder order = EliminationOrder::kPenalty;
  /// Condense the support graph and eliminate block-by-block in dependency
  /// order (most-downstream block first) instead of over the whole chain.
  bool scc_local = true;
  /// Budget polled once per eliminated state; nullptr = default_budget().
  /// On exhaustion the run throws the typed BudgetExhausted error — a
  /// half-finished elimination is not a usable partial answer.
  const Budget* budget = nullptr;
};

/// Process-wide default used by the entry points that don't take explicit
/// options (and by default-constructed repair configs). The stored default
/// never carries a budget pointer. Not thread-safe, like the other
/// process-wide defaults (set_default_budget, set_default_solve_method).
EliminationOptions default_elimination_options();
void set_default_elimination_options(EliminationOptions options);

/// Statistics from an elimination run (exposed for the perf benches and the
/// stats registry; see parametric.* entries in src/common/stats.cpp).
struct EliminationStats {
  std::size_t states_eliminated = 0;
  /// Peak total degree over intermediate factored functions.
  std::uint32_t max_degree_seen = 0;
  /// Peak factored term mass (RationalFunction::factored_terms) — measured
  /// on the factored representation, never by expanding the facade.
  std::size_t max_terms_seen = 0;
  /// New (u, t) edges created by folding eliminated states into their
  /// predecessors — the fill-in the ordering heuristics try to minimize.
  std::size_t fill_in_edges = 0;
  /// Number of SCC blocks that contained at least one eliminable state
  /// (0 when scc_local was off).
  std::size_t scc_blocks = 0;
  /// SubtermPool hit/miss deltas over the run — how much of the symbolic
  /// arithmetic was shared-subterm reuse vs. fresh interning.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  /// Name of the ordering heuristic that ran (to_string(options.order)).
  const char* heuristic = "";
};

/// Probability of eventually reaching `targets` from the initial state, as
/// a rational function of the chain's parameters.
RationalFunction reachability_probability(const ParametricDtmc& chain,
                                          const StateSet& targets,
                                          const EliminationOptions& options,
                                          EliminationStats* stats = nullptr);

/// Back-compat overload: runs with default_elimination_options(), with the
/// budget (nullptr = default_budget()) folded into the options.
RationalFunction reachability_probability(const ParametricDtmc& chain,
                                          const StateSet& targets,
                                          EliminationStats* stats = nullptr,
                                          const Budget* budget = nullptr);

/// Expected total reward accumulated before reaching `targets` from the
/// initial state (targets pinned to 0), as a rational function. Throws
/// ModelError if some reachable state cannot reach the target in the
/// support graph (the expectation would be infinite).
RationalFunction expected_total_reward(const ParametricDtmc& chain,
                                       const StateSet& targets,
                                       const EliminationOptions& options,
                                       EliminationStats* stats = nullptr);

/// Back-compat overload: runs with default_elimination_options(), with the
/// budget (nullptr = default_budget()) folded into the options.
RationalFunction expected_total_reward(const ParametricDtmc& chain,
                                       const StateSet& targets,
                                       EliminationStats* stats = nullptr,
                                       const Budget* budget = nullptr);

}  // namespace tml
