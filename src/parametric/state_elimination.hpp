// Parametric model checking by state elimination.
//
// This is the algorithm PRISM's parametric engine (and PARAM / Storm's
// `stateelimination`) uses, due to Daws (2004) and Hahn, Hermanns & Zhang
// (2010): repeatedly eliminate a non-initial, non-target state s by
// redirecting every u → s → t path around it,
//
//     P'(u,t) = P(u,t) + P(u,s) · P(s,t) / (1 − P(s,s)),
//
// performing all arithmetic over rational functions. After all interior
// states are gone, the reachability probability (resp. expected total
// reward) from the initial state is a single closed-form rational function
// of the parameters.
//
// For expected reward the same elimination acts on the value equations
// x_s = r(s) + Σ_t P(s,t)·x_t with targets pinned to 0:
//
//     r'(u) = r(u) + P(u,s) · r(s) / (1 − P(s,s)).
//
// Preconditions (checked structurally on the transition support — valid in
// the repair feasible region where present transitions keep positive
// probability):
//  * reachability: none (states that cannot reach the target contribute 0);
//  * expected reward: every state reachable from the initial state must
//    reach the target with probability 1; otherwise the expectation is
//    infinite and we throw ModelError, matching the checker's +inf verdict.

#pragma once

#include "src/common/budget.hpp"
#include "src/mdp/model.hpp"
#include "src/parametric/parametric_dtmc.hpp"
#include "src/rational/rational_function.hpp"

namespace tml {

/// Statistics from an elimination run (exposed for the perf benches).
struct EliminationStats {
  std::size_t states_eliminated = 0;
  std::uint32_t max_degree_seen = 0;
  std::size_t max_terms_seen = 0;
};

/// Probability of eventually reaching `targets` from the initial state, as
/// a rational function of the chain's parameters.
///
/// Both entry points poll the budget (nullptr = default_budget()) once per
/// eliminated state. The intermediate rational functions of a half-finished
/// elimination are not a usable partial answer, so on exhaustion they throw
/// the typed BudgetExhausted error rather than degrade.
RationalFunction reachability_probability(const ParametricDtmc& chain,
                                          const StateSet& targets,
                                          EliminationStats* stats = nullptr,
                                          const Budget* budget = nullptr);

/// Expected total reward accumulated before reaching `targets` from the
/// initial state (targets pinned to 0), as a rational function. Throws
/// ModelError if some reachable state cannot reach the target in the
/// support graph (the expectation would be infinite).
RationalFunction expected_total_reward(const ParametricDtmc& chain,
                                       const StateSet& targets,
                                       EliminationStats* stats = nullptr,
                                       const Budget* budget = nullptr);

}  // namespace tml
