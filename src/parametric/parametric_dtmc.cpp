#include "src/parametric/parametric_dtmc.hpp"

#include <algorithm>
#include <cmath>

namespace tml {

ParametricDtmc::ParametricDtmc(std::size_t num_states, VariablePool pool)
    : pool_(std::move(pool)),
      transitions_(num_states),
      rewards_(num_states),
      names_(num_states),
      labels_(num_states) {
  TML_REQUIRE(num_states > 0, "ParametricDtmc: need at least one state");
}

void ParametricDtmc::set_initial_state(StateId s) {
  TML_REQUIRE(s < num_states(), "ParametricDtmc: initial state out of range");
  initial_state_ = s;
}

void ParametricDtmc::set_transition(StateId from, StateId to,
                                    RationalFunction probability) {
  TML_REQUIRE(from < num_states() && to < num_states(),
              "ParametricDtmc::set_transition: state out of range");
  auto& row = transitions_[from];
  auto it = std::find_if(row.begin(), row.end(),
                         [to](const Entry& e) { return e.target == to; });
  if (probability.is_zero()) {
    if (it != row.end()) row.erase(it);
    return;
  }
  if (it != row.end()) {
    it->probability = std::move(probability);
  } else {
    row.push_back(Entry{to, std::move(probability)});
  }
}

void ParametricDtmc::add_transition(StateId from, StateId to,
                                    RationalFunction probability) {
  TML_REQUIRE(from < num_states() && to < num_states(),
              "ParametricDtmc::add_transition: state out of range");
  auto& row = transitions_[from];
  auto it = std::find_if(row.begin(), row.end(),
                         [to](const Entry& e) { return e.target == to; });
  if (it != row.end()) {
    it->probability += probability;
    if (it->probability.is_zero()) row.erase(it);
  } else if (!probability.is_zero()) {
    row.push_back(Entry{to, std::move(probability)});
  }
}

const RationalFunction& ParametricDtmc::transition(StateId from,
                                                   StateId to) const {
  TML_REQUIRE(from < num_states() && to < num_states(),
              "ParametricDtmc::transition: state out of range");
  for (const Entry& e : transitions_[from]) {
    if (e.target == to) return e.probability;
  }
  return zero_;
}

std::vector<std::pair<StateId, const RationalFunction*>> ParametricDtmc::row(
    StateId from) const {
  TML_REQUIRE(from < num_states(), "ParametricDtmc::row: state out of range");
  std::vector<std::pair<StateId, const RationalFunction*>> out;
  out.reserve(transitions_[from].size());
  for (const Entry& e : transitions_[from]) {
    out.emplace_back(e.target, &e.probability);
  }
  return out;
}

void ParametricDtmc::set_state_reward(StateId s, RationalFunction reward) {
  TML_REQUIRE(s < num_states(), "ParametricDtmc: state out of range");
  rewards_[s] = std::move(reward);
}

const RationalFunction& ParametricDtmc::state_reward(StateId s) const {
  TML_REQUIRE(s < num_states(), "ParametricDtmc: state out of range");
  return rewards_[s];
}

void ParametricDtmc::set_state_name(StateId s, std::string name) {
  TML_REQUIRE(s < num_states(), "ParametricDtmc: state out of range");
  names_[s] = std::move(name);
}

const std::string& ParametricDtmc::state_name(StateId s) const {
  TML_REQUIRE(s < num_states(), "ParametricDtmc: state out of range");
  return names_[s];
}

void ParametricDtmc::add_label(StateId s, const std::string& label) {
  TML_REQUIRE(s < num_states(), "ParametricDtmc: state out of range");
  if (std::find(labels_[s].begin(), labels_[s].end(), label) ==
      labels_[s].end()) {
    labels_[s].push_back(label);
  }
}

const std::vector<std::string>& ParametricDtmc::labels_of(StateId s) const {
  TML_REQUIRE(s < num_states(), "ParametricDtmc: state out of range");
  return labels_[s];
}

Dtmc ParametricDtmc::instantiate(std::span<const double> values) const {
  Dtmc chain(num_states());
  chain.set_initial_state(initial_state_);
  for (StateId s = 0; s < num_states(); ++s) {
    std::vector<Transition> row;
    row.reserve(transitions_[s].size());
    for (const Entry& e : transitions_[s]) {
      row.push_back(Transition{e.target, e.probability.evaluate(values)});
    }
    std::sort(row.begin(), row.end(),
              [](const Transition& a, const Transition& b) {
                return a.target < b.target;
              });
    chain.set_transitions(s, std::move(row));
    chain.set_state_reward(s, rewards_[s].is_zero()
                                  ? 0.0
                                  : rewards_[s].evaluate(values));
    chain.set_state_name(s, names_[s]);
    for (const std::string& label : labels_[s]) chain.add_label(s, label);
  }
  chain.validate(1e-6);
  return chain;
}

void ParametricDtmc::validate_symbolic() const {
  for (StateId s = 0; s < num_states(); ++s) {
    if (transitions_[s].empty()) {
      throw ModelError("ParametricDtmc: state " + std::to_string(s) +
                       " has no transitions");
    }
    RationalFunction sum;
    for (const Entry& e : transitions_[s]) sum += e.probability;
    if (!sum.is_constant() ||
        std::abs(sum.constant_value() - 1.0) > 1e-9) {
      throw ModelError("ParametricDtmc: row " + std::to_string(s) +
                       " does not sum to 1 symbolically: " +
                       sum.to_string(pool_.namer()));
    }
  }
}

ParametricDtmc ParametricDtmc::from_dtmc(const Dtmc& chain,
                                         VariablePool pool) {
  ParametricDtmc out(chain.num_states(), std::move(pool));
  out.set_initial_state(chain.initial_state());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    for (const Transition& t : chain.transitions(s)) {
      out.add_transition(s, t.target, RationalFunction(t.probability));
    }
    if (chain.state_reward(s) != 0.0) {
      out.set_state_reward(s, RationalFunction(chain.state_reward(s)));
    }
    out.set_state_name(s, chain.state_name(s));
    for (const std::string& label : chain.labels_of(s)) out.add_label(s, label);
  }
  return out;
}

}  // namespace tml
