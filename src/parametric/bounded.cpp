#include "src/parametric/bounded.hpp"

namespace tml {

RationalFunction bounded_until_probability(const ParametricDtmc& chain,
                                           const StateSet& stay,
                                           const StateSet& goal,
                                           std::size_t bound) {
  const std::size_t n = chain.num_states();
  TML_REQUIRE(stay.size() == n && goal.size() == n,
              "bounded_until_probability: set size mismatch");

  std::vector<RationalFunction> values(n);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) values[s] = RationalFunction(1.0);
  }
  std::vector<RationalFunction> next(n);
  for (std::size_t step = 0; step < bound; ++step) {
    for (StateId s = 0; s < n; ++s) {
      if (goal[s]) {
        next[s] = RationalFunction(1.0);
        continue;
      }
      if (!stay[s]) {
        next[s] = RationalFunction();
        continue;
      }
      RationalFunction acc;
      for (const auto& [t, p] : chain.row(s)) {
        if (values[t].is_zero()) continue;
        acc += *p * values[t];
      }
      next[s] = std::move(acc);
    }
    values.swap(next);
  }
  return values[chain.initial_state()];
}

RationalFunction bounded_reachability_probability(const ParametricDtmc& chain,
                                                  const StateSet& targets,
                                                  std::size_t bound) {
  const StateSet stay(chain.num_states(), true);
  return bounded_until_probability(chain, stay, targets, bound);
}

RationalFunction cumulative_reward(const ParametricDtmc& chain,
                                   std::size_t horizon) {
  const std::size_t n = chain.num_states();
  std::vector<RationalFunction> values(n);
  std::vector<RationalFunction> next(n);
  for (std::size_t step = 0; step < horizon; ++step) {
    for (StateId s = 0; s < n; ++s) {
      RationalFunction acc = chain.state_reward(s);
      for (const auto& [t, p] : chain.row(s)) {
        if (values[t].is_zero()) continue;
        acc += *p * values[t];
      }
      next[s] = std::move(acc);
    }
    values.swap(next);
  }
  return values[chain.initial_state()];
}

}  // namespace tml
