#include "src/parametric/bounded.hpp"

#include "src/common/stats.hpp"

namespace tml {

namespace {

/// Registry handles shared by all three entry points. One "run" is one
/// top-level call; one "step" is one symbolic sweep over the state space.
stats::Counter& runs_counter() {
  static stats::Counter& c = stats::counter("parametric.bounded.runs");
  return c;
}

stats::Counter& steps_counter() {
  static stats::Counter& c = stats::counter("parametric.bounded.steps");
  return c;
}

stats::Timer& run_timer() {
  static stats::Timer& t = stats::timer("parametric.bounded.time");
  return t;
}

}  // namespace

RationalFunction bounded_until_probability(const ParametricDtmc& chain,
                                           const StateSet& stay,
                                           const StateSet& goal,
                                           std::size_t bound,
                                           const Budget* budget) {
  const stats::ScopedTimer span(run_timer());
  runs_counter().bump();
  const std::size_t n = chain.num_states();
  TML_REQUIRE(stay.size() == n && goal.size() == n,
              "bounded_until_probability: set size mismatch");
  BudgetTracker tracker(budget != nullptr ? *budget : default_budget());

  std::vector<RationalFunction> values(n);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) values[s] = RationalFunction(1.0);
  }
  std::vector<RationalFunction> next(n);
  for (std::size_t step = 0; step < bound; ++step) {
    steps_counter().bump();
    for (StateId s = 0; s < n; ++s) {
      if (!tracker.tick()) tracker.require_ok("bounded until");
      if (goal[s]) {
        next[s] = RationalFunction(1.0);
        continue;
      }
      if (!stay[s]) {
        next[s] = RationalFunction();
        continue;
      }
      RationalFunction acc;
      for (const auto& [t, p] : chain.row(s)) {
        if (values[t].is_zero()) continue;
        acc += *p * values[t];
      }
      next[s] = std::move(acc);
    }
    values.swap(next);
  }
  return values[chain.initial_state()];
}

RationalFunction bounded_reachability_probability(const ParametricDtmc& chain,
                                                  const StateSet& targets,
                                                  std::size_t bound,
                                                  const Budget* budget) {
  const StateSet stay(chain.num_states(), true);
  return bounded_until_probability(chain, stay, targets, bound, budget);
}

RationalFunction cumulative_reward(const ParametricDtmc& chain,
                                   std::size_t horizon,
                                   const Budget* budget) {
  const stats::ScopedTimer span(run_timer());
  runs_counter().bump();
  const std::size_t n = chain.num_states();
  BudgetTracker tracker(budget != nullptr ? *budget : default_budget());
  std::vector<RationalFunction> values(n);
  std::vector<RationalFunction> next(n);
  for (std::size_t step = 0; step < horizon; ++step) {
    steps_counter().bump();
    for (StateId s = 0; s < n; ++s) {
      if (!tracker.tick()) tracker.require_ok("cumulative reward");
      RationalFunction acc = chain.state_reward(s);
      for (const auto& [t, p] : chain.row(s)) {
        if (values[t].is_zero()) continue;
        acc += *p * values[t];
      }
      next[s] = std::move(acc);
    }
    values.swap(next);
  }
  return values[chain.initial_state()];
}

}  // namespace tml
