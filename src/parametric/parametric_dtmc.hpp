// Parametric discrete-time Markov chains.
//
// A parametric DTMC has transition probabilities (and state rewards) that
// are rational functions of a set of parameters (src/rational). They arise
// in two places in the TML pipeline:
//
//  * Model Repair (§IV-A): the chain P + Z, where Z holds the perturbation
//    variables on the controllable transitions; and
//  * Data Repair (§IV-B): the chain whose maximum-likelihood transition
//    probabilities are rational functions of the data keep/drop weights.
//
// `reachability_probability` and `expected_total_reward` (state
// elimination, see state_elimination.hpp) turn a PCTL reachability query on
// such a chain into a single closed-form rational function f(v) — the
// constraint the repair NLP hands to the optimizer, exactly as PRISM's
// parametric engine does for the paper.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/mdp/model.hpp"
#include "src/rational/rational_function.hpp"
#include "src/rational/variable.hpp"

namespace tml {

/// DTMC whose transition probabilities and rewards are rational functions.
///
/// Structural convention: a transition is "present" iff it was set and its
/// function is not identically zero; qualitative analyses (reachability
/// support) use this structure and therefore assume the parameters never
/// drive a present transition's probability all the way to 0 (the repair
/// feasible sets enforce that via strict bounds, Eq. 6 of the paper).
class ParametricDtmc {
 public:
  ParametricDtmc(std::size_t num_states, VariablePool pool);

  std::size_t num_states() const { return transitions_.size(); }
  const VariablePool& pool() const { return pool_; }
  VariablePool& pool() { return pool_; }

  StateId initial_state() const { return initial_state_; }
  void set_initial_state(StateId s);

  /// Sets P(from, to); overwrites any previous value.
  void set_transition(StateId from, StateId to, RationalFunction probability);
  /// Adds to P(from, to).
  void add_transition(StateId from, StateId to, RationalFunction probability);
  const RationalFunction& transition(StateId from, StateId to) const;
  /// Sparse row: (target, probability) pairs with non-zero functions.
  std::vector<std::pair<StateId, const RationalFunction*>> row(
      StateId from) const;

  void set_state_reward(StateId s, RationalFunction reward);
  const RationalFunction& state_reward(StateId s) const;

  void set_state_name(StateId s, std::string name);
  const std::string& state_name(StateId s) const;

  void add_label(StateId s, const std::string& label);
  const std::vector<std::string>& labels_of(StateId s) const;

  /// Builds the numeric DTMC at a concrete parameter point (values indexed
  /// by variable id). Throws ModelError if any row fails to be a
  /// distribution at that point.
  Dtmc instantiate(std::span<const double> values) const;

  /// Checks that every row sums to 1 *symbolically* (the row sum must
  /// normalize to the constant 1). Cheap sanity check for constructions.
  void validate_symbolic() const;

  /// Lifts a numeric DTMC (constant functions everywhere).
  static ParametricDtmc from_dtmc(const Dtmc& chain, VariablePool pool = {});

 private:
  struct Entry {
    StateId target;
    RationalFunction probability;
  };

  VariablePool pool_;
  std::vector<std::vector<Entry>> transitions_;
  std::vector<RationalFunction> rewards_;
  std::vector<std::string> names_;
  std::vector<std::vector<std::string>> labels_;
  StateId initial_state_ = 0;
  RationalFunction zero_;
};

}  // namespace tml
