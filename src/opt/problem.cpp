#include "src/opt/problem.hpp"

#include <algorithm>
#include <cmath>

namespace tml {

void Box::project(std::vector<double>& x) const {
  if (!lower.empty()) {
    TML_REQUIRE(lower.size() == x.size(), "Box::project: dimension mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::max(x[i], lower[i]);
  }
  if (!upper.empty()) {
    TML_REQUIRE(upper.size() == x.size(), "Box::project: dimension mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::min(x[i], upper[i]);
  }
}

bool Box::contains(std::span<const double> x, double tol) const {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!lower.empty() && x[i] < lower[i] - tol) return false;
    if (!upper.empty() && x[i] > upper[i] + tol) return false;
  }
  return true;
}

Box Box::uniform(std::size_t dim, double lo, double hi) {
  TML_REQUIRE(lo <= hi, "Box::uniform: lo > hi");
  Box box;
  box.lower.assign(dim, lo);
  box.upper.assign(dim, hi);
  return box;
}

double Constraint::violation(std::span<const double> x) const {
  return std::max(0.0, value(x));
}

void Problem::validate() const {
  TML_REQUIRE(dimension > 0, "Problem: zero-dimensional");
  TML_REQUIRE(static_cast<bool>(objective), "Problem: missing objective");
  for (const Constraint& c : constraints) {
    TML_REQUIRE(static_cast<bool>(c.value),
                "Problem: constraint '" << c.name << "' missing value fn");
  }
  TML_REQUIRE(box.lower.empty() || box.lower.size() == dimension,
              "Problem: lower bound dimension mismatch");
  TML_REQUIRE(box.upper.empty() || box.upper.size() == dimension,
              "Problem: upper bound dimension mismatch");
}

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

std::vector<double> numeric_gradient(const ScalarFn& f,
                                     std::span<const double> x, double step) {
  std::vector<double> point(x.begin(), x.end());
  std::vector<double> grad(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double saved = point[i];
    const double h = step * std::max(1.0, std::abs(saved));
    point[i] = saved + h;
    const double fp = f(point);
    point[i] = saved - h;
    const double fm = f(point);
    point[i] = saved;
    grad[i] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

double max_violation(const Problem& problem, std::span<const double> x) {
  double v = 0.0;
  for (const Constraint& c : problem.constraints) {
    v = std::max(v, c.violation(x));
  }
  return v;
}

}  // namespace tml
