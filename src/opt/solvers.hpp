// Nonlinear solvers for the repair problems.
//
// Three local algorithms plus a multi-start driver:
//
//  * Penalty method with projected gradient descent — the workhorse. The
//    constrained problem is relaxed to
//        min  f(x) + μ Σ max(0, g_i(x))²
//    and solved by Adam-style projected gradient for an increasing sequence
//    of μ; box constraints are handled by projection.
//  * Augmented Lagrangian — same inner solver, but with multiplier
//    estimates, which converges to the constraint boundary without μ → ∞.
//  * Nelder–Mead on the penalized objective — derivative-free fallback used
//    by the solver-ablation bench and for objectives whose gradients are
//    expensive (e.g. Q-value constraints that re-run value iteration).
//
// The multi-start driver (`solve`) runs a local algorithm from the box
// centre plus random interior points and keeps the best feasible solution;
// if no start produces a feasible point it reports kInfeasible together
// with the smallest violation found — the behaviour the repair pipeline
// interprets as "Model Repair cannot satisfy φ" (§V-A, X=19 case).

#pragma once

#include "src/common/rng.hpp"
#include "src/opt/problem.hpp"

namespace tml {

enum class Algorithm { kPenalty, kAugmentedLagrangian, kNelderMead };

std::string to_string(Algorithm algorithm);

struct SolveOptions {
  Algorithm algorithm = Algorithm::kPenalty;
  std::size_t num_starts = 8;          ///< random restarts (plus box centre)
  std::size_t max_inner_iterations = 2000;
  std::size_t max_outer_iterations = 12;  ///< penalty/multiplier updates
  double initial_penalty = 10.0;
  double penalty_growth = 4.0;
  double learning_rate = 0.02;
  double feasibility_tol = 1e-6;
  double convergence_tol = 1e-10;
  std::uint64_t seed = 17;
  /// Worker threads for the multi-start driver (0 = TML_THREADS /
  /// hardware). Starts are generated serially from `seed` and solved
  /// concurrently; the winner is picked by an ordered reduction over the
  /// start index, so the result is identical for every thread count.
  std::size_t threads = 0;
  /// Resource budget, polled once per inner iteration of each local solve.
  /// Iteration/evaluation caps apply per start (deterministic under any
  /// thread count); the wall-clock deadline and cancel token are absolute,
  /// so every concurrent start races the same clock. On exhaustion the
  /// solve returns best-feasible-so-far (or the smallest violation found)
  /// flagged `SolveOutcome::budget_status = kBudgetExhausted`.
  Budget budget = default_budget();
  /// Warm-start points tried BEFORE the box centre and the random interior
  /// points (each projected into the box; dimension-mismatched entries are
  /// skipped). Streaming repair feeds the previous batch's repaired point
  /// here: near-feasible seeds typically converge in a handful of inner
  /// iterations. Warm points do not change num_starts — they are extra
  /// starts prepended deterministically, and the winner fold stays ordered,
  /// so results are reproducible for any thread count.
  std::vector<std::vector<double>> warm_starts;
};

/// Runs one local solve from `start` (projected into the box).
SolveOutcome solve_local(const Problem& problem, std::vector<double> start,
                         const SolveOptions& options);

/// Multi-start driver; see file comment.
SolveOutcome solve(const Problem& problem, const SolveOptions& options = {});

}  // namespace tml
