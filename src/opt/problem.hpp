// Problem definition for the constrained nonlinear optimizer.
//
// The repair problems (§IV, Eqs. 4–6 and 11–15) all take the shape
//
//     min  g(v)            (perturbation cost)
//     s.t. f_i(v) <= 0     (the PCTL property, via parametric model
//                           checking, plus domain constraints)
//          lo <= v <= hi   (the feasible-set box: Feas_MP / Feas_D bounds)
//
// which is what the paper hands to AMPL. We encode constraints in the
// `f(x) <= 0` convention; equality constraints are not needed by the paper
// (stochasticity is maintained by construction of the Z matrix).

#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/budget.hpp"
#include "src/common/error.hpp"

namespace tml {

/// Scalar function of a point.
using ScalarFn = std::function<double(std::span<const double>)>;
/// Gradient of a scalar function (same dimension as the point).
using GradientFn = std::function<std::vector<double>(std::span<const double>)>;

/// Box constraints; empty vectors mean unbounded.
struct Box {
  std::vector<double> lower;
  std::vector<double> upper;

  /// Clamps x into the box, in place.
  void project(std::vector<double>& x) const;
  /// True if x is inside (with tolerance).
  bool contains(std::span<const double> x, double tol = 1e-12) const;
  /// Box [lo, hi]^dim.
  static Box uniform(std::size_t dim, double lo, double hi);
};

/// One inequality constraint f(x) <= 0.
struct Constraint {
  std::string name;
  ScalarFn value;
  GradientFn gradient;  ///< optional; numeric differences if null

  /// Violation at x: max(0, f(x)).
  double violation(std::span<const double> x) const;
};

/// A constrained minimization problem.
struct Problem {
  std::size_t dimension = 0;
  ScalarFn objective;
  GradientFn objective_gradient;  ///< optional
  std::vector<Constraint> constraints;
  Box box;

  void validate() const;
};

/// Solver verdicts. `kInfeasible` means: over every start the solver tried,
/// the smallest achievable constraint violation stayed above tolerance —
/// the observable analogue of AMPL reporting an infeasible problem.
enum class SolveStatus { kOptimal, kInfeasible, kIterationLimit };

std::string to_string(SolveStatus status);

/// Result of a solve.
struct SolveOutcome {
  SolveStatus status = SolveStatus::kInfeasible;
  std::vector<double> x;
  double objective = std::numeric_limits<double>::infinity();
  double max_violation = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  std::size_t starts_tried = 0;
  /// kBudgetExhausted when the solve stopped at an iteration boundary
  /// because SolveOptions::budget fired; `x` is then the best point found
  /// before the stop (best feasible, or smallest violation seen so far).
  BudgetStatus budget_status = BudgetStatus::kOk;
  BudgetStop budget_stop = BudgetStop::kNone;

  bool feasible(double tol = 1e-6) const { return max_violation <= tol; }
};

/// Central-difference numeric gradient (used when analytic gradients are
/// not provided).
std::vector<double> numeric_gradient(const ScalarFn& f,
                                     std::span<const double> x,
                                     double step = 1e-7);

/// Max constraint violation of a problem at x.
double max_violation(const Problem& problem, std::span<const double> x);

}  // namespace tml
