#include "src/opt/solvers.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/fault.hpp"
#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"

namespace tml {

namespace {

/// Evaluation tallies. Bumped from worker threads during the multi-start
/// fan-out — relaxed atomic sums are order-insensitive, so this stays within
/// the determinism contract.
void count_objective_evals(std::size_t constraint_evals) {
  static stats::Counter& c_obj = stats::counter("opt.objective_evals");
  static stats::Counter& c_con = stats::counter("opt.constraint_evals");
  c_obj.bump();
  c_con.add(constraint_evals);
}

struct Evaluated {
  double objective = 0.0;
  double violation = 0.0;
};

Evaluated evaluate(const Problem& problem, std::span<const double> x) {
  count_objective_evals(problem.constraints.size());
  return Evaluated{fault::poison("opt.eval", problem.objective(x)),
                   max_violation(problem, x)};
}

/// A candidate may only be recorded when both numbers are finite: a NaN/Inf
/// objective with zero violation used to win the `status != kOptimal`
/// fallback and leave the multi-start reduction holding garbage.
bool recordable(const Evaluated& eval) {
  return std::isfinite(eval.objective) && std::isfinite(eval.violation);
}

void count_nan_start() {
  static stats::Counter& c_nan = stats::counter("opt.nan_starts");
  c_nan.bump();
}

/// Penalized scalar: f(x) + μ Σ max(0, g_i)² (+ λ_i g_i for the augmented
/// Lagrangian when multipliers are provided).
double penalized_value(const Problem& problem, std::span<const double> x,
                       double mu, std::span<const double> multipliers) {
  count_objective_evals(problem.constraints.size());
  double value = problem.objective(x);
  for (std::size_t i = 0; i < problem.constraints.size(); ++i) {
    const double g = problem.constraints[i].value(x);
    if (!multipliers.empty()) {
      // Augmented Lagrangian for inequality g <= 0:
      //   (μ/2)·[max(0, λ/μ + g)² − (λ/μ)²]
      const double shifted = std::max(0.0, multipliers[i] / mu + g);
      value += 0.5 * mu * (shifted * shifted -
                           (multipliers[i] / mu) * (multipliers[i] / mu));
    } else {
      const double v = std::max(0.0, g);
      value += mu * v * v;
    }
  }
  return value;
}

std::vector<double> penalized_gradient(const Problem& problem,
                                       std::span<const double> x, double mu,
                                       std::span<const double> multipliers) {
  static stats::Counter& c_grad = stats::counter("opt.gradient_evals");
  c_grad.bump();
  std::vector<double> grad =
      problem.objective_gradient
          ? problem.objective_gradient(x)
          : numeric_gradient(problem.objective, x);
  for (std::size_t i = 0; i < problem.constraints.size(); ++i) {
    const Constraint& c = problem.constraints[i];
    const double g = c.value(x);
    double scale = 0.0;
    if (!multipliers.empty()) {
      const double shifted = multipliers[i] / mu + g;
      if (shifted > 0.0) scale = mu * shifted;
    } else {
      if (g > 0.0) scale = 2.0 * mu * g;
    }
    if (scale == 0.0) continue;
    const std::vector<double> cg =
        c.gradient ? c.gradient(x) : numeric_gradient(c.value, x);
    for (std::size_t k = 0; k < grad.size(); ++k) grad[k] += scale * cg[k];
  }
  return grad;
}

/// Adam-style projected gradient descent on the penalized objective.
/// Returns the best point visited (by penalized value).
std::vector<double> inner_descend(const Problem& problem,
                                  std::vector<double> x, double mu,
                                  std::span<const double> multipliers,
                                  const SolveOptions& options,
                                  std::size_t* iterations_used,
                                  BudgetTracker& tracker) {
  const std::size_t dim = x.size();
  std::vector<double> m(dim, 0.0), v(dim, 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-12;
  std::vector<double> best = x;
  double best_value = penalized_value(problem, x, mu, multipliers);

  for (std::size_t iter = 0; iter < options.max_inner_iterations; ++iter) {
    if (!tracker.tick()) {
      *iterations_used += iter;
      return best;
    }
    const std::vector<double> grad =
        penalized_gradient(problem, x, mu, multipliers);
    double grad_norm = 0.0;
    for (double g : grad) grad_norm += g * g;
    grad_norm = std::sqrt(grad_norm);
    if (grad_norm < options.convergence_tol) {
      *iterations_used += iter + 1;
      return best;
    }
    const double t = static_cast<double>(iter + 1);
    for (std::size_t k = 0; k < dim; ++k) {
      m[k] = beta1 * m[k] + (1.0 - beta1) * grad[k];
      v[k] = beta2 * v[k] + (1.0 - beta2) * grad[k] * grad[k];
      const double mhat = m[k] / (1.0 - std::pow(beta1, t));
      const double vhat = v[k] / (1.0 - std::pow(beta2, t));
      x[k] -= options.learning_rate * mhat / (std::sqrt(vhat) + eps);
    }
    problem.box.project(x);
    const double value = penalized_value(problem, x, mu, multipliers);
    if (value < best_value) {
      best_value = value;
      best = x;
    }
  }
  *iterations_used += options.max_inner_iterations;
  return best;
}

SolveOutcome penalty_like_solve(const Problem& problem,
                                std::vector<double> start,
                                const SolveOptions& options,
                                bool augmented) {
  problem.box.project(start);
  std::vector<double> multipliers(
      augmented ? problem.constraints.size() : 0, 0.0);
  double mu = options.initial_penalty;
  std::vector<double> x = std::move(start);
  SolveOutcome outcome;
  outcome.starts_tried = 1;
  BudgetTracker tracker(options.budget);
  bool saw_nonfinite = false;

  for (std::size_t outer = 0;
       outer < options.max_outer_iterations && tracker.ok(); ++outer) {
    x = inner_descend(problem, std::move(x), mu, multipliers, options,
                      &outcome.iterations, tracker);
    const Evaluated eval = evaluate(problem, x);
    if (!recordable(eval)) {
      saw_nonfinite = true;
    } else if (eval.violation <= options.feasibility_tol) {
      // Feasible; record and keep polishing with larger μ to tighten the
      // active constraints (the minimum sits on the boundary for repair
      // problems).
      if (eval.objective < outcome.objective ||
          outcome.status != SolveStatus::kOptimal) {
        outcome.status = SolveStatus::kOptimal;
        outcome.x = x;
        outcome.objective = eval.objective;
        outcome.max_violation = eval.violation;
      }
    } else if (outcome.status != SolveStatus::kOptimal &&
               eval.violation < outcome.max_violation) {
      outcome.x = x;
      outcome.objective = eval.objective;
      outcome.max_violation = eval.violation;
    }
    if (augmented) {
      for (std::size_t i = 0; i < problem.constraints.size(); ++i) {
        const double g = problem.constraints[i].value(x);
        multipliers[i] = std::max(0.0, multipliers[i] + mu * g);
      }
    }
    mu *= options.penalty_growth;
  }
  if (outcome.status != SolveStatus::kOptimal) {
    outcome.status = SolveStatus::kInfeasible;
  }
  if (saw_nonfinite) count_nan_start();
  outcome.budget_status = tracker.status();
  outcome.budget_stop = tracker.stop();
  return outcome;
}

// ---------------------------------------------------------------------------
// Nelder–Mead on the penalty function.

SolveOutcome nelder_mead_solve(const Problem& problem,
                               std::vector<double> start,
                               const SolveOptions& options) {
  problem.box.project(start);
  const std::size_t dim = problem.dimension;
  SolveOutcome outcome;
  outcome.starts_tried = 1;

  double mu = options.initial_penalty;
  std::vector<double> x = std::move(start);
  BudgetTracker tracker(options.budget);
  bool saw_nonfinite = false;

  for (std::size_t outer = 0;
       outer < options.max_outer_iterations && tracker.ok(); ++outer) {
    auto value_of = [&](std::span<const double> p) {
      return penalized_value(problem, p, mu, {});
    };

    // Build initial simplex around x.
    std::vector<std::vector<double>> simplex(dim + 1, x);
    for (std::size_t i = 0; i < dim; ++i) {
      double step = 0.05 * std::max(1.0, std::abs(x[i]));
      if (!problem.box.upper.empty() &&
          simplex[i + 1][i] + step > problem.box.upper[i]) {
        step = -step;
      }
      simplex[i + 1][i] += step;
      problem.box.project(simplex[i + 1]);
    }
    std::vector<double> values(dim + 1);
    for (std::size_t i = 0; i <= dim; ++i) values[i] = value_of(simplex[i]);

    for (std::size_t iter = 0; iter < options.max_inner_iterations; ++iter) {
      if (!tracker.tick()) break;
      ++outcome.iterations;
      // Order vertices.
      std::vector<std::size_t> order(dim + 1);
      for (std::size_t i = 0; i <= dim; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return values[a] < values[b];
      });
      const std::size_t best = order[0];
      const std::size_t worst = order[dim];
      const std::size_t second_worst = order[dim - 1];
      if (std::abs(values[worst] - values[best]) <
          options.convergence_tol * (1.0 + std::abs(values[best]))) {
        break;
      }
      // Centroid of all but worst.
      std::vector<double> centroid(dim, 0.0);
      for (std::size_t i = 0; i <= dim; ++i) {
        if (i == worst) continue;
        for (std::size_t k = 0; k < dim; ++k) centroid[k] += simplex[i][k];
      }
      for (double& c : centroid) c /= static_cast<double>(dim);

      auto blend = [&](double coeff) {
        std::vector<double> p(dim);
        for (std::size_t k = 0; k < dim; ++k) {
          p[k] = centroid[k] + coeff * (centroid[k] - simplex[worst][k]);
        }
        problem.box.project(p);
        return p;
      };

      std::vector<double> reflected = blend(1.0);
      const double fr = value_of(reflected);
      if (fr < values[best]) {
        std::vector<double> expanded = blend(2.0);
        const double fe = value_of(expanded);
        if (fe < fr) {
          simplex[worst] = std::move(expanded);
          values[worst] = fe;
        } else {
          simplex[worst] = std::move(reflected);
          values[worst] = fr;
        }
      } else if (fr < values[second_worst]) {
        simplex[worst] = std::move(reflected);
        values[worst] = fr;
      } else {
        std::vector<double> contracted = blend(-0.5);
        const double fc = value_of(contracted);
        if (fc < values[worst]) {
          simplex[worst] = std::move(contracted);
          values[worst] = fc;
        } else {
          // Shrink toward best.
          for (std::size_t i = 0; i <= dim; ++i) {
            if (i == best) continue;
            for (std::size_t k = 0; k < dim; ++k) {
              simplex[i][k] =
                  simplex[best][k] + 0.5 * (simplex[i][k] - simplex[best][k]);
            }
            values[i] = value_of(simplex[i]);
          }
        }
      }
    }

    // Record the best vertex of this μ round.
    std::size_t best = 0;
    for (std::size_t i = 1; i <= dim; ++i) {
      if (values[i] < values[best]) best = i;
    }
    x = simplex[best];
    const Evaluated eval = evaluate(problem, x);
    if (!recordable(eval)) {
      saw_nonfinite = true;
    } else if (eval.violation <= options.feasibility_tol) {
      if (eval.objective < outcome.objective ||
          outcome.status != SolveStatus::kOptimal) {
        outcome.status = SolveStatus::kOptimal;
        outcome.x = x;
        outcome.objective = eval.objective;
        outcome.max_violation = eval.violation;
      }
    } else if (outcome.status != SolveStatus::kOptimal &&
               eval.violation < outcome.max_violation) {
      outcome.x = x;
      outcome.objective = eval.objective;
      outcome.max_violation = eval.violation;
    }
    mu *= options.penalty_growth;
  }
  if (outcome.status != SolveStatus::kOptimal) {
    outcome.status = SolveStatus::kInfeasible;
  }
  if (saw_nonfinite) count_nan_start();
  outcome.budget_status = tracker.status();
  outcome.budget_stop = tracker.stop();
  return outcome;
}

}  // namespace

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPenalty: return "penalty";
    case Algorithm::kAugmentedLagrangian: return "augmented-lagrangian";
    case Algorithm::kNelderMead: return "nelder-mead";
  }
  return "?";
}

SolveOutcome solve_local(const Problem& problem, std::vector<double> start,
                         const SolveOptions& options) {
  problem.validate();
  TML_REQUIRE(start.size() == problem.dimension,
              "solve_local: start point dimension mismatch");
  switch (options.algorithm) {
    case Algorithm::kPenalty:
      return penalty_like_solve(problem, std::move(start), options, false);
    case Algorithm::kAugmentedLagrangian:
      return penalty_like_solve(problem, std::move(start), options, true);
    case Algorithm::kNelderMead:
      return nelder_mead_solve(problem, std::move(start), options);
  }
  throw Error("solve_local: unknown algorithm");
}

SolveOutcome solve(const Problem& problem, const SolveOptions& options) {
  static stats::Timer& t_solve = stats::timer("opt.solve.time");
  static stats::Counter& c_solves = stats::counter("opt.solves");
  static stats::Counter& c_starts = stats::counter("opt.starts");
  static stats::Gauge& g_winner = stats::gauge("opt.multistart.winner");
  const stats::ScopedTimer span(t_solve);
  c_solves.bump();

  problem.validate();
  Rng rng(options.seed);

  // Start points: caller-provided warm points first (previous repaired
  // solutions in streaming use), then box centre (or origin) + random
  // interior points. solve_local projects every start into the box.
  std::vector<std::vector<double>> starts;
  for (const std::vector<double>& w : options.warm_starts) {
    if (w.size() == problem.dimension) starts.push_back(w);
  }
  {
    std::vector<double> centre(problem.dimension, 0.0);
    if (!problem.box.lower.empty() && !problem.box.upper.empty()) {
      for (std::size_t i = 0; i < problem.dimension; ++i) {
        centre[i] = 0.5 * (problem.box.lower[i] + problem.box.upper[i]);
      }
    }
    starts.push_back(std::move(centre));
  }
  for (std::size_t k = 0; k + 1 < options.num_starts; ++k) {
    std::vector<double> p(problem.dimension, 0.0);
    for (std::size_t i = 0; i < problem.dimension; ++i) {
      const double lo =
          problem.box.lower.empty() ? -1.0 : problem.box.lower[i];
      const double hi = problem.box.upper.empty() ? 1.0 : problem.box.upper[i];
      p[i] = rng.uniform(lo, hi);
    }
    starts.push_back(std::move(p));
  }

  // Each start is an independent local solve; they run concurrently and
  // the winner is folded serially in start order afterwards, so the
  // selected outcome is the one the serial loop would have picked for any
  // thread count.
  std::vector<SolveOutcome> outcomes(starts.size());
  parallel_for(
      0, starts.size(), 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          outcomes[k] = solve_local(problem, std::move(starts[k]), options);
        }
      },
      options.threads);

  SolveOutcome best;
  std::size_t total_iterations = 0;
  std::size_t total_starts = 0;
  std::size_t winner = 0;
  BudgetStatus any_exhausted = BudgetStatus::kOk;
  BudgetStop first_stop = BudgetStop::kNone;
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    SolveOutcome& outcome = outcomes[k];
    total_iterations += outcome.iterations;
    ++total_starts;
    if (outcome.budget_status == BudgetStatus::kBudgetExhausted) {
      any_exhausted = BudgetStatus::kBudgetExhausted;
      if (first_stop == BudgetStop::kNone) first_stop = outcome.budget_stop;
    }
    const bool outcome_feasible = outcome.status == SolveStatus::kOptimal;
    const bool best_feasible = best.status == SolveStatus::kOptimal;
    const bool improves =
        (outcome_feasible && !best_feasible) ||
        (outcome_feasible && best_feasible &&
         outcome.objective < best.objective) ||
        (!outcome_feasible && !best_feasible &&
         outcome.max_violation < best.max_violation);
    if (improves || best.x.empty()) {
      best = std::move(outcome);
      winner = k;
    }
  }
  best.iterations = total_iterations;
  best.starts_tried = total_starts;
  // The winner carries its own budget verdict; if ANY start was cut short
  // the aggregate is reported exhausted too (folded in start order, so the
  // reported stop axis is deterministic for cap-style budgets).
  if (any_exhausted == BudgetStatus::kBudgetExhausted) {
    best.budget_status = BudgetStatus::kBudgetExhausted;
    if (best.budget_stop == BudgetStop::kNone) best.budget_stop = first_stop;
  }
  c_starts.add(total_starts);
  g_winner.set(static_cast<double>(winner));
  return best;
}

}  // namespace tml
