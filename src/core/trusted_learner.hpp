// The Trusted Machine Learning pipeline of §II.
//
// Given a dataset D, a model structure, and a property φ:
//
//   1. learn M = ML(D) by maximum likelihood;
//   2. verify M ⊨ φ — if it holds, output M;
//   3. otherwise run Model Repair; if it returns a feasible M' ⊨ φ,
//      output M';
//   4. otherwise run Data Repair; if re-learning from the repaired data
//      yields M'' ⊨ φ, output M'';
//   5. otherwise report that φ cannot be satisfied under the configured
//      repair classes.
//
// (Reward Repair is a separate entry point — src/core/reward_repair.hpp —
// because it operates on IRL-learned rewards rather than on transition
// probabilities.)

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/budget.hpp"
#include "src/core/data_repair.hpp"
#include "src/core/model_repair.hpp"

namespace tml {

/// Which stage produced the final model.
enum class TmlStage {
  kLearnedModelSatisfies,  ///< M = ML(D) already ⊨ φ
  kModelRepair,            ///< repaired transition probabilities
  kDataRepair,             ///< repaired dataset, re-learned model
  kUnsatisfiable           ///< no configured repair succeeds
};

std::string to_string(TmlStage stage);

struct TrustedLearnerConfig {
  double mle_pseudocount = 0.0;
  /// Worker threads for the repair solvers (0 = TML_THREADS / hardware).
  /// Forwarded to the stage solver options that were left at their default
  /// of 0; an explicit per-stage `solver.threads` wins.
  std::size_t threads = 0;
  ModelRepairConfig model_repair;
  DataRepairConfig data_repair;
  /// Feasible model perturbations (Feas_MP): builds the scheme on the
  /// learned chain. If absent, the Model Repair stage is skipped.
  std::function<PerturbationScheme(const Dtmc&)> perturbation;
  /// Feasible data perturbations (Feas_D): groups of the dataset. If empty,
  /// the Data Repair stage is skipped.
  std::vector<RepairGroup> groups;
  /// Overall resource budget for the pipeline. Forwarded to the stage
  /// solver options that were left unlimited; an explicit per-stage budget
  /// below (or an explicit `solver.budget` inside a stage config) wins.
  Budget budget = default_budget();
  /// Per-stage overrides. When set, the stage runs under this budget
  /// regardless of `budget` or the stage config's own `solver.budget`.
  std::optional<Budget> model_repair_budget;
  std::optional<Budget> data_repair_budget;
};

/// Per-stage budget verdict for the pipeline report: which stages ran, and
/// whether any of them were cut short by their budget.
struct TmlStageReport {
  TmlStage stage = TmlStage::kUnsatisfiable;
  bool ran = false;
  BudgetStatus budget_status = BudgetStatus::kOk;
  /// Human-readable note: how the stage ended (normally, flagged partial,
  /// or a caught BudgetExhausted whose message is recorded here).
  std::string note;
};

struct TrustedLearnerReport {
  TmlStage stage = TmlStage::kUnsatisfiable;
  /// The model ML(D) learned in step 1 and its property value.
  Dtmc learned;
  bool learned_satisfies = false;
  std::optional<double> learned_value;
  /// Stage results (present when the stage ran).
  std::optional<ModelRepairResult> model_repair;
  std::optional<DataRepairResult> data_repair;
  /// The final trusted model (absent when kUnsatisfiable).
  std::optional<Dtmc> trusted;
  /// Final verdict of the checker on `trusted`.
  bool trusted_satisfies = false;
  /// One entry per pipeline stage that was attempted, in execution order.
  /// A stage that threw BudgetExhausted is recorded kBudgetExhausted with
  /// the error text in `note`; the pipeline then degrades to the next
  /// stage instead of aborting.
  std::vector<TmlStageReport> stages;
};

/// Runs the full pipeline for a DTMC structure.
TrustedLearnerReport trusted_learn(const Dtmc& structure,
                                   const TrajectoryDataset& data,
                                   const StateFormula& property,
                                   const TrustedLearnerConfig& config);

}  // namespace tml
