// Perturbation schemes: the feasible repair class Feas_MP of §IV-A.
//
// Model Repair perturbs the transition matrix P by a matrix Z of unknowns
// such that P + Z stays stochastic and keeps the support of P (Eqs. 1–3,
// Prop. 1). A `PerturbationScheme` describes Z: each repair variable v_k is
// attached to a set of (state, target) transitions with coefficients, and
// row-sum preservation requires each row's attached coefficients to cancel
// (e.g. v lowers an ignore self-loop and raises the forward probability by
// the same amount — the WSN case study's p and q variables).
//
// The scheme also carries the box Feas_MP puts on each variable (the
// user-specified perturbation limits: "only consider small perturbations"),
// tightened at build time so every perturbed probability stays strictly
// inside (ε, 1−ε) — Eq. 6's 0 < v_k + P(i,j) < 1.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/mdp/model.hpp"
#include "src/parametric/parametric_dtmc.hpp"

namespace tml {

/// Builder for the parametric chain P + Z.
class PerturbationScheme {
 public:
  explicit PerturbationScheme(Dtmc base);

  const Dtmc& base() const { return base_; }

  /// Declares a repair variable with box bounds [lower, upper].
  Var add_variable(const std::string& name, double lower, double upper);

  /// Attaches `coefficient · v` to transition (from → to). The transition
  /// must exist in the base chain (support preservation, Eq. 3).
  void attach(Var v, StateId from, StateId to, double coefficient);

  /// Convenience for the common balanced pair: adds +v to (from → raise)
  /// and −v to (from → lower), preserving the row sum by construction.
  void attach_balanced(Var v, StateId from, StateId raise, StateId lower);

  std::size_t num_variables() const { return names_.size(); }
  const std::vector<std::string>& variable_names() const { return names_; }
  const std::vector<double>& lower_bounds() const { return lower_; }
  const std::vector<double>& upper_bounds() const { return upper_; }

  /// Builds the parametric chain and the (possibly tightened) variable box.
  /// Throws ModelError if a row sum is not symbolically 1, or if no box can
  /// keep all perturbed probabilities within (margin, 1−margin).
  struct Built {
    ParametricDtmc chain;
    std::vector<double> lower;
    std::vector<double> upper;
    std::vector<Var> variables;
  };
  Built build(double probability_margin = 1e-6) const;

  /// Applies concrete variable values to the base chain (the repaired M').
  Dtmc apply(std::span<const double> values) const;

  /// The Proposition 1 bound: the largest absolute entry of Z at these
  /// values (max |coefficient·v| over attachments). The paper's Prop. 1
  /// states M and M+Z are ε-bisimilar with ε bounded by this quantity.
  double max_perturbation(std::span<const double> values) const;

  /// Copy with per-variable bounds rewritten by `transform(index, lo, hi)`
  /// — used by localized repair to freeze variables ([0,0] boxes) without
  /// disturbing variable ids or attachments.
  PerturbationScheme with_bounds(
      const std::function<std::pair<double, double>(std::size_t, double,
                                                    double)>& transform) const;

 private:
  struct Attachment {
    Var variable;
    StateId from;
    StateId to;
    double coefficient;
  };

  Dtmc base_;
  std::vector<std::string> names_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Attachment> attachments_;
};

}  // namespace tml
