#include "src/core/model_repair.hpp"

#include <cmath>

#include "src/checker/check.hpp"
#include "src/checker/reachability.hpp"
#include "src/mdp/solver.hpp"
#include "src/parametric/bounded.hpp"
#include "src/parametric/state_elimination.hpp"

namespace tml {

namespace {

/// Scheduler direction implied by a bounded P/R operator (PRISM resolution;
/// mirrors the checker).
Objective property_objective(const StateFormula& property) {
  if (property.quantifier()) {
    return *property.quantifier() == Quantifier::kMax ? Objective::kMaximize
                                                      : Objective::kMinimize;
  }
  switch (property.comparison()) {
    case Comparison::kLess:
    case Comparison::kLessEqual:
      return Objective::kMaximize;
    case Comparison::kGreater:
    case Comparison::kGreaterEqual:
      return Objective::kMinimize;
  }
  return Objective::kMaximize;
}

void require_repairable(const StateFormula& property) {
  if (property.kind() == StateFormula::Kind::kProb) {
    const PathFormula& path = property.path();
    TML_REQUIRE(path.kind() == PathFormula::Kind::kEventually ||
                    path.kind() == PathFormula::Kind::kUntil,
                "model_repair: only F / U path formulas (step-bounded or "
                "unbounded) are supported, got "
                    << path.to_string());
    return;
  }
  if (property.kind() == StateFormula::Kind::kReward) {
    // Both R[F φ] and R[C<=k] have parametric closed forms.
    return;
  }
  throw Error(
      "model_repair: property must be a bounded P or R operator, got " +
      property.to_string());
}

ScalarFn make_cost(const ModelRepairConfig& config, std::size_t dim) {
  switch (config.cost) {
    case RepairCost::kL2:
      return [](std::span<const double> x) {
        double acc = 0.0;
        for (double v : x) acc += v * v;
        return acc;
      };
    case RepairCost::kL1:
      return [](std::span<const double> x) {
        double acc = 0.0;
        for (double v : x) acc += std::sqrt(v * v + 1e-12);
        return acc;
      };
    case RepairCost::kWeightedL2: {
      TML_REQUIRE(config.cost_weights.size() == dim,
                  "model_repair: weighted cost needs one weight per variable");
      std::vector<double> w = config.cost_weights;
      return [w](std::span<const double> x) {
        double acc = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) acc += w[i] * x[i] * x[i];
        return acc;
      };
    }
  }
  throw Error("model_repair: unknown cost");
}

GradientFn make_cost_gradient(const ModelRepairConfig& config,
                              std::size_t dim) {
  switch (config.cost) {
    case RepairCost::kL2:
      return [](std::span<const double> x) {
        std::vector<double> g(x.size());
        for (std::size_t i = 0; i < x.size(); ++i) g[i] = 2.0 * x[i];
        return g;
      };
    case RepairCost::kL1:
      return [](std::span<const double> x) {
        std::vector<double> g(x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
          g[i] = x[i] / std::sqrt(x[i] * x[i] + 1e-12);
        }
        return g;
      };
    case RepairCost::kWeightedL2: {
      std::vector<double> w = config.cost_weights;
      TML_REQUIRE(w.size() == dim,
                  "model_repair: weighted cost needs one weight per variable");
      return [w](std::span<const double> x) {
        std::vector<double> g(x.size());
        for (std::size_t i = 0; i < x.size(); ++i) g[i] = 2.0 * w[i] * x[i];
        return g;
      };
    }
  }
  throw Error("model_repair: unknown cost");
}

}  // namespace

std::string to_string(RepairCost cost) {
  switch (cost) {
    case RepairCost::kL2: return "L2";
    case RepairCost::kL1: return "L1";
    case RepairCost::kWeightedL2: return "weighted-L2";
  }
  return "?";
}

RationalFunction parametric_property_function(
    const ParametricDtmc& chain, const Dtmc& base, const StateFormula& property,
    const EliminationOptions& options) {
  require_repairable(property);
  if (property.kind() == StateFormula::Kind::kProb) {
    const PathFormula& path = property.path();
    const StateSet goal = satisfying_states(base, path.right());
    const StateSet stay = path.kind() == PathFormula::Kind::kUntil
                              ? satisfying_states(base, path.left())
                              : StateSet(base.num_states(), true);
    if (path.step_bound()) {
      return bounded_until_probability(chain, stay, goal, *path.step_bound(),
                                       options.budget);
    }
    if (path.kind() == PathFormula::Kind::kEventually) {
      return reachability_probability(chain, goal, options);
    }
    // φ1 U φ2: make escape states (¬φ1 ∧ ¬φ2) absorbing, then reach φ2.
    ParametricDtmc restricted = chain;
    for (StateId s = 0; s < base.num_states(); ++s) {
      if (!stay[s] && !goal[s]) {
        for (const auto& [t, p] : chain.row(s)) {
          restricted.set_transition(s, t, RationalFunction());
        }
        restricted.set_transition(s, s, RationalFunction(1.0));
      }
    }
    return reachability_probability(restricted, goal, options);
  }
  if (property.reward_path_kind() == StateFormula::RewardPathKind::kCumulative) {
    return cumulative_reward(chain, property.reward_horizon(), options.budget);
  }
  const StateSet goal = satisfying_states(base, property.reward_target());
  return expected_total_reward(chain, goal, options);
}

RationalFunction parametric_property_function(const ParametricDtmc& chain,
                                              const Dtmc& base,
                                              const StateFormula& property) {
  return parametric_property_function(chain, base, property,
                                      default_elimination_options());
}

namespace {

/// Step bound of a bounded property (0 when unbounded).
std::size_t property_step_bound(const StateFormula& property) {
  if (property.kind() == StateFormula::Kind::kProb) {
    return property.path().step_bound().value_or(0);
  }
  if (property.kind() == StateFormula::Kind::kReward &&
      property.reward_path_kind() ==
          StateFormula::RewardPathKind::kCumulative) {
    return property.reward_horizon();
  }
  return 0;
}

/// Numeric per-point evaluation of a step-bounded property on the
/// instantiated chain. The expanded symbolic polynomial of a k-step
/// iteration has degree ~k and loses all precision for large k; direct
/// numeric evaluation is exact and cheap.
double evaluate_bounded_numeric(const ParametricDtmc& chain, const Dtmc& base,
                                const StateFormula& property,
                                std::span<const double> x) {
  const Dtmc concrete = chain.instantiate(x);
  if (property.kind() == StateFormula::Kind::kProb) {
    const PathFormula& path = property.path();
    const StateSet goal = satisfying_states(base, path.right());
    const StateSet stay = path.kind() == PathFormula::Kind::kUntil
                              ? satisfying_states(base, path.left())
                              : StateSet(base.num_states(), true);
    return dtmc_bounded_until(concrete, stay, goal,
                              *path.step_bound())[concrete.initial_state()];
  }
  return dtmc_cumulative_reward(
      concrete, property.reward_horizon())[concrete.initial_state()];
}

/// Symbolic closed forms stay exact up to roughly this step bound; beyond
/// it Model Repair evaluates the property numerically per NLP iterate.
constexpr std::size_t kMaxSymbolicStepBound = 24;

}  // namespace

ModelRepairResult model_repair(const PerturbationScheme& scheme,
                               const StateFormula& property,
                               const ModelRepairConfig& config) {
  require_repairable(property);
  ModelRepairResult result;
  result.variable_names = scheme.variable_names();
  result.comparison = property.comparison();
  result.bound = property.bound();

  const PerturbationScheme::Built built =
      scheme.build(config.probability_margin);

  const bool numeric_mode =
      property_step_bound(property) > kMaxSymbolicStepBound;

  std::vector<RationalFunction> derivatives;
  std::function<double(std::span<const double>)> evaluate;
  if (numeric_mode) {
    result.function_text =
        "<numeric " + std::to_string(property_step_bound(property)) +
        "-step evaluation>";
    const ParametricDtmc* chain = &built.chain;
    const Dtmc* base = &scheme.base();
    const StateFormula* prop = &property;
    evaluate = [chain, base, prop](std::span<const double> x) {
      return evaluate_bounded_numeric(*chain, *base, *prop, x);
    };
  } else {
    result.property_function = parametric_property_function(
        built.chain, scheme.base(), property, config.elimination);
    result.function_text =
        result.property_function.to_string(built.chain.pool().namer());
    derivatives.reserve(scheme.num_variables());
    for (Var v : built.variables) {
      derivatives.push_back(result.property_function.derivative(v));
    }
    const RationalFunction* f = &result.property_function;
    evaluate = [f](std::span<const double> x) { return f->evaluate(x); };
  }

  const std::size_t dim = scheme.num_variables();
  const Comparison cmp = property.comparison();
  const double bound = property.bound();
  // The solver accepts violations up to feasibility_tol; require at least
  // that much slack so the independent numeric recheck passes at the
  // boundary.
  const double margin =
      std::max(config.constraint_margin,
               10.0 * config.solver.feasibility_tol * (1.0 + std::abs(bound)));

  // Constraint in g(x) <= 0 form.
  const bool upper = cmp == Comparison::kLess || cmp == Comparison::kLessEqual;
  ScalarFn constraint_value = [&evaluate, bound, margin, upper](
                                  std::span<const double> x) {
    const double value = evaluate(x);
    return upper ? value - (bound - margin) : (bound + margin) - value;
  };
  GradientFn constraint_gradient;
  if (!numeric_mode) {
    constraint_gradient = [&derivatives, upper](std::span<const double> x) {
      std::vector<double> g(derivatives.size());
      for (std::size_t i = 0; i < derivatives.size(); ++i) {
        const double d = derivatives[i].evaluate(x);
        g[i] = upper ? d : -d;
      }
      return g;
    };
  }

  Problem problem;
  problem.dimension = dim;
  problem.objective = make_cost(config, dim);
  problem.objective_gradient = make_cost_gradient(config, dim);
  problem.constraints.push_back(Constraint{
      property.to_string(), std::move(constraint_value),
      std::move(constraint_gradient)});
  problem.box.lower = built.lower;
  problem.box.upper = built.upper;

  const SolveOutcome outcome = solve(problem, config.solver);
  result.status = outcome.status;
  result.variable_values = outcome.x;
  result.best_violation = outcome.max_violation;
  if (!outcome.x.empty()) {
    result.achieved = evaluate(outcome.x);
    // The margin exists only to absorb solver slop; feasibility is judged
    // against the *actual* property bound (a penalty-method iterate may sit
    // just outside the margined surrogate yet safely inside the bound).
    if (compare(result.achieved, cmp, bound)) {
      result.status = SolveStatus::kOptimal;
    } else if (result.status == SolveStatus::kOptimal) {
      result.status = SolveStatus::kInfeasible;
    }
  }
  if (result.status == SolveStatus::kOptimal) {
    result.cost = problem.objective(outcome.x);
    result.repaired = scheme.apply(outcome.x);
    result.recheck_passed = check(*result.repaired, property).satisfied;
    result.epsilon_bisimilarity = scheme.max_perturbation(outcome.x);
  }
  return result;
}

EnvelopeRepairResult model_repair_envelope(
    const PerturbationScheme& scheme,
    const std::vector<StateFormulaPtr>& properties,
    const ModelRepairConfig& config) {
  TML_REQUIRE(!properties.empty(), "model_repair_envelope: no properties");
  for (const StateFormulaPtr& p : properties) {
    TML_REQUIRE(p != nullptr, "model_repair_envelope: null property");
    require_repairable(*p);
  }

  EnvelopeRepairResult result;
  ModelRepairResult& repair = result.repair;
  repair.variable_names = scheme.variable_names();
  repair.comparison = properties[0]->comparison();
  repair.bound = properties[0]->bound();

  const PerturbationScheme::Built built =
      scheme.build(config.probability_margin);
  const std::size_t dim = scheme.num_variables();

  // One evaluator (symbolic or numeric) per property.
  struct PropertyTerm {
    const StateFormula* property;
    RationalFunction f;
    std::vector<RationalFunction> derivatives;
    bool numeric = false;
    bool upper = false;
    double bound = 0.0;
    double margin = 0.0;
  };
  std::vector<PropertyTerm> terms(properties.size());
  for (std::size_t k = 0; k < properties.size(); ++k) {
    PropertyTerm& term = terms[k];
    term.property = properties[k].get();
    term.numeric = property_step_bound(*term.property) > kMaxSymbolicStepBound;
    if (!term.numeric) {
      term.f = parametric_property_function(built.chain, scheme.base(),
                                            *term.property, config.elimination);
      for (Var v : built.variables) {
        term.derivatives.push_back(term.f.derivative(v));
      }
    }
    const Comparison cmp = term.property->comparison();
    term.upper = cmp == Comparison::kLess || cmp == Comparison::kLessEqual;
    term.bound = term.property->bound();
    term.margin = std::max(
        config.constraint_margin,
        10.0 * config.solver.feasibility_tol * (1.0 + std::abs(term.bound)));
  }
  repair.property_function = terms[0].f;
  repair.function_text =
      terms[0].numeric ? "<numeric bounded evaluation>"
                       : terms[0].f.to_string(built.chain.pool().namer());

  auto evaluate_term = [&](const PropertyTerm& term,
                           std::span<const double> x) {
    return term.numeric ? evaluate_bounded_numeric(built.chain, scheme.base(),
                                                   *term.property, x)
                        : term.f.evaluate(x);
  };

  Problem problem;
  problem.dimension = dim;
  problem.objective = make_cost(config, dim);
  problem.objective_gradient = make_cost_gradient(config, dim);
  for (PropertyTerm& term : terms) {
    const PropertyTerm* t = &term;
    GradientFn gradient;
    if (!term.numeric) {
      gradient = [t](std::span<const double> x) {
        std::vector<double> g(t->derivatives.size());
        for (std::size_t i = 0; i < t->derivatives.size(); ++i) {
          const double d = t->derivatives[i].evaluate(x);
          g[i] = t->upper ? d : -d;
        }
        return g;
      };
    }
    problem.constraints.push_back(Constraint{
        term.property->to_string(),
        [t, &evaluate_term](std::span<const double> x) {
          const double value = evaluate_term(*t, x);
          return t->upper ? value - (t->bound - t->margin)
                          : (t->bound + t->margin) - value;
        },
        std::move(gradient)});
  }
  problem.box.lower = built.lower;
  problem.box.upper = built.upper;

  const SolveOutcome outcome = solve(problem, config.solver);
  repair.status = outcome.status;
  repair.variable_values = outcome.x;
  repair.best_violation = outcome.max_violation;
  if (!outcome.x.empty()) {
    bool all_satisfied = true;
    for (const PropertyTerm& term : terms) {
      EnvelopeEntry entry;
      entry.property_text = term.property->to_string();
      entry.achieved = evaluate_term(term, outcome.x);
      entry.bound = term.bound;
      entry.comparison = term.property->comparison();
      entry.satisfied =
          compare(entry.achieved, entry.comparison, entry.bound);
      all_satisfied = all_satisfied && entry.satisfied;
      result.per_property.push_back(std::move(entry));
    }
    repair.achieved = result.per_property[0].achieved;
    repair.status =
        all_satisfied ? SolveStatus::kOptimal : SolveStatus::kInfeasible;
  }
  if (repair.status == SolveStatus::kOptimal) {
    repair.cost = problem.objective(outcome.x);
    repair.repaired = scheme.apply(outcome.x);
    repair.recheck_passed = true;
    for (const StateFormulaPtr& p : properties) {
      repair.recheck_passed =
          repair.recheck_passed && check(*repair.repaired, *p).satisfied;
    }
  }
  return result;
}

namespace {

/// Greedy policy achieving the given reachability values.
Policy reachability_policy(const Mdp& mdp, const StateSet& goal,
                           Objective objective) {
  const std::vector<double> values = mdp_reachability(mdp, goal, objective);
  Policy policy;
  policy.choice_index.assign(mdp.num_states(), 0);
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    const auto& choices = mdp.choices(s);
    double best = 0.0;
    std::uint32_t best_c = 0;
    bool first = true;
    for (std::uint32_t c = 0; c < choices.size(); ++c) {
      double q = 0.0;
      for (const Transition& t : choices[c].transitions) {
        q += t.probability * values[t.target];
      }
      if (first || (objective == Objective::kMaximize ? q > best : q < best)) {
        best = q;
        best_c = c;
        first = false;
      }
    }
    policy.choice_index[s] = best_c;
  }
  return policy;
}

Policy property_policy(const Mdp& mdp, const StateFormula& property) {
  const Objective objective = property_objective(property);
  if (property.kind() == StateFormula::Kind::kReward) {
    TML_REQUIRE(property.reward_path_kind() ==
                    StateFormula::RewardPathKind::kReachability,
                "mdp_model_repair: cumulative-reward properties need a "
                "time-varying policy; repair the induced DTMC directly");
    const StateSet goal = satisfying_states(mdp, property.reward_target());
    return total_reward_to_target(mdp, goal, objective).policy;
  }
  const PathFormula& path = property.path();
  TML_REQUIRE(!path.step_bound(),
              "mdp_model_repair: step-bounded paths need a time-varying "
              "policy; repair the induced DTMC directly");
  const StateSet goal = satisfying_states(mdp, path.right());
  return reachability_policy(mdp, goal, objective);
}

bool same_policy(const Policy& a, const Policy& b) {
  return a.choice_index == b.choice_index;
}

}  // namespace

MdpModelRepairResult mdp_model_repair(
    const Mdp& mdp, const StateFormula& property,
    const std::function<PerturbationScheme(const Dtmc&)>& scheme_for,
    const std::function<Mdp(std::span<const double>)>& rebuild,
    const ModelRepairConfig& config, std::size_t max_policy_rounds) {
  require_repairable(property);
  mdp.validate();

  MdpModelRepairResult result;
  Policy policy = property_policy(mdp, property);

  for (std::size_t round = 0; round < max_policy_rounds; ++round) {
    result.policy_rounds = round + 1;
    const Dtmc induced = mdp.induced_dtmc(policy);
    const PerturbationScheme scheme = scheme_for(induced);
    result.inner = model_repair(scheme, property, config);
    if (!result.inner.feasible()) {
      return result;  // infeasible at this policy; report as-is
    }
    Mdp repaired = rebuild(result.inner.variable_values);
    repaired.validate();
    const Policy repaired_policy = property_policy(repaired, property);
    const bool mdp_satisfied = check(repaired, property).satisfied;
    result.repaired_mdp = std::move(repaired);
    result.policy_stable = same_policy(policy, repaired_policy);
    if (mdp_satisfied) {
      return result;
    }
    if (result.policy_stable) {
      // Policy did not move but the MDP-level property still fails: the
      // repair certificate does not transfer. Report infeasible.
      result.inner.status = SolveStatus::kInfeasible;
      return result;
    }
    policy = repaired_policy;
  }
  result.inner.status = SolveStatus::kIterationLimit;
  return result;
}

}  // namespace tml
