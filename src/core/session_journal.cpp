#include "src/core/session_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/fault.hpp"
#include "src/common/stats.hpp"

namespace tml {

namespace {

constexpr char kMagic[4] = {'T', 'M', 'L', 'J'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = sizeof(kMagic) + sizeof(std::uint32_t);
// type byte + payload length + checksum
constexpr std::size_t kRecordHeaderSize = 1 + 4 + 8;
// A journal only ever holds trajectory batches and session checkpoints;
// anything claiming to be larger than this is a corrupt length field, not
// a record worth allocating for.
constexpr std::uint32_t kMaxPayload = 1u << 30;

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// write(2) the whole buffer, retrying EINTR and short writes. Returns the
/// byte count actually written (== size on success) so a caller can report
/// how much of a torn record landed.
std::size_t write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  return written;
}

}  // namespace

std::uint64_t journal_checksum(const std::string& payload) {
  // FNV-1a 64 — the same hash family the compiled-model content hash uses.
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : payload) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

SessionJournal::SessionJournal(std::string path, bool truncate, bool sync)
    : path_(std::move(path)), sync_(sync) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw JournalError("journal: cannot open " + path_ + ": " +
                       std::strerror(errno));
  }
  if (truncate) {
    std::string header(kMagic, sizeof(kMagic));
    journal_io::put_u32(header, kFormatVersion);
    if (write_all(fd_, header.data(), header.size()) != header.size()) {
      const std::string reason = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw JournalError("journal: cannot write header to " + path_ + ": " +
                         reason);
    }
    if (sync_) ::fsync(fd_);
  } else {
    // Appending to an existing journal: validate the header so a resume
    // pointed at the wrong file fails loudly instead of appending records
    // another reader will reject.
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < static_cast<off_t>(kHeaderSize)) {
      ::close(fd_);
      fd_ = -1;
      throw JournalError("journal: " + path_ +
                         " is not a session journal (missing header)");
    }
    // scan_journal validates magic + version; reuse it rather than a second
    // header parser.
    try {
      (void)scan_journal(path_);
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
  }
}

SessionJournal::~SessionJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SessionJournal::append(JournalRecordType type,
                            const std::string& payload) {
  static stats::Counter& c_records =
      stats::counter("core.session.journal_records");
  TML_REQUIRE(fd_ >= 0, "journal: append on a closed journal");
  TML_REQUIRE(payload.size() <= kMaxPayload,
              "journal: payload exceeds " << kMaxPayload << " bytes");

  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  journal_io::put_u8(record, static_cast<std::uint8_t>(type));
  journal_io::put_u32(record, static_cast<std::uint32_t>(payload.size()));
  journal_io::put_u64(record, journal_checksum(payload));
  record.append(payload);

  std::size_t to_write = record.size();
  const fault::WireAction action = fault::wire("session.journal_write");
  switch (action.kind) {
    case fault::WireAction::Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::nanoseconds(action.delay_ns));
      break;
    case fault::WireAction::Kind::kShort:
      // Simulated crash mid-append: half the record lands, then the
      // process "dies" (we throw). The torn tail must be dropped — with a
      // warning, never misread — by the next scan.
      to_write = record.size() / 2;
      break;
    case fault::WireAction::Kind::kDrop:
      throw JournalError("journal: injected write failure (" + path_ + ")");
    case fault::WireAction::Kind::kNone:
      break;
  }

  const std::size_t written = write_all(fd_, record.data(), to_write);
  if (sync_) ::fsync(fd_);
  if (written != record.size()) {
    throw JournalError("journal: short write to " + path_ + " (" +
                       std::to_string(written) + " of " +
                       std::to_string(record.size()) + " bytes)");
  }
  ++records_written_;
  c_records.bump();
}

JournalScan scan_journal(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw JournalError("journal: cannot open " + path + ": " +
                       std::strerror(errno));
  }
  std::string data;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string reason = std::strerror(errno);
      ::close(fd);
      throw JournalError("journal: read failed on " + path + ": " + reason);
    }
    if (n == 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    throw JournalError("journal: " + path + " is not a session journal");
  }
  const std::uint32_t version = load_u32(data.data() + sizeof(kMagic));
  if (version != kFormatVersion) {
    throw JournalError("journal: " + path + " has format version " +
                       std::to_string(version) + ", expected " +
                       std::to_string(kFormatVersion));
  }

  JournalScan scan;
  std::size_t pos = kHeaderSize;
  const auto drop_tail = [&](const std::string& why) {
    scan.tail_dropped = true;
    scan.dropped_bytes = data.size() - pos;
    scan.warning = "journal: dropped " + std::to_string(scan.dropped_bytes) +
                   " trailing byte(s) of " + path + " after record " +
                   std::to_string(scan.records.size()) + ": " + why;
  };
  while (pos < data.size()) {
    if (data.size() - pos < kRecordHeaderSize) {
      drop_tail("torn record header");
      break;
    }
    const std::uint8_t type = static_cast<std::uint8_t>(data[pos]);
    const std::uint32_t length = load_u32(data.data() + pos + 1);
    const std::uint64_t checksum = load_u64(data.data() + pos + 5);
    if (type != static_cast<std::uint8_t>(JournalRecordType::kBatch) &&
        type != static_cast<std::uint8_t>(JournalRecordType::kCheckpoint)) {
      drop_tail("unknown record type " + std::to_string(type));
      break;
    }
    if (length > kMaxPayload || data.size() - pos - kRecordHeaderSize < length) {
      drop_tail("truncated payload (" + std::to_string(length) +
                " bytes claimed)");
      break;
    }
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(type);
    record.payload = data.substr(pos + kRecordHeaderSize, length);
    if (journal_checksum(record.payload) != checksum) {
      drop_tail("checksum mismatch");
      break;
    }
    scan.records.push_back(std::move(record));
    pos += kRecordHeaderSize + length;
  }
  return scan;
}

namespace journal_io {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(v));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(v));
  put_u64(out, bits);
}

void put_bytes(std::string& out, const std::string& bytes) {
  put_u64(out, bytes.size());
  out.append(bytes);
}

std::uint8_t Reader::u8() {
  if (data_.size() - pos_ < 1) {
    throw JournalError("journal: payload underrun (u8)");
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t Reader::u32() {
  if (data_.size() - pos_ < sizeof(std::uint32_t)) {
    throw JournalError("journal: payload underrun (u32)");
  }
  const std::uint32_t v = load_u32(data_.data() + pos_);
  pos_ += sizeof(v);
  return v;
}

std::uint64_t Reader::u64() {
  if (data_.size() - pos_ < sizeof(std::uint64_t)) {
    throw JournalError("journal: payload underrun (u64)");
  }
  const std::uint64_t v = load_u64(data_.data() + pos_);
  pos_ += sizeof(v);
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::bytes() {
  const std::uint64_t n = u64();
  if (data_.size() - pos_ < n) {
    throw JournalError("journal: payload underrun (bytes)");
  }
  std::string out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

void Reader::expect_done(const char* what) const {
  if (pos_ != data_.size()) {
    throw JournalError(std::string("journal: trailing bytes in ") + what +
                       " payload");
  }
}

}  // namespace journal_io

}  // namespace tml
