// Durable write-ahead journal for streaming repair sessions.
//
// A RepairSession configured with a journal path appends one record per
// event to an append-only file, so that a killed process (daemon crash,
// SIGKILL mid-batch, power loss) can restart and *byte-deterministically*
// replay to the identical SessionReport:
//
//  * kBatch      — the trajectory batch about to be fed, written (and
//                  fsync'd) BEFORE any processing: a crash mid-feed replays
//                  the batch on resume;
//  * kCheckpoint — a periodic snapshot of the full session state (MLE
//                  counts, current chain, warm bracket, report so far), so
//                  resume restores the latest checkpoint and re-feeds only
//                  the batches journaled after it.
//
// File format. A fixed header (magic "TMLJ", format version), then
// length-prefixed checksummed records:
//
//   [u8 type][u32 payload_len][u64 fnv1a64(payload)][payload bytes]
//
// Integers and doubles are little-endian fixed-width; doubles are the raw
// IEEE-754 bit pattern, so a round trip is bitwise exact — which is what
// makes "replay to the identical report" a byte-level statement rather
// than an epsilon one.
//
// Crash safety. Appends go through write(2) with EINTR/short-write loops
// and an fsync per record (configurable off for tests); a torn append —
// the record a crash interrupted — fails its length or checksum on the
// next scan and is DROPPED, with `JournalScan::tail_dropped` set and a
// typed warning describing what was discarded. A record that fails its
// checksum is never silently misread; everything before the first bad
// record is intact (fsync ordering), so the journal degrades by losing at
// most the final in-flight record. Reads distinguish "corrupt tail"
// (recoverable, warn + drop) from "not a journal at all" (JournalError).
//
// The wire-level fault site `session.journal_write` (src/common/fault.hpp)
// injects short writes / failures / delays into append(), making torn-tail
// recovery deterministically testable without SIGKILL timing races.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

/// Typed failure of the journal layer: unopenable file, bad magic/version,
/// an append that could not be completed. Corrupt *tail* records are NOT
/// errors — they surface as JournalScan::tail_dropped.
class JournalError : public Error {
 public:
  explicit JournalError(const std::string& what) : Error(what) {}
};

enum class JournalRecordType : std::uint8_t {
  kBatch = 1,
  kCheckpoint = 2,
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kBatch;
  std::string payload;
};

/// Result of scanning a journal file: every intact record in append order,
/// plus what (if anything) was dropped at the tail.
struct JournalScan {
  std::vector<JournalRecord> records;
  /// True when trailing bytes failed the length/checksum contract and were
  /// discarded (torn final append). Never set for an empty, clean file.
  bool tail_dropped = false;
  std::size_t dropped_bytes = 0;  ///< bytes discarded at the tail
  std::string warning;            ///< human-readable drop description
};

/// Append-side handle. Opens (creating or appending) on construction;
/// every append() is length-prefixed, checksummed and — when `sync` —
/// fsync'd before returning, so a record either survives whole or tears
/// visibly at the tail.
class SessionJournal {
 public:
  /// `truncate` starts a fresh journal (new session); false appends to an
  /// existing one (resume). Throws JournalError when the file cannot be
  /// opened, or — when appending — when the existing header is not a
  /// journal.
  SessionJournal(std::string path, bool truncate, bool sync = true);
  ~SessionJournal();
  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  /// Appends one record durably. Throws JournalError when the write fails
  /// (including an injected `session.journal_write` fault — in which case
  /// the record may be torn, exactly like a real crash mid-append).
  void append(JournalRecordType type, const std::string& payload);

  const std::string& path() const { return path_; }
  std::uint64_t records_written() const { return records_written_; }

 private:
  std::string path_;
  int fd_ = -1;
  bool sync_ = true;
  std::uint64_t records_written_ = 0;
};

/// Scans `path`, validating the header and every record checksum. Intact
/// records are returned in order; a torn/corrupt tail is dropped with a
/// warning (see JournalScan). Throws JournalError when the file cannot be
/// read or is not a journal (bad magic / unsupported version).
JournalScan scan_journal(const std::string& path);

/// FNV-1a 64-bit over a byte string — the journal's record checksum.
std::uint64_t journal_checksum(const std::string& payload);

// ---------------------------------------------------------------------------
// Little-endian binary encoding helpers shared by the journal payload
// codecs (repair_session.cpp). Doubles are raw IEEE-754 bit patterns:
// encode/decode round trips are bitwise exact.

namespace journal_io {

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);
void put_bytes(std::string& out, const std::string& bytes);

/// Bounds-checked readers over a payload; throw JournalError past the end
/// (a checksummed record can still be logically malformed across format
/// versions — never misread silently).
class Reader {
 public:
  explicit Reader(const std::string& payload) : data_(payload) {}
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string bytes();
  bool done() const { return pos_ == data_.size(); }
  /// Throws JournalError unless every payload byte was consumed.
  void expect_done(const char* what) const;

 private:
  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace journal_io

}  // namespace tml
