#include "src/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

namespace tml {

SensitivityReport sensitivity_analysis(const PerturbationScheme& scheme,
                                       const StateFormula& property,
                                       const ModelRepairConfig& config) {
  const PerturbationScheme::Built built =
      scheme.build(config.probability_margin);
  const RationalFunction f = parametric_property_function(
      built.chain, scheme.base(), property, config.elimination);

  SensitivityReport report;
  report.function_text = f.to_string(built.chain.pool().namer());
  const std::vector<double> origin(scheme.num_variables(), 0.0);
  report.nominal_value = f.evaluate(origin);

  for (std::size_t i = 0; i < scheme.num_variables(); ++i) {
    const Var v = built.variables[i];
    VariableSensitivity entry;
    entry.variable = v;
    entry.name = scheme.variable_names()[i];
    entry.derivative = f.derivative(v).evaluate(origin);
    // The usable range in the direction that helps the property is bounded
    // by the box; the first-order leverage uses the larger side.
    const double range = std::max(std::abs(built.lower[i]),
                                  std::abs(built.upper[i]));
    entry.leverage = std::abs(entry.derivative) * range;
    report.variables.push_back(entry);
  }
  std::sort(report.variables.begin(), report.variables.end(),
            [](const VariableSensitivity& a, const VariableSensitivity& b) {
              return a.leverage > b.leverage;
            });
  return report;
}

LocalizedRepairResult localized_model_repair(const PerturbationScheme& scheme,
                                             const StateFormula& property,
                                             std::size_t top_k,
                                             const ModelRepairConfig& config) {
  TML_REQUIRE(top_k > 0, "localized_model_repair: top_k must be positive");
  LocalizedRepairResult result;
  result.sensitivity = sensitivity_analysis(scheme, property, config);

  // Freeze everything outside the top-k by collapsing its box to {0}.
  std::vector<bool> active(scheme.num_variables(), false);
  for (std::size_t rank = 0;
       rank < std::min(top_k, result.sensitivity.variables.size()); ++rank) {
    const Var v = result.sensitivity.variables[rank].variable;
    active[v] = true;
    result.active_variables.push_back(result.sensitivity.variables[rank].name);
  }

  // Run the full repair with the inactive variables' boxes collapsed to
  // {0}: variable ids, attachments and the parametric function all stay
  // aligned with the full scheme.
  const PerturbationScheme reduced =
      scheme.with_bounds([&](std::size_t i, double lo, double hi) {
        return active[i] ? std::pair<double, double>{lo, hi}
                         : std::pair<double, double>{0.0, 0.0};
      });
  result.repair = model_repair(reduced, property, config);
  return result;
}

}  // namespace tml
