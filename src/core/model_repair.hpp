// Model Repair (§IV-A, Definition 1, Equations 1–6).
//
// Given a learned chain M, a PCTL property φ it violates, and a
// perturbation scheme (Feas_MP), find the minimal-cost perturbation v such
// that M_v ⊨ φ:
//
//   1. parametric model checking (src/parametric) turns φ into a rational
//      function f(v) of the perturbation variables (Prop. 2);
//   2. the resulting NLP  min g(v)  s.t. f(v) ⋈ b, v ∈ box  is solved by
//      the optimizer (src/opt) — the paper's PRISM + AMPL pipeline;
//   3. the repaired chain is re-checked with the numeric checker as an
//      independent certificate.
//
// Supported property shapes (the fragment with closed-form parametric
// solutions): P⋈b[F φ_t], P⋈b[φ_1 U φ_2], R⋈b[F φ_t], with label-defined
// (parameter-independent) operand sets.
//
// The MDP variant fixes the optimizing policy at the nominal parameters,
// repairs the induced DTMC, and re-verifies the repaired MDP — iterating
// with the new optimal policy if it changed (see DESIGN.md, substitutions).

#pragma once

#include <functional>
#include <optional>
#include <string>

#include "src/core/perturbation.hpp"
#include "src/logic/pctl.hpp"
#include "src/opt/solvers.hpp"
#include "src/parametric/parametric_dtmc.hpp"
#include "src/parametric/state_elimination.hpp"
#include "src/rational/rational_function.hpp"

namespace tml {

/// Perturbation cost g(Z) of Eq. 1/4.
enum class RepairCost {
  kL2,         ///< Σ v_k² — the paper's Frobenius-norm default
  kL1,         ///< Σ |v_k| (smooth approximation), favours sparse repairs
  kWeightedL2  ///< Σ w_k v_k²
};

std::string to_string(RepairCost cost);

struct ModelRepairConfig {
  RepairCost cost = RepairCost::kL2;
  std::vector<double> cost_weights;  ///< for kWeightedL2, one per variable
  double probability_margin = 1e-6;  ///< Eq. 6 strictness: probs in (m, 1−m)
  double constraint_margin = 0.0;    ///< require f ⋈ b with this slack
  SolveOptions solver;
  /// Ordering/SCC knobs for the parametric elimination that builds f(v).
  EliminationOptions elimination = default_elimination_options();
};

struct ModelRepairResult {
  SolveStatus status = SolveStatus::kInfeasible;
  std::vector<std::string> variable_names;
  std::vector<double> variable_values;
  double cost = 0.0;
  /// Value of the property function at the solution (e.g. expected
  /// attempts), and the bound it was checked against.
  double achieved = 0.0;
  double bound = 0.0;
  Comparison comparison = Comparison::kLessEqual;
  /// Closed-form f(v) from parametric model checking, printable via
  /// `function_text`.
  RationalFunction property_function;
  std::string function_text;
  /// The repaired chain (valid when status == kOptimal).
  std::optional<Dtmc> repaired;
  /// Proposition 1 certificate: M and the repaired M' are ε-bisimilar with
  /// ε bounded by the largest entry of Z at the solution.
  double epsilon_bisimilarity = 0.0;
  /// Verdict of the independent numeric re-check of the repaired chain.
  bool recheck_passed = false;
  /// Smallest constraint violation seen (diagnostic when infeasible).
  double best_violation = 0.0;

  bool feasible() const { return status == SolveStatus::kOptimal; }
};

/// Repairs a DTMC against a boolean P/R property.
ModelRepairResult model_repair(const PerturbationScheme& scheme,
                               const StateFormula& property,
                               const ModelRepairConfig& config = {});

/// Multi-property repair: §I defines the safety envelope as a SET of
/// properties; this variant finds one minimal perturbation satisfying all
/// of them simultaneously (one NLP with one constraint per property).
/// The result's scalar fields (`achieved`, `bound`, `comparison`,
/// `property_function`) describe the first property; `per_property`
/// reports each property's achieved value and verdict.
struct EnvelopeEntry {
  std::string property_text;
  double achieved = 0.0;
  double bound = 0.0;
  Comparison comparison = Comparison::kLessEqual;
  bool satisfied = false;
};

struct EnvelopeRepairResult {
  ModelRepairResult repair;
  std::vector<EnvelopeEntry> per_property;
};

EnvelopeRepairResult model_repair_envelope(
    const PerturbationScheme& scheme,
    const std::vector<StateFormulaPtr>& properties,
    const ModelRepairConfig& config = {});

/// Computes only the parametric property function f(v) (exposed for
/// inspection / the benches). The options select the elimination ordering
/// (and carry the budget for the bounded symbolic sweeps).
RationalFunction parametric_property_function(
    const ParametricDtmc& chain, const Dtmc& base, const StateFormula& property,
    const EliminationOptions& options);
RationalFunction parametric_property_function(const ParametricDtmc& chain,
                                              const Dtmc& base,
                                              const StateFormula& property);

/// MDP Model Repair via policy fixing. `rebuild` must construct the full
/// MDP at concrete variable values (the same perturbation semantics as
/// `scheme_for` applies to the induced chain); `scheme_for` builds the
/// perturbation scheme on the induced DTMC of the current optimal policy.
struct MdpModelRepairResult {
  ModelRepairResult inner;
  std::optional<Mdp> repaired_mdp;
  std::size_t policy_rounds = 0;
  bool policy_stable = false;  ///< optimal policy unchanged at the solution
};

MdpModelRepairResult mdp_model_repair(
    const Mdp& mdp, const StateFormula& property,
    const std::function<PerturbationScheme(const Dtmc&)>& scheme_for,
    const std::function<Mdp(std::span<const double>)>& rebuild,
    const ModelRepairConfig& config = {}, std::size_t max_policy_rounds = 4);

}  // namespace tml
