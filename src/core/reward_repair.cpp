#include "src/core/reward_repair.hpp"

#include <cmath>

#include "src/mdp/simulate.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

/// Samples trajectories from the soft policy of (mdp, theta).
std::vector<Trajectory> sample_soft_trajectories(
    const Mdp& mdp, const StateFeatures& features,
    std::span<const double> theta, std::size_t horizon, std::size_t count,
    Rng& rng) {
  const std::vector<double> rewards = features.rewards(theta);
  const SoftPolicy soft = soft_value_iteration(mdp, rewards, horizon);

  std::vector<Trajectory> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Trajectory trajectory;
    trajectory.initial_state = mdp.initial_state();
    StateId current = mdp.initial_state();
    for (std::size_t t = 0; t < horizon; ++t) {
      const auto& probs = soft.pi[t][current];
      const std::uint32_t c =
          static_cast<std::uint32_t>(rng.categorical(probs));
      const Choice& choice = mdp.choices(current)[c];
      std::vector<double> weights;
      weights.reserve(choice.transitions.size());
      for (const Transition& tr : choice.transitions) {
        weights.push_back(tr.probability);
      }
      const StateId next =
          choice.transitions[rng.categorical(weights)].target;
      trajectory.steps.push_back(Step{current, c, choice.action, next});
      current = next;
    }
    out.push_back(std::move(trajectory));
  }
  return out;
}

double rule_penalty(const Mdp& mdp, const Trajectory& trajectory,
                    const std::vector<WeightedRule>& rules) {
  double penalty = 0.0;
  for (const WeightedRule& r : rules) {
    if (!r.rule->holds(mdp, trajectory)) penalty += r.lambda;
  }
  return penalty;
}

}  // namespace

ProjectionResult reward_repair_projection(const Mdp& mdp,
                                          const StateFeatures& features,
                                          std::span<const double> theta,
                                          const std::vector<WeightedRule>& rules,
                                          const ProjectionConfig& config) {
  mdp.validate();
  TML_REQUIRE(!rules.empty(), "reward_repair_projection: no rules given");
  for (const WeightedRule& r : rules) {
    TML_REQUIRE(r.rule != nullptr, "reward_repair_projection: null rule");
    TML_REQUIRE(r.lambda >= 0.0, "reward_repair_projection: negative lambda");
  }

  ProjectionResult result;
  result.theta_before.assign(theta.begin(), theta.end());

  Rng rng(config.seed);
  const std::vector<Trajectory> samples = sample_soft_trajectories(
      mdp, features, theta, config.horizon, config.num_samples, rng);

  // Importance weights w(U) ∝ exp(−Σ λ_l [1 − φ_l(U)]): Q = w·P / Z.
  std::vector<double> weights(samples.size(), 0.0);
  result.satisfaction_before.assign(rules.size(), 0.0);
  double z = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t l = 0; l < rules.size(); ++l) {
      if (rules[l].rule->holds(mdp, samples[i])) {
        result.satisfaction_before[l] += 1.0;
      }
    }
    weights[i] = std::exp(-rule_penalty(mdp, samples[i], rules));
    z += weights[i];
  }
  for (double& s : result.satisfaction_before) {
    s /= static_cast<double>(samples.size());
  }
  TML_REQUIRE(z > 0.0,
              "reward_repair_projection: all sampled trajectories have zero "
              "projected mass — lambdas too large for the sample");

  // Satisfaction under Q and KL(Q ‖ P) = E_Q[log(w/Z·N)]… with
  // w_i = exp(−pen_i) and Q_i = w_i / Σ w_j (uniform-over-samples base),
  // KL(Q‖P) = Σ Q_i · (log w_i − log(Z/N)).
  result.satisfaction_after.assign(rules.size(), 0.0);
  const double log_mean_w = std::log(z / static_cast<double>(samples.size()));
  double kl = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double q = weights[i] / z;
    if (q > 0.0) {
      kl += q * (std::log(weights[i]) - log_mean_w);
    }
    for (std::size_t l = 0; l < rules.size(); ++l) {
      if (rules[l].rule->holds(mdp, samples[i])) {
        result.satisfaction_after[l] += q;
      }
    }
  }
  result.kl_divergence = kl;

  // E_Q[f(U)] via the importance weights (departure convention, matching
  // src/irl).
  std::vector<double> target(features.dim(), 0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double q = weights[i] / z;
    if (q == 0.0) continue;
    for (const Step& step : samples[i].steps) {
      const auto& row = features.row(step.state);
      for (std::size_t k = 0; k < target.size(); ++k) {
        target[k] += q * row[k];
      }
    }
  }

  // Re-estimate Θ' from Q's feature expectations (R' in the paper).
  IrlOptions refit = config.refit;
  refit.horizon = config.horizon;
  const IrlResult fit = fit_to_feature_counts(
      mdp, features, target, refit, result.theta_before);
  result.theta_after = fit.theta;
  result.refit_converged = fit.converged;

  // Validate: sample from the repaired reward's soft policy and measure
  // rule satisfaction.
  const std::vector<Trajectory> repaired_samples = sample_soft_trajectories(
      mdp, features, result.theta_after, config.horizon,
      std::max<std::size_t>(config.num_samples / 2, 1), rng);
  result.satisfaction_repaired.assign(rules.size(), 0.0);
  for (const Trajectory& u : repaired_samples) {
    for (std::size_t l = 0; l < rules.size(); ++l) {
      if (rules[l].rule->holds(mdp, u)) result.satisfaction_repaired[l] += 1.0;
    }
  }
  for (double& s : result.satisfaction_repaired) {
    s /= static_cast<double>(repaired_samples.size());
  }
  return result;
}

Policy optimal_policy_for_theta(const Mdp& mdp, const StateFeatures& features,
                                std::span<const double> theta,
                                double discount) {
  const Mdp rewarded = with_linear_reward(mdp, features, theta);
  return value_iteration_discounted(rewarded, discount, Objective::kMaximize)
      .policy;
}

QRepairResult reward_repair_q_constraints(
    const Mdp& mdp, const StateFeatures& features,
    std::span<const double> theta,
    const std::vector<QDominanceConstraint>& constraints,
    const QRepairConfig& config) {
  mdp.validate();
  TML_REQUIRE(!constraints.empty(),
              "reward_repair_q_constraints: no constraints given");
  for (const QDominanceConstraint& c : constraints) {
    TML_REQUIRE(c.state < mdp.num_states(),
                "reward_repair_q_constraints: state out of range");
    const std::size_t n = mdp.choices(c.state).size();
    TML_REQUIRE(c.preferred_choice < n && c.dominated_choice < n,
                "reward_repair_q_constraints: choice out of range");
  }

  QRepairResult result;
  result.theta_before.assign(theta.begin(), theta.end());
  result.policy_before =
      optimal_policy_for_theta(mdp, features, theta, config.discount);

  const std::size_t dim = theta.size();

  // Evaluate Q(s, ·) under a candidate Θ' by running VI.
  auto q_table = [&](std::span<const double> candidate) {
    const Mdp rewarded = with_linear_reward(mdp, features, candidate);
    const SolveResult vi = value_iteration_discounted(
        rewarded, config.discount, Objective::kMaximize);
    return q_values_discounted(rewarded, vi.values, config.discount);
  };

  Problem problem;
  problem.dimension = dim;
  const std::vector<double> theta0(theta.begin(), theta.end());
  problem.objective = [theta0](std::span<const double> x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - theta0[i];
      acc += d * d;
    }
    return acc;
  };
  for (const QDominanceConstraint& c : constraints) {
    problem.constraints.push_back(Constraint{
        "Q(s" + std::to_string(c.state) + "," +
            std::to_string(c.preferred_choice) + ") >= Q(s" +
            std::to_string(c.state) + "," +
            std::to_string(c.dominated_choice) + ")",
        [q_table, c](std::span<const double> x) {
          const auto q = q_table(x);
          return q[c.state][c.dominated_choice] + c.margin -
                 q[c.state][c.preferred_choice];
        },
        nullptr /* numeric gradient */});
  }
  problem.box.lower.resize(dim);
  problem.box.upper.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    problem.box.lower[i] = theta0[i] - config.max_weight_change;
    problem.box.upper[i] = theta0[i] + config.max_weight_change;
  }
  for (std::size_t i : config.frozen) {
    TML_REQUIRE(i < dim, "reward_repair_q_constraints: frozen index "
                             << i << " out of range");
    problem.box.lower[i] = theta0[i];
    problem.box.upper[i] = theta0[i];
  }

  SolveOptions solver = config.solver;
  // VI-in-the-loop constraints are noisy for finite differences near policy
  // switches; Nelder–Mead is the robust default unless overridden.
  if (solver.algorithm == Algorithm::kPenalty &&
      config.solver.max_inner_iterations == SolveOptions{}.max_inner_iterations &&
      config.solver.num_starts == SolveOptions{}.num_starts) {
    solver.algorithm = Algorithm::kNelderMead;
    solver.max_inner_iterations = 400;
  }

  // Start from Θ itself in addition to the multi-start driver's points.
  SolveOutcome best = solve_local(problem, theta0, solver);
  const SolveOutcome multi = solve(problem, solver);
  const bool multi_better =
      (multi.status == SolveStatus::kOptimal &&
       (best.status != SolveStatus::kOptimal ||
        multi.objective < best.objective)) ||
      (best.status != SolveStatus::kOptimal &&
       multi.max_violation < best.max_violation);
  if (multi_better) best = multi;

  result.status = best.status;
  result.theta_after = best.x;
  if (best.status == SolveStatus::kOptimal) {
    result.cost = best.objective;
    result.policy_after =
        optimal_policy_for_theta(mdp, features, best.x, config.discount);
    const auto q = q_table(best.x);
    for (const QDominanceConstraint& c : constraints) {
      result.constraint_slack.push_back(q[c.state][c.preferred_choice] -
                                        q[c.state][c.dominated_choice]);
    }
  }
  return result;
}

}  // namespace tml
