// Reward Repair (§IV-C, Definition 2, Equations 16–18, Proposition 4).
//
// Two methods, matching the paper:
//
// 1. Posterior-regularization projection (Prop. 4). The max-ent trajectory
//    distribution P(U|Θ) is projected onto the rule-satisfying subspace:
//
//        Q(U) = (1/Z) · P(U) · exp(−Σ_l λ_l [1 − φ_l(U)])
//
//    — trajectories violating a rule are exponentially down-weighted
//    (probability → 0 as λ → ∞). The repaired reward Θ' is re-estimated
//    from Q by matching its feature expectations (the same fixed point the
//    IRL inner loop solves). We realize E_Q[·] by importance-weighted
//    sampling from P (trajectories drawn from the soft policy, reweighted
//    by the exponential rule factor), following the paper's Gibbs-sampling
//    remark for grounding first-order/temporal rules.
//
// 2. Constrained Q-value repair (the §V-B case-study formulation):
//
//        min ‖Θ' − Θ‖²  s.t.  Q_{Θ'}(s, a_safe) ≥ Q_{Θ'}(s, a_unsafe) + δ
//
//    for a list of state/action dominance constraints, with Q computed by
//    discounted value iteration under Θ'. Solved with the derivative-free
//    NLP path (the Q constraint re-runs VI per evaluation).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/irl/max_ent_irl.hpp"
#include "src/logic/trajectory_rule.hpp"
#include "src/opt/solvers.hpp"

namespace tml {

/// One weighted rule λ_l · φ_l of Eq. 17–18.
struct WeightedRule {
  TrajectoryRulePtr rule;
  double lambda = 10.0;  ///< importance weight; large ⇒ hard constraint
  std::string name;
};

// ---------------------------------------------------------------------------
// Method 1: posterior-regularization projection (Prop. 4).

struct ProjectionConfig {
  std::size_t horizon = 12;       ///< trajectory length for sampling
  std::size_t num_samples = 4000; ///< Monte-Carlo sample size from P(U|Θ)
  IrlOptions refit;               ///< options for re-estimating Θ' from Q
  std::uint64_t seed = 7;
};

struct ProjectionResult {
  std::vector<double> theta_before;
  std::vector<double> theta_after;
  /// Per-rule satisfaction rates E_P[φ_l] (before) and E_Q[φ_l] (after
  /// projection; Eq. 18's target is 1).
  std::vector<double> satisfaction_before;
  std::vector<double> satisfaction_after;
  /// Per-rule satisfaction under trajectories of the *repaired* policy.
  std::vector<double> satisfaction_repaired;
  /// Monte-Carlo estimate of KL(Q ‖ P) (Eq. 17's objective term).
  double kl_divergence = 0.0;
  bool refit_converged = false;
};

/// Projects the trajectory distribution of (mdp, features, theta) onto the
/// rules and re-estimates the reward weights.
ProjectionResult reward_repair_projection(const Mdp& mdp,
                                          const StateFeatures& features,
                                          std::span<const double> theta,
                                          const std::vector<WeightedRule>& rules,
                                          const ProjectionConfig& config = {});

// ---------------------------------------------------------------------------
// Method 2: constrained Q-value repair (§V-B).

/// Dominance constraint Q(state, preferred) >= Q(state, dominated) + margin.
struct QDominanceConstraint {
  StateId state = 0;
  std::uint32_t preferred_choice = 0;
  std::uint32_t dominated_choice = 0;
  double margin = 1e-3;
};

struct QRepairConfig {
  double discount = 0.9;
  /// Bound on each |Θ'_k − Θ_k| (the search box).
  double max_weight_change = 1.0;
  /// Feature indices whose weights must not change (Feas_MR restriction —
  /// §V-B repairs only the distance-to-unsafe weight).
  std::vector<std::size_t> frozen;
  SolveOptions solver;
};

struct QRepairResult {
  SolveStatus status = SolveStatus::kInfeasible;
  std::vector<double> theta_before;
  std::vector<double> theta_after;
  double cost = 0.0;  ///< ‖Θ' − Θ‖²
  Policy policy_before;
  Policy policy_after;
  /// Slack of each constraint at the solution (>= 0 when satisfied).
  std::vector<double> constraint_slack;

  bool feasible() const { return status == SolveStatus::kOptimal; }
};

/// Minimal reward-weight change enforcing the Q dominance constraints.
QRepairResult reward_repair_q_constraints(
    const Mdp& mdp, const StateFeatures& features,
    std::span<const double> theta,
    const std::vector<QDominanceConstraint>& constraints,
    const QRepairConfig& config = {});

/// Helper: optimal policy under Θ (discounted VI) — used by the benches to
/// exhibit the unsafe policy before repair and the safe one after.
Policy optimal_policy_for_theta(const Mdp& mdp, const StateFeatures& features,
                                std::span<const double> theta,
                                double discount);

}  // namespace tml
