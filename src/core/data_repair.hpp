// Data Repair (§IV-B, Definition 3, Equations 7–15).
//
// Machine-teaching formulation: find the smallest data perturbation p
// (keep weights per trajectory group, p_i ∈ [0,1], p_i = 0 meaning drop)
// such that the model re-learned from the perturbed data satisfies φ.
//
// Pipeline (Prop. 3):
//  1. the inner optimization (Eqs. 13–14, regularized ERM) is solved in
//     closed form by weighted maximum likelihood — producing a parametric
//     chain M(p) whose transition probabilities are rational functions of p
//     (src/learn/weighted_mle);
//  2. parametric model checking turns φ into a rational constraint f(p)⋈b;
//  3. the outer optimization (Eq. 15) minimizes the teaching effort
//     E_T = ‖1 − p‖² (weighted by group size) subject to the constraint,
//     via the NLP solver.
//
// Pinned groups (trusted data) keep p = 1 and are excluded from the search.

#pragma once

#include <optional>
#include <string>

#include "src/learn/weighted_mle.hpp"
#include "src/logic/pctl.hpp"
#include "src/opt/solvers.hpp"
#include "src/parametric/state_elimination.hpp"

namespace tml {

struct DataRepairConfig {
  /// Laplace pseudo-count added to every structural transition so MLE
  /// denominators cannot vanish when whole groups are dropped.
  double pseudocount = 1e-3;
  /// Lower bound on keep weights (0 allows fully dropping a group; a small
  /// positive value keeps every group marginally represented).
  double min_keep = 0.0;
  /// Require the property with this slack.
  double constraint_margin = 0.0;
  SolveOptions solver;
  /// Ordering/SCC knobs for the parametric elimination that builds f(p).
  EliminationOptions elimination = default_elimination_options();
};

struct DataRepairResult {
  SolveStatus status = SolveStatus::kInfeasible;
  std::vector<std::string> group_names;   ///< un-pinned groups, in order
  std::vector<double> keep_weights;       ///< optimal p per group
  std::vector<double> drop_fractions;     ///< 1 − p per group
  double effort = 0.0;                    ///< E_T(D, D') at the optimum
  double achieved = 0.0;                  ///< f(p*) — property value
  double bound = 0.0;
  Comparison comparison = Comparison::kLessEqual;
  RationalFunction property_function;     ///< f(p) from parametric checking
  std::string function_text;
  /// Model re-learned from the repaired data (status == kOptimal only).
  std::optional<Dtmc> relearned;
  bool recheck_passed = false;
  double best_violation = 0.0;

  bool feasible() const { return status == SolveStatus::kOptimal; }
};

/// Runs Data Repair for a DTMC structure. The property must be a bounded
/// P[F/U] or R[F] operator (same fragment as Model Repair).
DataRepairResult data_repair(const Dtmc& structure,
                             const TrajectoryDataset& data,
                             const std::vector<RepairGroup>& groups,
                             const StateFormula& property,
                             const DataRepairConfig& config = {});

}  // namespace tml
