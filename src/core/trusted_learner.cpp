#include "src/core/trusted_learner.hpp"

#include <iostream>

#include "src/checker/check.hpp"
#include "src/common/stats.hpp"
#include "src/learn/mle.hpp"

namespace tml {

namespace {

/// Emits the end-of-run stats digest once per trusted_learn() call — on every
/// return path — so pipelines always see which engines ran and how hard.
struct StatsDigest {
  ~StatsDigest() {
    if (!stats::enabled()) return;
    const std::string text = stats::summary();
    if (!text.empty()) {
      std::clog << "[tml stats]\n" << text << std::flush;
    }
  }
};

}  // namespace

std::string to_string(TmlStage stage) {
  switch (stage) {
    case TmlStage::kLearnedModelSatisfies: return "learned-model-satisfies";
    case TmlStage::kModelRepair: return "model-repair";
    case TmlStage::kDataRepair: return "data-repair";
    case TmlStage::kUnsatisfiable: return "unsatisfiable";
  }
  return "?";
}

TrustedLearnerReport trusted_learn(const Dtmc& structure,
                                   const TrajectoryDataset& data,
                                   const StateFormula& property,
                                   const TrustedLearnerConfig& config) {
  TML_REQUIRE(property.kind() == StateFormula::Kind::kProb ||
                  property.kind() == StateFormula::Kind::kReward,
              "trusted_learn: property must be a bounded P or R operator");
  static stats::Timer& t_run = stats::timer("core.trusted_learn.time");
  static stats::Counter& c_runs = stats::counter("core.trusted_learn.runs");
  // The digest is constructed before the timer span so it is destroyed after
  // it — the printed summary then includes this run's own elapsed time.
  const StatsDigest digest;
  const stats::ScopedTimer span(t_run);
  c_runs.bump();

  TrustedLearnerReport report;

  // Step 1: learn.
  report.learned = mle_dtmc(structure, data, config.mle_pseudocount);

  // Step 2: verify.
  const CheckResult initial = check(report.learned, property);
  report.learned_satisfies = initial.satisfied;
  report.learned_value = initial.value;
  if (initial.satisfied) {
    report.stage = TmlStage::kLearnedModelSatisfies;
    report.trusted = report.learned;
    report.trusted_satisfies = true;
    return report;
  }

  // Step 3: Model Repair.
  if (config.perturbation) {
    const PerturbationScheme scheme = config.perturbation(report.learned);
    ModelRepairConfig stage_config = config.model_repair;
    if (stage_config.solver.threads == 0) {
      stage_config.solver.threads = config.threads;
    }
    report.model_repair = model_repair(scheme, property, stage_config);
    if (report.model_repair->feasible() &&
        report.model_repair->recheck_passed) {
      report.stage = TmlStage::kModelRepair;
      report.trusted = report.model_repair->repaired;
      report.trusted_satisfies = true;
      return report;
    }
  }

  // Step 4: Data Repair.
  if (!config.groups.empty()) {
    DataRepairConfig stage_config = config.data_repair;
    if (stage_config.solver.threads == 0) {
      stage_config.solver.threads = config.threads;
    }
    report.data_repair = data_repair(structure, data, config.groups, property,
                                     stage_config);
    if (report.data_repair->feasible() && report.data_repair->recheck_passed) {
      report.stage = TmlStage::kDataRepair;
      report.trusted = report.data_repair->relearned;
      report.trusted_satisfies = true;
      return report;
    }
  }

  report.stage = TmlStage::kUnsatisfiable;
  return report;
}

}  // namespace tml
