#include "src/core/trusted_learner.hpp"

#include <iostream>

#include "src/checker/check.hpp"
#include "src/common/stats.hpp"
#include "src/learn/mle.hpp"

namespace tml {

namespace {

/// Emits the end-of-run stats digest once per trusted_learn() call — on every
/// return path — so pipelines always see which engines ran and how hard.
struct StatsDigest {
  ~StatsDigest() {
    if (!stats::enabled()) return;
    const std::string text = stats::summary();
    if (!text.empty()) {
      std::clog << "[tml stats]\n" << text << std::flush;
    }
  }
};

/// Resolves the budget a stage runs under: an explicit per-stage override
/// wins, then a budget already set on the stage's own solver options, then
/// the pipeline-wide budget.
Budget resolve_stage_budget(const std::optional<Budget>& per_stage,
                            const Budget& stage_solver_budget,
                            const Budget& overall) {
  if (per_stage.has_value()) return *per_stage;
  if (!stage_solver_budget.unlimited()) return stage_solver_budget;
  return overall;
}

}  // namespace

std::string to_string(TmlStage stage) {
  switch (stage) {
    case TmlStage::kLearnedModelSatisfies: return "learned-model-satisfies";
    case TmlStage::kModelRepair: return "model-repair";
    case TmlStage::kDataRepair: return "data-repair";
    case TmlStage::kUnsatisfiable: return "unsatisfiable";
  }
  return "?";
}

TrustedLearnerReport trusted_learn(const Dtmc& structure,
                                   const TrajectoryDataset& data,
                                   const StateFormula& property,
                                   const TrustedLearnerConfig& config) {
  TML_REQUIRE(property.kind() == StateFormula::Kind::kProb ||
                  property.kind() == StateFormula::Kind::kReward,
              "trusted_learn: property must be a bounded P or R operator");
  static stats::Timer& t_run = stats::timer("core.trusted_learn.time");
  static stats::Counter& c_runs = stats::counter("core.trusted_learn.runs");
  // The digest is constructed before the timer span so it is destroyed after
  // it — the printed summary then includes this run's own elapsed time.
  const StatsDigest digest;
  const stats::ScopedTimer span(t_run);
  c_runs.bump();

  TrustedLearnerReport report;

  // Step 1: learn.  Step 2: verify.  The initial learn+verify runs under the
  // pipeline budget; if even that is cut short there is nothing to salvage,
  // so BudgetExhausted propagates to the caller after being recorded.
  {
    TmlStageReport stage_report;
    stage_report.stage = TmlStage::kLearnedModelSatisfies;
    stage_report.ran = true;
    try {
      report.learned = mle_dtmc(structure, data, config.mle_pseudocount);
      const CheckResult initial = check(report.learned, property);
      report.learned_satisfies = initial.satisfied;
      report.learned_value = initial.value;
      stage_report.note = initial.satisfied ? "satisfied" : "violated";
      report.stages.push_back(std::move(stage_report));
    } catch (const BudgetExhausted& e) {
      stage_report.budget_status = BudgetStatus::kBudgetExhausted;
      stage_report.note = e.what();
      report.stages.push_back(std::move(stage_report));
      throw;
    }
    if (report.learned_satisfies) {
      report.stage = TmlStage::kLearnedModelSatisfies;
      report.trusted = report.learned;
      report.trusted_satisfies = true;
      return report;
    }
  }

  // Step 3: Model Repair. A stage that exhausts its budget mid-flight (the
  // NLP returns a flagged partial that fails the recheck, or an inner engine
  // throws BudgetExhausted) is recorded and the pipeline degrades to the
  // next stage instead of aborting.
  if (config.perturbation) {
    TmlStageReport stage_report;
    stage_report.stage = TmlStage::kModelRepair;
    stage_report.ran = true;
    const PerturbationScheme scheme = config.perturbation(report.learned);
    ModelRepairConfig stage_config = config.model_repair;
    if (stage_config.solver.threads == 0) {
      stage_config.solver.threads = config.threads;
    }
    stage_config.solver.budget = resolve_stage_budget(
        config.model_repair_budget, config.model_repair.solver.budget,
        config.budget);
    try {
      report.model_repair = model_repair(scheme, property, stage_config);
      stage_report.note =
          report.model_repair->feasible() ? "feasible" : "infeasible";
      report.stages.push_back(std::move(stage_report));
      if (report.model_repair->feasible() &&
          report.model_repair->recheck_passed) {
        report.stage = TmlStage::kModelRepair;
        report.trusted = report.model_repair->repaired;
        report.trusted_satisfies = true;
        return report;
      }
    } catch (const BudgetExhausted& e) {
      stage_report.budget_status = BudgetStatus::kBudgetExhausted;
      stage_report.note = e.what();
      report.stages.push_back(std::move(stage_report));
    }
  }

  // Step 4: Data Repair.
  if (!config.groups.empty()) {
    TmlStageReport stage_report;
    stage_report.stage = TmlStage::kDataRepair;
    stage_report.ran = true;
    DataRepairConfig stage_config = config.data_repair;
    if (stage_config.solver.threads == 0) {
      stage_config.solver.threads = config.threads;
    }
    stage_config.solver.budget = resolve_stage_budget(
        config.data_repair_budget, config.data_repair.solver.budget,
        config.budget);
    try {
      report.data_repair = data_repair(structure, data, config.groups,
                                       property, stage_config);
      stage_report.note =
          report.data_repair->feasible() ? "feasible" : "infeasible";
      report.stages.push_back(std::move(stage_report));
      if (report.data_repair->feasible() &&
          report.data_repair->recheck_passed) {
        report.stage = TmlStage::kDataRepair;
        report.trusted = report.data_repair->relearned;
        report.trusted_satisfies = true;
        return report;
      }
    } catch (const BudgetExhausted& e) {
      stage_report.budget_status = BudgetStatus::kBudgetExhausted;
      stage_report.note = e.what();
      report.stages.push_back(std::move(stage_report));
    }
  }

  report.stage = TmlStage::kUnsatisfiable;
  return report;
}

}  // namespace tml
