// Streaming repair sessions: learn → certify → repair, one batch at a time.
//
// A RepairSession keeps a PCTL safety property φ certified over a chain
// that is re-learned as trajectory batches arrive (the streaming version of
// the paper's learn-then-repair loop, §II/§IV-A). Each feed(batch):
//
//   1. folds the batch into a persistent count table (IncrementalMle — each
//      batch costs O(batch), not O(history)) and re-estimates the chain;
//   2. delta-patches the cached compiled model in place
//      (patch_probabilities): Laplace smoothing keeps the support stable,
//      so almost every batch is a probability rewrite, not a recompile;
//   3. re-certifies φ with the sound interval engine, warm-started from the
//      previous batch's certified bracket (only SCC blocks containing
//      changed states re-sweep; the bracket stays certified — see
//      WarmStart in src/mdp/solver.hpp);
//   4. only if the certified verdict is "violated", runs Model Repair,
//      warm-starting the NLP from the previous batch's repaired point, and
//      re-certifies the repaired chain (warm again, with the seed widened
//      by the scheme's Proposition 1 perturbation bound).
//
// Every step shares one session Budget: each batch runs under an even
// split of what remains (Budget::split), so a slow batch degrades
// gracefully instead of starving the rest of the stream.
//
// Scope: DTMC structures and unbounded probabilistic properties
// P⋈b[F φ_t] / P⋈b[φ_1 U φ_2] with label-defined operand sets — the same
// fragment Model Repair solves in closed form, which is what makes the
// repair step well-defined.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/budget.hpp"
#include "src/core/model_repair.hpp"
#include "src/core/session_journal.hpp"
#include "src/learn/mle.hpp"
#include "src/logic/pctl.hpp"
#include "src/mdp/compiled.hpp"
#include "src/mdp/solver.hpp"
#include "src/mdp/trajectory.hpp"

namespace tml {

struct RepairSessionConfig {
  /// Laplace pseudocount for the streaming MLE. Must be positive: zero
  /// smoothing lets unobserved structural transitions estimate to 0, which
  /// changes the support and forfeits both the delta patch and the warm
  /// start (see IncrementalMle).
  double pseudocount = 1.0;
  /// Builds the feasible repair class Feas_MP on the current learned chain
  /// (same role as in mdp_model_repair). Required if repairs may run; a
  /// session without it only certifies and reports violations.
  std::function<PerturbationScheme(const Dtmc&)> scheme_for;
  /// NLP / parametric configuration for the repair step. The per-batch
  /// budget overrides `repair.solver.budget` and the elimination budget.
  ModelRepairConfig repair;
  /// Certification bracket tolerance (interval engine).
  double tolerance = 1e-6;
  /// Warm-seed widening = widen_scale × (per-state probability perturbation
  /// bound of the update: PatchResult::max_abs_delta for a learning step,
  /// PerturbationScheme::max_perturbation for a repair step). Purely a
  /// seed-quality heuristic — the solver certifies every seed before use,
  /// so soundness never depends on this value. Negative = cold-seed mode
  /// (bitwise identical to a cold solve, still skips unaffected blocks).
  double widen_scale = 4.0;
  /// Session-wide resource budget. Each feed() runs under
  /// `budget.split(remaining batches)` (see expected_batches); the deadline
  /// is absolute and the cancel token is shared, so cancelling the session
  /// stops the current batch too.
  Budget budget = default_budget();
  /// Expected number of batches, used to split the session budget evenly.
  /// 0 = unknown: each batch may use everything that remains.
  std::size_t expected_batches = 0;
  /// Worker threads for the certification sweeps (0 = TML_THREADS).
  std::size_t threads = 0;
  /// Durable write-ahead journal path (src/core/session_journal.hpp).
  /// Empty = volatile session. When set, every feed() appends the batch to
  /// the journal (fsync'd) BEFORE processing it, and every
  /// `checkpoint_every` batches appends a full-state checkpoint, so a
  /// killed process can RepairSession::resume() and replay to a
  /// byte-identical SessionReport.
  std::string journal_path;
  /// fsync every journal record (durable against power loss, not just
  /// process death). Tests that only need kill-resume determinism can turn
  /// it off for speed.
  bool journal_fsync = true;
  /// Checkpoint cadence in batches; 0 = never checkpoint (resume then
  /// replays every journaled batch from scratch).
  std::size_t checkpoint_every = 8;
};

/// Outcome of one feed() call.
struct BatchOutcome {
  std::size_t index = 0;         ///< 0-based batch number
  std::size_t trajectories = 0;  ///< trajectories in this batch
  /// Delta-compile result for the learning step: true = in-place patch,
  /// false = structural change forced a full recompile (cold certify).
  bool patched = false;
  std::size_t dirty_states = 0;  ///< states whose distribution changed
  double max_abs_delta = 0.0;    ///< largest per-transition |Δp|
  /// Certified bracket of the property value at the initial state for the
  /// batch's FINAL chain (post-repair when a repair ran).
  double lo = 0.0;
  double hi = 0.0;
  /// Certified verdict of the LEARNED chain (pre-repair). `violated` is
  /// conservative: true also when the bracket straddles the bound.
  bool violated = false;
  bool repaired = false;          ///< a repair step ran
  bool repair_feasible = false;   ///< ...and produced a satisfying chain
  double repair_cost = 0.0;       ///< g(Z) at the repaired point
  double epsilon_bisimilarity = 0.0;  ///< Prop. 1 bound of the repair
  std::size_t sweeps = 0;         ///< interval sweeps spent certifying
  BudgetStatus budget_status = BudgetStatus::kOk;
  BudgetStop budget_stop = BudgetStop::kNone;
};

struct SessionReport {
  std::vector<BatchOutcome> batches;
  std::size_t repairs = 0;        ///< batches that triggered a repair
  std::size_t patch_hits = 0;     ///< batches absorbed by the delta patch
  /// φ certified on the session's final chain (last batch's verdict).
  bool final_satisfied = false;
};

class RepairSession {
 public:
  /// `structure` fixes the states, the support, and the labels; `property`
  /// must be an unbounded P⋈b[F/U] formula over the structure's labels
  /// (throws ModelError otherwise).
  RepairSession(Dtmc structure, StateFormulaPtr property,
                RepairSessionConfig config);

  /// Reopens a journaled session after a crash. `config.journal_path` must
  /// name the journal of a previous session run with the SAME structure,
  /// property and config (the caller's contract; shape mismatches against
  /// the structure are caught, semantic drift is not). Restores the latest
  /// checkpoint, deterministically re-feeds the batches journaled after
  /// it, and reopens the journal for appending, so the resumed session's
  /// encode_session_report(report()) is byte-identical to an uninterrupted
  /// run's (modulo wall-clock budget deadlines — use unlimited or
  /// iteration-capped budgets for bitwise replay). A torn/corrupt tail
  /// record — the append a crash interrupted — is dropped with a warning
  /// (journal_warning()); its batch was never processed, so the caller
  /// re-feeds it from the source (see fed_batches()).
  static RepairSession resume(Dtmc structure, StateFormulaPtr property,
                              RepairSessionConfig config);

  /// Processes one batch (learn → certify → repair if violated) and returns
  /// its outcome (also appended to report()). Journaled sessions append
  /// the batch record before any processing (write-ahead).
  const BatchOutcome& feed(const TrajectoryDataset& batch);

  const SessionReport& report() const { return report_; }
  /// The session's current chain: the last learned estimate, with the last
  /// repair applied when one ran.
  const Dtmc& current() const { return current_; }
  const IncrementalMle& learner() const { return mle_; }

  /// Batches fed so far (== report().batches.size()). After resume(), the
  /// count recovered from the journal: callers streaming from a source
  /// skip this many leading batches and feed the rest.
  std::size_t fed_batches() const { return report_.batches.size(); }
  /// Batches recovered by resume() (0 for a fresh session).
  std::size_t resumed_batches() const { return resumed_batches_; }
  /// True when resume() dropped a torn/corrupt journal tail.
  bool journal_tail_dropped() const { return journal_tail_dropped_; }
  /// What resume() dropped, human-readable (empty when the tail was clean).
  const std::string& journal_warning() const { return journal_warning_; }

 private:
  /// Per-batch budget share (even split of what remains of the session
  /// budget over the batches still expected).
  Budget batch_budget() const;
  /// Certifies φ on `chain` via patch + warm interval solve; updates the
  /// cached compiled model and the warm seed. `perturbation_bound` feeds
  /// the seed widening.
  SolveResult certify(const Dtmc& chain, double perturbation_bound,
                      const Budget& budget, BatchOutcome& outcome,
                      bool record_patch);
  /// Appends a kCheckpoint record when the cadence is due.
  void maybe_checkpoint();
  /// Full-state snapshot: MLE counts, current chain rows, report, warm
  /// bracket, last repair point. Bitwise round trip.
  std::string encode_checkpoint() const;
  void restore_checkpoint(const std::string& payload);

  Dtmc structure_;
  StateFormulaPtr property_;
  RepairSessionConfig config_;
  IncrementalMle mle_;
  Dtmc current_;

  // Property decomposition (fixed for the session: labels never change).
  StateSet goal_;
  StateSet stay_;  ///< all-true for F properties

  // Cached compiled form of the absorbed current chain, patched in place,
  // plus the previous certified bracket that seeds the next solve.
  std::optional<CompiledModel> compiled_;
  WarmStart warm_;
  bool has_warm_ = false;

  std::optional<std::vector<double>> last_repair_point_;
  SessionReport report_;

  // Durable-session state (null/false for volatile sessions).
  std::unique_ptr<SessionJournal> journal_;
  bool replaying_ = false;  ///< resume() re-feed in progress: no journaling
  std::size_t resumed_batches_ = 0;
  bool journal_tail_dropped_ = false;
  std::string journal_warning_;
};

/// Bitwise-stable binary encoding of a SessionReport: two runs produced
/// the identical report iff the encodings compare equal byte-for-byte
/// (doubles are raw IEEE-754 bit patterns). The comparison key of the
/// crash-replay tests, and the report codec inside journal checkpoints.
std::string encode_session_report(const SessionReport& report);
SessionReport decode_session_report(const std::string& payload);

/// Journal payload codec for trajectory batches (kBatch records).
/// decode(encode(b)) reproduces the dataset exactly, weights included.
std::string encode_batch(const TrajectoryDataset& batch);
TrajectoryDataset decode_batch(const std::string& payload);

}  // namespace tml
