// Sensitivity analysis and localized Model Repair.
//
// The paper's future work calls for "more scalable repair algorithms,
// e.g., using efficient localized changes". This module implements that
// idea on top of the parametric engine:
//
//  * `sensitivity_analysis` differentiates the parametric property
//    function f(v) at the nominal point v = 0 and ranks the repair
//    variables by how strongly they move the property per unit of
//    perturbation — which controllable transition matters most;
//  * `localized_model_repair` freezes all but the top-k most sensitive
//    variables and solves the reduced NLP. For repair problems with many
//    controllable transitions this shrinks both the symbolic gradient work
//    and the search dimension, at the cost of a (reported) optimality gap
//    versus the full repair.

#pragma once

#include <string>
#include <vector>

#include "src/core/model_repair.hpp"

namespace tml {

/// Per-variable sensitivity of the property function at the nominal model.
struct VariableSensitivity {
  Var variable;
  std::string name;
  double derivative = 0.0;  ///< ∂f/∂v at v = 0
  /// |derivative| · usable range — first-order bound on how much this
  /// variable alone can move the property inside its box.
  double leverage = 0.0;
};

/// Result of the analysis; entries sorted by descending leverage.
struct SensitivityReport {
  double nominal_value = 0.0;  ///< f(0) — the unrepaired property value
  std::vector<VariableSensitivity> variables;
  std::string function_text;
};

/// Differentiates the parametric property function of (scheme, property).
SensitivityReport sensitivity_analysis(const PerturbationScheme& scheme,
                                       const StateFormula& property,
                                       const ModelRepairConfig& config = {});

/// Repairs using only the `top_k` most sensitive variables (the rest are
/// pinned to 0). Returns the usual ModelRepairResult over the FULL
/// variable vector (frozen entries are 0), plus which variables were kept.
struct LocalizedRepairResult {
  ModelRepairResult repair;
  std::vector<std::string> active_variables;
  SensitivityReport sensitivity;
};

LocalizedRepairResult localized_model_repair(
    const PerturbationScheme& scheme, const StateFormula& property,
    std::size_t top_k, const ModelRepairConfig& config = {});

}  // namespace tml
