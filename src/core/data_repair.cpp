#include "src/core/data_repair.hpp"

#include <cmath>

#include "src/checker/check.hpp"
#include "src/core/model_repair.hpp"
#include "src/learn/mle.hpp"

namespace tml {

DataRepairResult data_repair(const Dtmc& structure,
                             const TrajectoryDataset& data,
                             const std::vector<RepairGroup>& groups,
                             const StateFormula& property,
                             const DataRepairConfig& config) {
  TML_REQUIRE(property.kind() == StateFormula::Kind::kProb ||
                  property.kind() == StateFormula::Kind::kReward,
              "data_repair: property must be a bounded P or R operator");
  TML_REQUIRE(config.min_keep >= 0.0 && config.min_keep < 1.0,
              "data_repair: min_keep must be in [0,1)");

  DataRepairResult result;
  result.comparison = property.comparison();
  result.bound = property.bound();

  // Inner optimization: weighted MLE → parametric chain M(p).
  const WeightedMleResult mle =
      weighted_mle_dtmc(structure, data, groups, config.pseudocount);
  result.function_text.clear();
  for (const std::string& name : mle.variable_names) {
    result.group_names.push_back(name);
  }
  const std::size_t dim = mle.variables.size();
  TML_REQUIRE(dim > 0, "data_repair: no un-pinned groups to repair");

  // Parametric property function f(p).
  result.property_function = parametric_property_function(
      mle.chain, structure, property, config.elimination);
  result.function_text =
      result.property_function.to_string(mle.chain.pool().namer());

  // Effort weights: group size (number of member trajectories, respecting
  // dataset multiplicities) — dropping a large group costs more. Each
  // group also carries its effort-free target weight (1 for real data,
  // typically 0 for synthetic augmentation groups) and its weight box.
  std::vector<double> effort_weight;
  std::vector<double> target_weight;
  std::vector<double> lower_box;
  std::vector<double> upper_box;
  for (const RepairGroup& g : groups) {
    if (g.pinned) continue;
    TML_REQUIRE(g.max_weight > 0.0,
                "data_repair: group " << g.name << " has empty weight box");
    TML_REQUIRE(g.target_weight >= 0.0 && g.target_weight <= g.max_weight,
                "data_repair: group " << g.name
                    << " target weight outside its box");
    double w = 0.0;
    for (std::size_t i : g.members) w += data.weight(i);
    effort_weight.push_back(std::max(w, 1.0));
    target_weight.push_back(g.target_weight);
    lower_box.push_back(g.target_weight == 0.0 ? 0.0 : config.min_keep);
    upper_box.push_back(g.max_weight);
  }
  TML_REQUIRE(effort_weight.size() == dim,
              "data_repair: group bookkeeping mismatch");

  std::vector<RationalFunction> derivatives;
  derivatives.reserve(dim);
  for (Var v : mle.variables) {
    derivatives.push_back(result.property_function.derivative(v));
  }

  const RationalFunction& f = result.property_function;
  const Comparison cmp = property.comparison();
  const double bound = property.bound();
  // Require at least the solver's feasibility slack so the independent
  // numeric recheck passes at the constraint boundary.
  const double margin =
      std::max(config.constraint_margin,
               10.0 * config.solver.feasibility_tol * (1.0 + std::abs(bound)));
  const bool upper = cmp == Comparison::kLess || cmp == Comparison::kLessEqual;

  Problem problem;
  problem.dimension = dim;
  problem.objective = [effort_weight,
                       target_weight](std::span<const double> p) {
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double d = target_weight[i] - p[i];
      acc += effort_weight[i] * d * d;
    }
    return acc;
  };
  problem.objective_gradient = [effort_weight, target_weight](
                                   std::span<const double> p) {
    std::vector<double> g(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      g[i] = -2.0 * effort_weight[i] * (target_weight[i] - p[i]);
    }
    return g;
  };
  problem.constraints.push_back(Constraint{
      property.to_string(),
      [&f, bound, margin, upper](std::span<const double> p) {
        const double value = f.evaluate(p);
        return upper ? value - (bound - margin) : (bound + margin) - value;
      },
      [&derivatives, upper](std::span<const double> p) {
        std::vector<double> g(derivatives.size());
        for (std::size_t i = 0; i < derivatives.size(); ++i) {
          const double d = derivatives[i].evaluate(p);
          g[i] = upper ? d : -d;
        }
        return g;
      }});
  problem.box.lower = lower_box;
  problem.box.upper = upper_box;

  const SolveOutcome outcome = solve(problem, config.solver);
  result.status = outcome.status;
  result.keep_weights = outcome.x;
  result.best_violation = outcome.max_violation;
  result.drop_fractions.clear();
  for (double p : outcome.x) result.drop_fractions.push_back(1.0 - p);
  if (!outcome.x.empty()) {
    result.achieved = f.evaluate(outcome.x);
    // Judge feasibility against the actual bound, not the margined
    // surrogate (see model_repair.cpp).
    if (compare(result.achieved, cmp, bound)) {
      result.status = SolveStatus::kOptimal;
    } else if (result.status == SolveStatus::kOptimal) {
      result.status = SolveStatus::kInfeasible;
    }
  }
  if (result.status == SolveStatus::kOptimal) {
    result.effort = problem.objective(outcome.x);
    // Re-learn from the repaired data with concrete weights and re-check
    // numerically (independent certificate).
    result.relearned = mle.chain.instantiate(outcome.x);
    result.recheck_passed = check(*result.relearned, property).satisfied;
  }
  return result;
}

}  // namespace tml
