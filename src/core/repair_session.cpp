#include "src/core/repair_session.hpp"

#include <algorithm>
#include <cmath>

#include "src/checker/check.hpp"
#include "src/checker/reachability.hpp"
#include "src/common/stats.hpp"

namespace tml {

namespace {

/// φ1 U φ2 restricted to plain reachability at the chain level: escape
/// states (¬φ1 ∧ ¬φ2) become absorbing self-loops. Applied identically
/// every batch, so the absorbed chains of successive estimates still differ
/// only in probabilities — the delta patch keeps working.
Dtmc absorb_for_until(const Dtmc& chain, const StateSet& stay,
                      const StateSet& goal) {
  Dtmc out = chain;
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!stay[s] && !goal[s]) {
      out.set_transitions(s, {Transition{s, 1.0}});
    }
  }
  return out;
}

}  // namespace

RepairSession::RepairSession(Dtmc structure, StateFormulaPtr property,
                             RepairSessionConfig config)
    : structure_(std::move(structure)),
      property_(std::move(property)),
      config_(std::move(config)),
      mle_(structure_),
      current_(structure_) {
  structure_.validate();
  TML_REQUIRE(property_ != nullptr, "RepairSession: property is null");
  TML_REQUIRE(config_.pseudocount > 0.0,
              "RepairSession: pseudocount must be positive — zero smoothing "
              "can estimate unobserved structural transitions to 0, which "
              "changes the support and breaks the streaming contract");
  TML_REQUIRE(property_->kind() == StateFormula::Kind::kProb,
              "RepairSession: property must be a bounded P operator, got "
                  << property_->to_string());
  const PathFormula& path = property_->path();
  TML_REQUIRE(path.kind() == PathFormula::Kind::kEventually ||
                  path.kind() == PathFormula::Kind::kUntil,
              "RepairSession: only F / U path formulas are supported, got "
                  << path.to_string());
  TML_REQUIRE(!path.step_bound(),
              "RepairSession: step-bounded properties are not supported — "
              "the certified-bracket warm start applies to the unbounded "
              "fixpoint engines");
  // Operand sets are fixed for the whole session: they are label-defined on
  // the structure, and neither learning nor repair touches labels.
  goal_ = satisfying_states(structure_, path.right());
  stay_ = path.kind() == PathFormula::Kind::kUntil
              ? satisfying_states(structure_, path.left())
              : StateSet(structure_.num_states(), true);
}

Budget RepairSession::batch_budget() const {
  const std::size_t fed = report_.batches.size();
  const std::size_t remaining =
      config_.expected_batches > fed ? config_.expected_batches - fed : 1;
  return config_.budget.split(remaining);
}

SolveResult RepairSession::certify(const Dtmc& chain,
                                   double perturbation_bound,
                                   const Budget& budget, BatchOutcome& outcome,
                                   bool record_patch) {
  const Dtmc absorbed = absorb_for_until(chain, stay_, goal_);

  double patch_delta = 0.0;
  StateSet dirty;
  bool patched = false;
  if (!compiled_.has_value()) {
    compiled_ = compile(absorbed);
    has_warm_ = false;
  } else {
    const PatchResult patch = patch_probabilities(*compiled_, absorbed);
    if (patch.patched) {
      patched = true;
      patch_delta = patch.max_abs_delta;
      dirty = patch.dirty;
    } else {
      // Structural change (should not happen with positive smoothing, but
      // degrade gracefully): recompile cold and drop the stale seed.
      compiled_ = compile(absorbed);
      has_warm_ = false;
    }
  }
  if (record_patch) {
    outcome.patched = patched;
    outcome.dirty_states = patched ? count(dirty) : compiled_->num_states();
    outcome.max_abs_delta = patch_delta;
  }

  SolverOptions options;
  options.method = SolveMethod::kIntervalTopological;
  options.tolerance = config_.tolerance;
  options.threads = config_.threads;
  options.budget = budget;
  WarmStart seed;
  if (has_warm_ && patched) {
    seed = warm_;
    seed.dirty = dirty;
    const double bound = std::max(perturbation_bound, patch_delta);
    seed.widen = config_.widen_scale < 0.0
                     ? -1.0
                     : std::min(1.0, config_.widen_scale * bound);
    options.warm = &seed;
  }

  SolveResult result = mdp_reachability_bracket(*compiled_, goal_,
                                                Objective::kMaximize, options);

  warm_.values = result.values;
  warm_.lo = result.lo;
  warm_.hi = result.hi;
  warm_.zero = result.zero;
  warm_.one = result.one;
  warm_.dirty = StateSet{};
  has_warm_ = true;

  outcome.sweeps += result.iterations;
  if (result.budget_status == BudgetStatus::kBudgetExhausted) {
    outcome.budget_status = BudgetStatus::kBudgetExhausted;
    if (outcome.budget_stop == BudgetStop::kNone) {
      outcome.budget_stop = result.budget_stop;
    }
  }
  return result;
}

const BatchOutcome& RepairSession::feed(const TrajectoryDataset& batch) {
  static stats::Counter& c_batches = stats::counter("core.session.batches");
  static stats::Counter& c_repairs = stats::counter("core.session.repairs");
  static stats::Timer& t_batch = stats::timer("core.session.batch.time");
  const stats::ScopedTimer span(t_batch);
  c_batches.bump();

  BatchOutcome outcome;
  outcome.index = report_.batches.size();
  outcome.trajectories = batch.size();

  const Budget share = batch_budget();

  // 1. Learn: fold the batch into the running counts, re-estimate.
  mle_.add(batch);
  const Dtmc learned = mle_.dtmc(config_.pseudocount);
  current_ = learned;

  // 2. Certify the learned chain (warm bracket; only changed SCC blocks
  //    re-sweep).
  const StateId init = current_.initial_state();
  const Comparison cmp = property_->comparison();
  const double bound = property_->bound();
  SolveResult certified = certify(learned, 0.0, share, outcome, true);
  outcome.lo = certified.lo[init];
  outcome.hi = certified.hi[init];
  // Certified satisfaction needs BOTH bracket ends on the right side of the
  // bound; a straddling bracket (or an exhausted budget's wide bracket)
  // conservatively counts as violated.
  bool satisfied = compare(certified.lo[init], cmp, bound) &&
                   compare(certified.hi[init], cmp, bound);
  outcome.violated = !satisfied;

  // 3. Repair only if the certified verdict failed.
  if (outcome.violated && config_.scheme_for) {
    c_repairs.bump();
    ++report_.repairs;
    outcome.repaired = true;

    const PerturbationScheme scheme = config_.scheme_for(learned);
    ModelRepairConfig repair_config = config_.repair;
    Budget repair_share = share;  // same absolute deadline as the certify
    repair_config.solver.budget = repair_share;
    repair_config.elimination.budget = &repair_share;
    // NLP warm start: the previous batch's repaired point. Probabilities
    // drift a little per batch, so the previous optimum is typically
    // near-feasible and converges in a handful of inner iterations.
    if (last_repair_point_.has_value() &&
        last_repair_point_->size() == scheme.num_variables()) {
      repair_config.solver.warm_starts.push_back(*last_repair_point_);
    }

    const ModelRepairResult repair =
        model_repair(scheme, *property_, repair_config);
    outcome.repair_feasible = repair.feasible();
    if (repair.feasible() && repair.repaired.has_value()) {
      outcome.repair_cost = repair.cost;
      outcome.epsilon_bisimilarity = repair.epsilon_bisimilarity;
      last_repair_point_ = repair.variable_values;
      current_ = *repair.repaired;
      // Re-certify the repaired chain, warm from the pre-repair bracket,
      // widened by the scheme's Proposition 1 perturbation bound.
      SolveResult recheck =
          certify(current_, scheme.max_perturbation(repair.variable_values),
                  share, outcome, /*record_patch=*/false);
      outcome.lo = recheck.lo[init];
      outcome.hi = recheck.hi[init];
      satisfied = compare(recheck.lo[init], cmp, bound) &&
                  compare(recheck.hi[init], cmp, bound);
    }
  }

  if (outcome.patched) ++report_.patch_hits;
  report_.final_satisfied = satisfied;
  report_.batches.push_back(outcome);
  return report_.batches.back();
}

}  // namespace tml
