#include "src/core/repair_session.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/checker/check.hpp"
#include "src/checker/reachability.hpp"
#include "src/common/stats.hpp"

namespace tml {

namespace {

/// φ1 U φ2 restricted to plain reachability at the chain level: escape
/// states (¬φ1 ∧ ¬φ2) become absorbing self-loops. Applied identically
/// every batch, so the absorbed chains of successive estimates still differ
/// only in probabilities — the delta patch keeps working.
Dtmc absorb_for_until(const Dtmc& chain, const StateSet& stay,
                      const StateSet& goal) {
  Dtmc out = chain;
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!stay[s] && !goal[s]) {
      out.set_transitions(s, {Transition{s, 1.0}});
    }
  }
  return out;
}

// -- journal payload codecs --------------------------------------------------
//
// Every scalar goes through journal_io (little-endian fixed width, doubles
// as raw IEEE-754 bits), so encode/decode round trips are bitwise exact —
// the property that upgrades "resume replays the session" to "resume
// replays to the byte-identical report".

void put_outcome(std::string& out, const BatchOutcome& o) {
  journal_io::put_u64(out, o.index);
  journal_io::put_u64(out, o.trajectories);
  journal_io::put_u8(out, o.patched ? 1 : 0);
  journal_io::put_u64(out, o.dirty_states);
  journal_io::put_f64(out, o.max_abs_delta);
  journal_io::put_f64(out, o.lo);
  journal_io::put_f64(out, o.hi);
  journal_io::put_u8(out, o.violated ? 1 : 0);
  journal_io::put_u8(out, o.repaired ? 1 : 0);
  journal_io::put_u8(out, o.repair_feasible ? 1 : 0);
  journal_io::put_f64(out, o.repair_cost);
  journal_io::put_f64(out, o.epsilon_bisimilarity);
  journal_io::put_u64(out, o.sweeps);
  journal_io::put_u8(out, static_cast<std::uint8_t>(o.budget_status));
  journal_io::put_u8(out, static_cast<std::uint8_t>(o.budget_stop));
}

BatchOutcome read_outcome(journal_io::Reader& r) {
  BatchOutcome o;
  o.index = r.u64();
  o.trajectories = r.u64();
  o.patched = r.u8() != 0;
  o.dirty_states = r.u64();
  o.max_abs_delta = r.f64();
  o.lo = r.f64();
  o.hi = r.f64();
  o.violated = r.u8() != 0;
  o.repaired = r.u8() != 0;
  o.repair_feasible = r.u8() != 0;
  o.repair_cost = r.f64();
  o.epsilon_bisimilarity = r.f64();
  o.sweeps = r.u64();
  o.budget_status = static_cast<BudgetStatus>(r.u8());
  o.budget_stop = static_cast<BudgetStop>(r.u8());
  return o;
}

void put_f64_vector(std::string& out, const std::vector<double>& v) {
  journal_io::put_u64(out, v.size());
  for (double x : v) journal_io::put_f64(out, x);
}

std::vector<double> read_f64_vector(journal_io::Reader& r) {
  const std::uint64_t n = r.u64();
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

void put_state_set(std::string& out, const StateSet& set) {
  journal_io::put_u64(out, set.size());
  std::string bits((set.size() + 7) / 8, '\0');
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set.test(i)) bits[i / 8] |= static_cast<char>(1u << (i % 8));
  }
  journal_io::put_bytes(out, bits);
}

StateSet read_state_set(journal_io::Reader& r) {
  const std::uint64_t n = r.u64();
  const std::string bits = r.bytes();
  if (bits.size() != (n + 7) / 8) {
    throw JournalError("journal: state-set payload is " +
                       std::to_string(bits.size()) + " bytes for " +
                       std::to_string(n) + " bits");
  }
  StateSet set(n, false);
  for (std::uint64_t i = 0; i < n; ++i) {
    if ((static_cast<unsigned char>(bits[i / 8]) >> (i % 8)) & 1u) {
      set.set(i, true);
    }
  }
  return set;
}

}  // namespace

std::string encode_session_report(const SessionReport& report) {
  std::string out;
  journal_io::put_u64(out, report.batches.size());
  for (const BatchOutcome& o : report.batches) put_outcome(out, o);
  journal_io::put_u64(out, report.repairs);
  journal_io::put_u64(out, report.patch_hits);
  journal_io::put_u8(out, report.final_satisfied ? 1 : 0);
  return out;
}

SessionReport decode_session_report(const std::string& payload) {
  journal_io::Reader r(payload);
  SessionReport report;
  const std::uint64_t n = r.u64();
  report.batches.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) report.batches.push_back(read_outcome(r));
  report.repairs = r.u64();
  report.patch_hits = r.u64();
  report.final_satisfied = r.u8() != 0;
  r.expect_done("session report");
  return report;
}

std::string encode_batch(const TrajectoryDataset& batch) {
  std::string out;
  journal_io::put_u64(out, batch.trajectories.size());
  for (const Trajectory& t : batch.trajectories) {
    journal_io::put_u32(out, t.initial_state);
    journal_io::put_u64(out, t.steps.size());
    for (const Step& s : t.steps) {
      journal_io::put_u32(out, s.state);
      journal_io::put_u32(out, s.choice);
      journal_io::put_u32(out, s.action);
      journal_io::put_u32(out, s.next_state);
    }
  }
  put_f64_vector(out, batch.weights);
  return out;
}

TrajectoryDataset decode_batch(const std::string& payload) {
  journal_io::Reader r(payload);
  TrajectoryDataset batch;
  const std::uint64_t n = r.u64();
  batch.trajectories.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Trajectory t;
    t.initial_state = r.u32();
    const std::uint64_t steps = r.u64();
    t.steps.reserve(steps);
    for (std::uint64_t k = 0; k < steps; ++k) {
      Step s;
      s.state = r.u32();
      s.choice = r.u32();
      s.action = r.u32();
      s.next_state = r.u32();
      t.steps.push_back(s);
    }
    batch.trajectories.push_back(std::move(t));
  }
  batch.weights = read_f64_vector(r);
  r.expect_done("batch");
  return batch;
}

RepairSession::RepairSession(Dtmc structure, StateFormulaPtr property,
                             RepairSessionConfig config)
    : structure_(std::move(structure)),
      property_(std::move(property)),
      config_(std::move(config)),
      mle_(structure_),
      current_(structure_) {
  structure_.validate();
  TML_REQUIRE(property_ != nullptr, "RepairSession: property is null");
  TML_REQUIRE(config_.pseudocount > 0.0,
              "RepairSession: pseudocount must be positive — zero smoothing "
              "can estimate unobserved structural transitions to 0, which "
              "changes the support and breaks the streaming contract");
  TML_REQUIRE(property_->kind() == StateFormula::Kind::kProb,
              "RepairSession: property must be a bounded P operator, got "
                  << property_->to_string());
  const PathFormula& path = property_->path();
  TML_REQUIRE(path.kind() == PathFormula::Kind::kEventually ||
                  path.kind() == PathFormula::Kind::kUntil,
              "RepairSession: only F / U path formulas are supported, got "
                  << path.to_string());
  TML_REQUIRE(!path.step_bound(),
              "RepairSession: step-bounded properties are not supported — "
              "the certified-bracket warm start applies to the unbounded "
              "fixpoint engines");
  // Operand sets are fixed for the whole session: they are label-defined on
  // the structure, and neither learning nor repair touches labels.
  goal_ = satisfying_states(structure_, path.right());
  stay_ = path.kind() == PathFormula::Kind::kUntil
              ? satisfying_states(structure_, path.left())
              : StateSet(structure_.num_states(), true);
  if (!config_.journal_path.empty()) {
    journal_ = std::make_unique<SessionJournal>(
        config_.journal_path, /*truncate=*/true, config_.journal_fsync);
  }
}

RepairSession RepairSession::resume(Dtmc structure, StateFormulaPtr property,
                                    RepairSessionConfig config) {
  static stats::Counter& c_resumes = stats::counter("core.session.resumes");
  TML_REQUIRE(!config.journal_path.empty(),
              "RepairSession::resume: config.journal_path is empty");
  const std::string path = config.journal_path;
  const bool fsync = config.journal_fsync;

  // Scan BEFORE constructing: the fresh-session constructor would truncate
  // the journal we are about to replay. The session is built journal-less,
  // replayed, and only then reattached to the file in append mode.
  const JournalScan scan = scan_journal(path);
  config.journal_path.clear();
  RepairSession session(std::move(structure), std::move(property),
                        std::move(config));
  session.config_.journal_path = path;
  session.journal_tail_dropped_ = scan.tail_dropped;
  session.journal_warning_ = scan.warning;

  // Latest checkpoint wins; only the batch records journaled after it need
  // re-feeding (write-ahead order: a batch record precedes its processing,
  // so a crash mid-feed leaves the record and replay re-runs the batch).
  const std::string* checkpoint = nullptr;
  std::vector<const std::string*> pending;
  for (const JournalRecord& record : scan.records) {
    if (record.type == JournalRecordType::kCheckpoint) {
      checkpoint = &record.payload;
      pending.clear();
    } else {
      pending.push_back(&record.payload);
    }
  }
  if (checkpoint != nullptr) session.restore_checkpoint(*checkpoint);
  session.replaying_ = true;
  try {
    for (const std::string* payload : pending) {
      session.feed(decode_batch(*payload));
    }
  } catch (...) {
    session.replaying_ = false;
    throw;
  }
  session.replaying_ = false;
  session.resumed_batches_ = session.report_.batches.size();
  session.journal_ =
      std::make_unique<SessionJournal>(path, /*truncate=*/false, fsync);
  c_resumes.bump();
  return session;
}

Budget RepairSession::batch_budget() const {
  const std::size_t fed = report_.batches.size();
  const std::size_t remaining =
      config_.expected_batches > fed ? config_.expected_batches - fed : 1;
  return config_.budget.split(remaining);
}

SolveResult RepairSession::certify(const Dtmc& chain,
                                   double perturbation_bound,
                                   const Budget& budget, BatchOutcome& outcome,
                                   bool record_patch) {
  const Dtmc absorbed = absorb_for_until(chain, stay_, goal_);

  double patch_delta = 0.0;
  StateSet dirty;
  bool patched = false;
  if (!compiled_.has_value()) {
    compiled_ = compile(absorbed);
    has_warm_ = false;
  } else {
    const PatchResult patch = patch_probabilities(*compiled_, absorbed);
    if (patch.patched) {
      patched = true;
      patch_delta = patch.max_abs_delta;
      dirty = patch.dirty;
    } else {
      // Structural change (should not happen with positive smoothing, but
      // degrade gracefully): recompile cold and drop the stale seed.
      compiled_ = compile(absorbed);
      has_warm_ = false;
    }
  }
  if (record_patch) {
    outcome.patched = patched;
    outcome.dirty_states = patched ? count(dirty) : compiled_->num_states();
    outcome.max_abs_delta = patch_delta;
  }

  SolverOptions options;
  options.method = SolveMethod::kIntervalTopological;
  options.tolerance = config_.tolerance;
  options.threads = config_.threads;
  options.budget = budget;
  WarmStart seed;
  if (has_warm_ && patched) {
    seed = warm_;
    seed.dirty = dirty;
    const double bound = std::max(perturbation_bound, patch_delta);
    seed.widen = config_.widen_scale < 0.0
                     ? -1.0
                     : std::min(1.0, config_.widen_scale * bound);
    options.warm = &seed;
  }

  SolveResult result = mdp_reachability_bracket(*compiled_, goal_,
                                                Objective::kMaximize, options);

  warm_.values = result.values;
  warm_.lo = result.lo;
  warm_.hi = result.hi;
  warm_.zero = result.zero;
  warm_.one = result.one;
  warm_.dirty = StateSet{};
  has_warm_ = true;

  outcome.sweeps += result.iterations;
  if (result.budget_status == BudgetStatus::kBudgetExhausted) {
    outcome.budget_status = BudgetStatus::kBudgetExhausted;
    if (outcome.budget_stop == BudgetStop::kNone) {
      outcome.budget_stop = result.budget_stop;
    }
  }
  return result;
}

const BatchOutcome& RepairSession::feed(const TrajectoryDataset& batch) {
  static stats::Counter& c_batches = stats::counter("core.session.batches");
  static stats::Counter& c_repairs = stats::counter("core.session.repairs");
  static stats::Timer& t_batch = stats::timer("core.session.batch.time");
  const stats::ScopedTimer span(t_batch);
  c_batches.bump();

  // Write-ahead: journal the batch (fsync'd) before touching any session
  // state, so a crash anywhere in this call replays the batch on resume.
  if (journal_ != nullptr && !replaying_) {
    journal_->append(JournalRecordType::kBatch, encode_batch(batch));
  }

  BatchOutcome outcome;
  outcome.index = report_.batches.size();
  outcome.trajectories = batch.size();

  const Budget share = batch_budget();

  // 1. Learn: fold the batch into the running counts, re-estimate.
  mle_.add(batch);
  const Dtmc learned = mle_.dtmc(config_.pseudocount);
  current_ = learned;

  // 2. Certify the learned chain (warm bracket; only changed SCC blocks
  //    re-sweep).
  const StateId init = current_.initial_state();
  const Comparison cmp = property_->comparison();
  const double bound = property_->bound();
  SolveResult certified = certify(learned, 0.0, share, outcome, true);
  outcome.lo = certified.lo[init];
  outcome.hi = certified.hi[init];
  // Certified satisfaction needs BOTH bracket ends on the right side of the
  // bound; a straddling bracket (or an exhausted budget's wide bracket)
  // conservatively counts as violated.
  bool satisfied = compare(certified.lo[init], cmp, bound) &&
                   compare(certified.hi[init], cmp, bound);
  outcome.violated = !satisfied;

  // 3. Repair only if the certified verdict failed.
  if (outcome.violated && config_.scheme_for) {
    c_repairs.bump();
    ++report_.repairs;
    outcome.repaired = true;

    const PerturbationScheme scheme = config_.scheme_for(learned);
    ModelRepairConfig repair_config = config_.repair;
    Budget repair_share = share;  // same absolute deadline as the certify
    repair_config.solver.budget = repair_share;
    repair_config.elimination.budget = &repair_share;
    // NLP warm start: the previous batch's repaired point. Probabilities
    // drift a little per batch, so the previous optimum is typically
    // near-feasible and converges in a handful of inner iterations.
    if (last_repair_point_.has_value() &&
        last_repair_point_->size() == scheme.num_variables()) {
      repair_config.solver.warm_starts.push_back(*last_repair_point_);
    }

    const ModelRepairResult repair =
        model_repair(scheme, *property_, repair_config);
    outcome.repair_feasible = repair.feasible();
    if (repair.feasible() && repair.repaired.has_value()) {
      outcome.repair_cost = repair.cost;
      outcome.epsilon_bisimilarity = repair.epsilon_bisimilarity;
      last_repair_point_ = repair.variable_values;
      current_ = *repair.repaired;
      // Re-certify the repaired chain, warm from the pre-repair bracket,
      // widened by the scheme's Proposition 1 perturbation bound.
      SolveResult recheck =
          certify(current_, scheme.max_perturbation(repair.variable_values),
                  share, outcome, /*record_patch=*/false);
      outcome.lo = recheck.lo[init];
      outcome.hi = recheck.hi[init];
      satisfied = compare(recheck.lo[init], cmp, bound) &&
                  compare(recheck.hi[init], cmp, bound);
    }
  }

  if (outcome.patched) ++report_.patch_hits;
  report_.final_satisfied = satisfied;
  report_.batches.push_back(outcome);
  maybe_checkpoint();
  return report_.batches.back();
}

void RepairSession::maybe_checkpoint() {
  if (journal_ == nullptr || replaying_ || config_.checkpoint_every == 0) return;
  if (report_.batches.size() % config_.checkpoint_every != 0) return;
  static stats::Counter& c_checkpoints =
      stats::counter("core.session.checkpoints");
  journal_->append(JournalRecordType::kCheckpoint, encode_checkpoint());
  c_checkpoints.bump();
}

std::string RepairSession::encode_checkpoint() const {
  std::string out;
  // MLE accumulator: batch count, matched weight, count table.
  journal_io::put_u64(out, mle_.batches());
  journal_io::put_f64(out, mle_.total_weight());
  const CountTable& table = mle_.counts();
  journal_io::put_f64(out, table.unmatched);
  journal_io::put_u64(out, table.counts.size());
  for (const auto& state_counts : table.counts) {
    journal_io::put_u64(out, state_counts.size());
    for (const auto& choice_counts : state_counts) put_f64_vector(out, choice_counts);
  }
  // Current chain: transition rows only — states, labels, names and rewards
  // are fixed by the structure, which the resume caller re-supplies.
  journal_io::put_u64(out, current_.num_states());
  for (StateId s = 0; s < current_.num_states(); ++s) {
    const auto& row = current_.transitions(s);
    journal_io::put_u64(out, row.size());
    for (const Transition& t : row) {
      journal_io::put_u32(out, t.target);
      journal_io::put_f64(out, t.probability);
    }
  }
  // Report so far, warm bracket, last repair point.
  journal_io::put_bytes(out, encode_session_report(report_));
  journal_io::put_u8(out, has_warm_ ? 1 : 0);
  if (has_warm_) {
    put_f64_vector(out, warm_.values);
    put_f64_vector(out, warm_.lo);
    put_f64_vector(out, warm_.hi);
    put_state_set(out, warm_.zero);
    put_state_set(out, warm_.one);
  }
  journal_io::put_u8(out, last_repair_point_.has_value() ? 1 : 0);
  if (last_repair_point_.has_value()) put_f64_vector(out, *last_repair_point_);
  return out;
}

void RepairSession::restore_checkpoint(const std::string& payload) {
  journal_io::Reader r(payload);
  const std::uint64_t batches = r.u64();
  const double total_weight = r.f64();
  CountTable table;
  table.unmatched = r.f64();
  const std::uint64_t num_states = r.u64();
  table.counts.resize(num_states);
  for (auto& state_counts : table.counts) {
    const std::uint64_t num_choices = r.u64();
    state_counts.resize(num_choices);
    for (auto& choice_counts : state_counts) choice_counts = read_f64_vector(r);
  }
  mle_.restore(std::move(table), batches, total_weight);

  const std::uint64_t chain_states = r.u64();
  if (chain_states != structure_.num_states()) {
    throw JournalError("journal: checkpoint chain has " +
                       std::to_string(chain_states) +
                       " states, session structure has " +
                       std::to_string(structure_.num_states()));
  }
  current_ = structure_;  // carries names, labels, rewards
  for (StateId s = 0; s < structure_.num_states(); ++s) {
    const std::uint64_t row_size = r.u64();
    std::vector<Transition> row;
    row.reserve(row_size);
    for (std::uint64_t k = 0; k < row_size; ++k) {
      Transition t;
      t.target = r.u32();
      t.probability = r.f64();
      row.push_back(t);
    }
    current_.set_transitions(s, std::move(row));
  }

  report_ = decode_session_report(r.bytes());
  // Rebuild the compiled cache from the restored chain: the delta patch is
  // bitwise identical to a fresh compile (the test_delta invariant), so
  // this reproduces the crashed process's patched-in-place cache exactly.
  compiled_ = compile(absorb_for_until(current_, stay_, goal_));
  has_warm_ = r.u8() != 0;
  if (has_warm_) {
    warm_.values = read_f64_vector(r);
    warm_.lo = read_f64_vector(r);
    warm_.hi = read_f64_vector(r);
    warm_.zero = read_state_set(r);
    warm_.one = read_state_set(r);
    warm_.dirty = StateSet{};
  }
  if (r.u8() != 0) {
    last_repair_point_ = read_f64_vector(r);
  } else {
    last_repair_point_.reset();
  }
  r.expect_done("checkpoint");
}

}  // namespace tml
