#include "src/core/perturbation.hpp"

#include <algorithm>
#include <cmath>

namespace tml {

PerturbationScheme::PerturbationScheme(Dtmc base) : base_(std::move(base)) {
  base_.validate();
}

Var PerturbationScheme::add_variable(const std::string& name, double lower,
                                     double upper) {
  TML_REQUIRE(lower <= upper,
              "PerturbationScheme: empty bounds for " << name);
  const Var v = static_cast<Var>(names_.size());
  names_.push_back(name);
  lower_.push_back(lower);
  upper_.push_back(upper);
  return v;
}

void PerturbationScheme::attach(Var v, StateId from, StateId to,
                                double coefficient) {
  TML_REQUIRE(v < names_.size(), "PerturbationScheme::attach: unknown variable");
  TML_REQUIRE(from < base_.num_states() && to < base_.num_states(),
              "PerturbationScheme::attach: state out of range");
  TML_REQUIRE(coefficient != 0.0,
              "PerturbationScheme::attach: zero coefficient");
  // Support preservation (Eq. 3): only existing transitions are perturbable.
  bool exists = false;
  for (const Transition& t : base_.transitions(from)) {
    if (t.target == to) {
      exists = true;
      break;
    }
  }
  TML_REQUIRE(exists, "PerturbationScheme::attach: transition "
                          << from << "->" << to
                          << " absent in base chain (support must be kept)");
  attachments_.push_back(Attachment{v, from, to, coefficient});
}

void PerturbationScheme::attach_balanced(Var v, StateId from, StateId raise,
                                         StateId lower) {
  attach(v, from, raise, +1.0);
  attach(v, from, lower, -1.0);
}

PerturbationScheme::Built PerturbationScheme::build(
    double probability_margin) const {
  TML_REQUIRE(!names_.empty(), "PerturbationScheme::build: no variables");

  // Row-sum check: coefficients attached to one row must cancel per
  // variable.
  for (StateId s = 0; s < base_.num_states(); ++s) {
    std::vector<double> row_coeff(names_.size(), 0.0);
    for (const Attachment& a : attachments_) {
      if (a.from == s) row_coeff[a.variable] += a.coefficient;
    }
    for (std::size_t v = 0; v < names_.size(); ++v) {
      if (std::abs(row_coeff[v]) > 1e-12) {
        throw ModelError("PerturbationScheme: variable " + names_[v] +
                         " changes the row sum of state " + std::to_string(s) +
                         " by " + std::to_string(row_coeff[v]) +
                         " — attach balanced coefficients");
      }
    }
  }

  VariablePool pool;
  for (const std::string& name : names_) pool.declare(name);

  ParametricDtmc chain = ParametricDtmc::from_dtmc(base_, std::move(pool));
  for (const Attachment& a : attachments_) {
    chain.add_transition(
        a.from, a.to,
        RationalFunction(Polynomial::variable(a.variable) * a.coefficient));
  }

  // Tighten the box so every perturbed probability stays in
  // (margin, 1 − margin). With each transition affected by a sum of
  // variables, we conservatively require, per attachment, that the single
  // attachment alone cannot push the probability out given the others at
  // their worst — for the typical one-variable-per-transition schemes this
  // is exact; multi-variable transitions fall back to the conservative
  // split of the available slack.
  Built built{std::move(chain), lower_, upper_, {}};
  for (std::size_t v = 0; v < names_.size(); ++v) {
    built.variables.push_back(static_cast<Var>(v));
  }

  // Group attachments by transition.
  for (StateId s = 0; s < base_.num_states(); ++s) {
    for (const Transition& t : base_.transitions(s)) {
      std::vector<const Attachment*> here;
      for (const Attachment& a : attachments_) {
        if (a.from == s && a.to == t.target) here.push_back(&a);
      }
      if (here.empty()) continue;
      const double slack_up = (1.0 - probability_margin) - t.probability;
      const double slack_down = t.probability - probability_margin;
      TML_REQUIRE(slack_up > 0.0 && slack_down > 0.0,
                  "PerturbationScheme: base probability of "
                      << s << "->" << t.target
                      << " leaves no perturbation slack");
      const double share = 1.0 / static_cast<double>(here.size());
      for (const Attachment* a : here) {
        // coefficient·v must lie within [−slack_down·share, slack_up·share];
        // translate to bounds on v itself.
        const double lo_cv = -slack_down * share;
        const double hi_cv = slack_up * share;
        double lo, hi;
        if (a->coefficient > 0.0) {
          lo = lo_cv / a->coefficient;
          hi = hi_cv / a->coefficient;
        } else {
          lo = hi_cv / a->coefficient;
          hi = lo_cv / a->coefficient;
        }
        built.lower[a->variable] = std::max(built.lower[a->variable], lo);
        built.upper[a->variable] = std::min(built.upper[a->variable], hi);
      }
    }
  }
  for (std::size_t v = 0; v < names_.size(); ++v) {
    if (built.lower[v] > built.upper[v]) {
      throw ModelError("PerturbationScheme: empty feasible box for variable " +
                       names_[v]);
    }
  }
  return built;
}

double PerturbationScheme::max_perturbation(
    std::span<const double> values) const {
  TML_REQUIRE(values.size() == names_.size(),
              "max_perturbation: value count mismatch");
  // Entries of Z are sums of attached terms per transition.
  double bound = 0.0;
  for (StateId s = 0; s < base_.num_states(); ++s) {
    for (const Transition& t : base_.transitions(s)) {
      double z = 0.0;
      for (const Attachment& a : attachments_) {
        if (a.from == s && a.to == t.target) {
          z += a.coefficient * values[a.variable];
        }
      }
      bound = std::max(bound, std::abs(z));
    }
  }
  return bound;
}

PerturbationScheme PerturbationScheme::with_bounds(
    const std::function<std::pair<double, double>(std::size_t, double, double)>&
        transform) const {
  PerturbationScheme out = *this;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const auto [lo, hi] = transform(i, lower_[i], upper_[i]);
    TML_REQUIRE(lo <= hi,
                "with_bounds: empty bounds for variable " << names_[i]);
    out.lower_[i] = lo;
    out.upper_[i] = hi;
  }
  return out;
}

Dtmc PerturbationScheme::apply(std::span<const double> values) const {
  TML_REQUIRE(values.size() == names_.size(),
              "PerturbationScheme::apply: value count mismatch");
  Dtmc out = base_;
  for (StateId s = 0; s < base_.num_states(); ++s) {
    std::vector<Transition> row = base_.transitions(s);
    for (Transition& t : row) {
      for (const Attachment& a : attachments_) {
        if (a.from == s && a.to == t.target) {
          t.probability += a.coefficient * values[a.variable];
        }
      }
    }
    out.set_transitions(s, std::move(row));
  }
  out.validate(1e-6);
  return out;
}

}  // namespace tml
