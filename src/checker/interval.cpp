#include "src/checker/interval.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tml {

IntervalMdp IntervalMdp::widen(const Mdp& nominal, double radius) {
  nominal.validate();
  TML_REQUIRE(radius >= 0.0, "IntervalMdp::widen: negative radius");
  IntervalMdp out;
  out.initial_state_ = nominal.initial_state();
  out.choices_.resize(nominal.num_states());
  for (StateId s = 0; s < nominal.num_states(); ++s) {
    for (const Choice& choice : nominal.choices(s)) {
      IntervalChoice ic;
      ic.action = choice.action;
      const bool singleton = choice.transitions.size() == 1;
      for (const Transition& t : choice.transitions) {
        IntervalTransition it;
        it.target = t.target;
        if (singleton || t.probability >= 1.0) {
          it.lower = it.upper = t.probability;
        } else {
          it.lower = std::max(0.0, t.probability - radius);
          it.upper = std::min(1.0, t.probability + radius);
        }
        ic.transitions.push_back(it);
      }
      out.choices_[s].push_back(std::move(ic));
    }
  }
  out.validate();
  return out;
}

const std::vector<IntervalChoice>& IntervalMdp::choices(StateId s) const {
  TML_REQUIRE(s < choices_.size(), "IntervalMdp::choices: out of range");
  return choices_[s];
}

void IntervalMdp::validate() const {
  if (choices_.empty()) throw ModelError("IntervalMdp: no states");
  for (StateId s = 0; s < choices_.size(); ++s) {
    if (choices_[s].empty()) {
      throw ModelError("IntervalMdp: state " + std::to_string(s) +
                       " has no choices");
    }
    for (const IntervalChoice& c : choices_[s]) {
      double lo = 0.0, hi = 0.0;
      for (const IntervalTransition& t : c.transitions) {
        if (t.lower < -1e-12 || t.upper > 1.0 + 1e-12 || t.lower > t.upper) {
          throw ModelError("IntervalMdp: malformed interval in state " +
                           std::to_string(s));
        }
        lo += t.lower;
        hi += t.upper;
      }
      if (lo > 1.0 + 1e-9 || hi < 1.0 - 1e-9) {
        throw ModelError("IntervalMdp: empty polytope in state " +
                         std::to_string(s));
      }
    }
  }
}

std::vector<double> resolve_polytope(
    const std::vector<IntervalTransition>& transitions,
    std::span<const double> values, bool maximize) {
  // Start from the lower bounds, then spend the remaining budget
  // (1 − Σ lower) on successors in value order.
  std::vector<double> p(transitions.size());
  double budget = 1.0;
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    p[i] = transitions[i].lower;
    budget -= transitions[i].lower;
  }
  TML_ASSERT(budget >= -1e-9, "resolve_polytope: lower bounds exceed 1");

  std::vector<std::size_t> order(transitions.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double va = values[transitions[a].target];
    const double vb = values[transitions[b].target];
    return maximize ? va > vb : va < vb;
  });
  for (std::size_t idx : order) {
    if (budget <= 0.0) break;
    const double room = transitions[idx].upper - transitions[idx].lower;
    const double add = std::min(room, budget);
    p[idx] += add;
    budget -= add;
  }
  TML_ASSERT(budget <= 1e-9, "resolve_polytope: budget not exhausted");
  return p;
}

std::vector<double> interval_reachability(const IntervalMdp& mdp,
                                          const StateSet& targets,
                                          Objective objective, Nature nature,
                                          const SolverOptions& options) {
  mdp.validate();
  const std::size_t n = mdp.num_states();
  TML_REQUIRE(targets.size() == n,
              "interval_reachability: target set size mismatch");

  // Nature maximizes with the scheduler under cooperation, opposes it when
  // adversarial.
  const bool scheduler_max = objective == Objective::kMaximize;
  const bool nature_max =
      nature == Nature::kCooperative ? scheduler_max : !scheduler_max;

  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (targets[s]) values[s] = 1.0;
  }
  std::vector<double> next = values;

  bool converged = false;
  std::size_t iterations = 0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      if (targets[s]) continue;
      bool first = true;
      double best = 0.0;
      for (const IntervalChoice& choice : mdp.choices(s)) {
        const std::vector<double> p =
            resolve_polytope(choice.transitions, values, nature_max);
        double q = 0.0;
        for (std::size_t i = 0; i < p.size(); ++i) {
          q += p[i] * values[choice.transitions[i].target];
        }
        if (first || (scheduler_max ? q > best : q < best)) {
          best = q;
          first = false;
        }
      }
      next[s] = best;
      delta = std::max(delta, std::abs(next[s] - values[s]));
    }
    values.swap(next);
    iterations = iter + 1;
    if (delta < options.tolerance) {
      converged = true;
      break;
    }
  }
  if (!converged && options.throw_on_nonconvergence) {
    throw NumericError("interval_reachability: no convergence after " +
                       std::to_string(iterations) + " iterations");
  }
  return values;
}

}  // namespace tml
