// Long-run (steady-state) analysis for DTMCs.
//
// PRISM's S operator, provided here as an API-level extension: the
// long-run probability of sitting in a φ-state is
//
//     S(φ) = Σ_{B ∈ BSCC} P(reach B) · π_B(Sat φ ∩ B),
//
// where the bottom strongly connected components (BSCCs) are found by
// Tarjan's algorithm, each BSCC's stationary distribution π_B solves
// π_B P|_B = π_B with Σ π_B = 1, and the reach probabilities come from the
// standard reachability engine. Useful for the WSN setting's long-run
// questions (e.g. the long-run fraction of time a node spends ignoring).
//
// All analyses run on the compiled CSR form (which must be deterministic);
// the Dtmc overloads compile once and delegate.

#pragma once

#include <vector>

#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"

namespace tml {

/// Bottom strongly connected components of the chain (each returned list
/// is sorted by state id; components in discovery order).
std::vector<std::vector<StateId>> bottom_sccs(const CompiledModel& model);
std::vector<std::vector<StateId>> bottom_sccs(const Dtmc& chain);

/// Stationary distribution of the chain restricted to one BSCC, indexed
/// like `component`. Throws if the states do not form a closed recurrent
/// class.
std::vector<double> stationary_distribution(
    const CompiledModel& model, const std::vector<StateId>& component);
std::vector<double> stationary_distribution(
    const Dtmc& chain, const std::vector<StateId>& component);

/// Per-state long-run occupancy from the chain's initial state:
/// result[s] = long-run fraction of time spent in s.
std::vector<double> long_run_distribution(const CompiledModel& model);
std::vector<double> long_run_distribution(const Dtmc& chain);

/// Long-run probability of the state set from the initial state.
double long_run_probability(const CompiledModel& model, const StateSet& states);
double long_run_probability(const Dtmc& chain, const StateSet& states);

}  // namespace tml
