#include "src/checker/counterexample.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

namespace tml {

namespace {

/// Search node: a loop-free path prefix with its accumulated probability.
struct Node {
  std::vector<StateId> states;
  double probability = 1.0;

  bool operator<(const Node& other) const {
    // std::priority_queue is a max-heap; order by probability.
    return probability < other.probability;
  }
};

}  // namespace

Counterexample strongest_evidence(const Dtmc& chain, const StateSet& targets,
                                  double bound, std::size_t max_paths) {
  chain.validate();
  TML_REQUIRE(targets.size() == chain.num_states(),
              "strongest_evidence: target set size mismatch");

  Counterexample result;
  std::priority_queue<Node> frontier;
  frontier.push(Node{{chain.initial_state()}, 1.0});

  // Best-first expansion of loop-free prefixes. Each pop is the most
  // probable unexplored prefix; reaching a target yields the next-best
  // evidence path (Dijkstra optimality in −log space holds per prefix).
  while (!frontier.empty() && result.paths.size() < max_paths &&
         result.total_probability <= bound) {
    Node node = frontier.top();
    frontier.pop();
    const StateId current = node.states.back();
    if (targets[current]) {
      result.total_probability += node.probability;
      result.paths.push_back(
          EvidencePath{std::move(node.states), node.probability});
      continue;
    }
    for (const Transition& t : chain.transitions(current)) {
      if (t.probability <= 0.0) continue;
      // Loop-free restriction keeps the search finite.
      if (std::find(node.states.begin(), node.states.end(), t.target) !=
          node.states.end()) {
        continue;
      }
      Node next;
      next.states = node.states;
      next.states.push_back(t.target);
      next.probability = node.probability * t.probability;
      frontier.push(std::move(next));
    }
  }
  result.exceeds_bound = result.total_probability > bound;
  return result;
}

std::string Counterexample::to_string(const Dtmc& chain) const {
  std::ostringstream os;
  os << "counterexample: " << paths.size() << " paths, total mass "
     << total_probability << (exceeds_bound ? " (exceeds bound)" : "")
     << "\n";
  for (const EvidencePath& path : paths) {
    os << "  p=" << path.probability << " : ";
    for (std::size_t i = 0; i < path.states.size(); ++i) {
      if (i > 0) os << " -> ";
      const std::string& name = chain.state_name(path.states[i]);
      os << (name.empty() ? "s" + std::to_string(path.states[i]) : name);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace tml
