// PCTL model checking for DTMCs and MDPs.
//
// DTMC engine: exact linear-system solves (Gaussian elimination) after
// prob0/prob1 graph precomputation; bounded operators by matrix-vector
// iteration.
//
// MDP engine: PRISM-style — qualitative precomputation (Prob0A/Prob1E for
// max, Prob0E/Prob1A for min) followed by value iteration. A bounded
// operator `P⋈b[ψ]` on an MDP quantifies over all schedulers: upper bounds
// (<, <=) are checked against the maximizing scheduler, lower bounds
// (>, >=) against the minimizing one. Explicit `Pmax`/`Pmin`/`Rmax`/`Rmin`
// override that resolution.
//
// Reward operators follow PRISM semantics: `R[F φ]` is the expected reward
// accumulated *before* entering a φ-state, and paths that never reach φ
// carry infinite reward (so e.g. `R<=40 [F goal]` fails wherever the goal
// is not reached almost surely under the resolved scheduler).

#pragma once

#include "src/checker/results.hpp"
#include "src/common/budget.hpp"
#include "src/logic/pctl.hpp"
#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"

namespace tml {

/// Per-call knobs for check(). The plain overloads pick up the process-wide
/// default_budget() — fine for a CLI run, but racy for a server handling
/// concurrent requests with different deadlines; such callers pass an
/// explicit CheckOptions instead. The budget and thread count are threaded
/// into every solver the formula's operators reach (the exact DTMC
/// linear-solve engines are direct eliminations with no iteration boundary
/// to poll and run un-budgeted).
struct CheckOptions {
  Budget budget = default_budget();
  /// Worker threads for the bounded/cumulative sweeps (0 = TML_THREADS).
  std::size_t threads = 0;
  /// Run strong-bisimulation minimization (src/mdp/quotient.hpp) before
  /// solving and lift the per-state answers back through the block map.
  /// Semantically transparent: the quotient respects labels and rewards, so
  /// every P/R verdict and value is unchanged — only the solver cost drops.
  /// Refinement runs under the same `budget`; if it exhausts, the check
  /// degrades to the unquotiented model (CheckResult::quotient_states
  /// reports which path ran).
  bool quotient = false;
};

/// Set of states satisfying a boolean PCTL formula. Throws for quantitative
/// (`=?`) formulas — those have no satisfaction set. The Dtmc/Mdp overloads
/// compile and delegate; checking several formulas against one model is
/// cheaper through a single compiled form.
StateSet satisfying_states(const CompiledModel& model,
                           const StateFormula& formula);
StateSet satisfying_states(const Dtmc& chain, const StateFormula& formula);
StateSet satisfying_states(const Mdp& mdp, const StateFormula& formula);

/// Per-state numeric values of the outermost P/R operator of `formula`
/// (which must be kProb/kProbQuery/kReward/kRewardQuery). For a boolean
/// operator the values are the quantities compared against the bound.
std::vector<double> quantitative_values(const CompiledModel& model,
                                        const StateFormula& formula);
std::vector<double> quantitative_values(const Dtmc& chain,
                                        const StateFormula& formula);
std::vector<double> quantitative_values(const Mdp& mdp,
                                        const StateFormula& formula);

/// Full check against the model's initial state; fills both the boolean
/// verdict (for boolean formulas) and the measured value when the top-level
/// node is a P/R operator.
CheckResult check(const CompiledModel& model, const StateFormula& formula);
CheckResult check(const CompiledModel& model, const StateFormula& formula,
                  const CheckOptions& options);
CheckResult check(const Dtmc& chain, const StateFormula& formula);
CheckResult check(const Mdp& mdp, const StateFormula& formula);

/// Convenience: parse-and-check.
CheckResult check(const Dtmc& chain, const std::string& formula_text);
CheckResult check(const Mdp& mdp, const std::string& formula_text);

}  // namespace tml
