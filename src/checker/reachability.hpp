// Quantitative reachability for MDPs (Pmax / Pmin of F target).
//
// Graph precomputation pins the probability-0 and probability-1 regions
// (src/mdp/graph.hpp) before any numerics run; SolverOptions::method then
// selects the numeric engine for the remaining states:
//
//  * kValueIteration — classic Jacobi value iteration with the (unsound)
//    `delta < eps` stopping rule;
//  * kTopological — the same updates swept one SCC block at a time in
//    dependency order (single-state blocks solve in closed form);
//  * kIntervalTopological (default) — sound interval iteration: lower and
//    upper value vectors initialized from the prob0/prob1 sets converge
//    toward each other per SCC block, end components are deflated to their
//    best exit so the upper iterate cannot stall, and iteration stops only
//    when `upper - lower < eps` everywhere. `mdp_reachability_bracket`
//    exposes the certified `[lo, hi]` bracket directly.
//
// All engines run on the compiled CSR form; the Mdp/Dtmc overloads compile
// once and delegate. Until operators restrict to plain reachability via
// CompiledModel::make_absorbing (states outside stay ∪ goal can never
// contribute).
//
// Budgets (src/common/budget.hpp). Every engine polls
// SolverOptions::budget once per sweep. The bracket entry points degrade
// gracefully on exhaustion: they return the current certified lo/hi
// bracket (sound at every sweep boundary by construction) flagged
// `SolveResult::budget_status = kBudgetExhausted`. The plain-vector entry
// points (mdp_reachability, mdp_until, the bounded/cumulative sweeps —
// which take the budget as a trailing pointer, nullptr = default_budget())
// have no channel for a flagged partial and throw the typed
// `BudgetExhausted` error instead.

#pragma once

#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

/// Per-state Pmax(F targets) or Pmin(F targets).
std::vector<double> mdp_reachability(const CompiledModel& model,
                                     const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options = {});
std::vector<double> mdp_reachability(const Mdp& mdp, const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options = {});

/// Certified-bracket reachability: always runs the sound interval engine
/// (regardless of options.method) and returns the full SolveResult with
/// `lo[s] <= v*(s) <= hi[s]` per state and `values` the clamped midpoint.
/// On convergence, `hi - lo < options.tolerance` holds everywhere.
SolveResult mdp_reachability_bracket(const CompiledModel& model,
                                     const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options = {});
SolveResult mdp_reachability_bracket(const Mdp& mdp, const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options = {});

/// Certified bracket for constrained reachability P[ stay U goal ].
SolveResult mdp_until_bracket(const CompiledModel& model, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options = {});
SolveResult mdp_until_bracket(const Mdp& mdp, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options = {});

/// Per-state step-bounded reachability-style until values for MDPs:
/// opt over schedulers of P[ stay U<=k goal ] where `stay`/`goal` are the
/// satisfaction sets of the until operands.
/// The `threads` parameter on the bounded/cumulative engines selects the
/// parallelism of the per-state Jacobi sweeps (0 = TML_THREADS / hardware);
/// results are bitwise identical for every thread count.
std::vector<double> mdp_bounded_until(const CompiledModel& model,
                                      const StateSet& stay,
                                      const StateSet& goal, std::size_t bound,
                                      Objective objective,
                                      std::size_t threads = 0,
                                      const Budget* budget = nullptr);
std::vector<double> mdp_bounded_until(const Mdp& mdp, const StateSet& stay,
                                      const StateSet& goal, std::size_t bound,
                                      Objective objective,
                                      std::size_t threads = 0,
                                      const Budget* budget = nullptr);

/// DTMC step-bounded until.
std::vector<double> dtmc_bounded_until(const CompiledModel& model,
                                       const StateSet& stay,
                                       const StateSet& goal, std::size_t bound,
                                       std::size_t threads = 0,
                                       const Budget* budget = nullptr);
std::vector<double> dtmc_bounded_until(const Dtmc& chain, const StateSet& stay,
                                       const StateSet& goal, std::size_t bound,
                                       std::size_t threads = 0,
                                       const Budget* budget = nullptr);

/// Unbounded constrained reachability P[ stay U goal ] for DTMCs, by making
/// the escape region absorbing and running linear-system reachability.
std::vector<double> dtmc_until(const CompiledModel& model, const StateSet& stay,
                               const StateSet& goal);
std::vector<double> dtmc_until(const Dtmc& chain, const StateSet& stay,
                               const StateSet& goal);

/// Unbounded constrained reachability for MDPs.
std::vector<double> mdp_until(const CompiledModel& model, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options = {});
std::vector<double> mdp_until(const Mdp& mdp, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options = {});

/// Expected cumulative reward over the first `horizon` steps.
std::vector<double> dtmc_cumulative_reward(const CompiledModel& model,
                                           std::size_t horizon,
                                           std::size_t threads = 0,
                                           const Budget* budget = nullptr);
std::vector<double> dtmc_cumulative_reward(const Dtmc& chain,
                                           std::size_t horizon,
                                           std::size_t threads = 0,
                                           const Budget* budget = nullptr);
std::vector<double> mdp_cumulative_reward(const CompiledModel& model,
                                          std::size_t horizon,
                                          Objective objective,
                                          std::size_t threads = 0,
                                          const Budget* budget = nullptr);
std::vector<double> mdp_cumulative_reward(const Mdp& mdp, std::size_t horizon,
                                          Objective objective,
                                          std::size_t threads = 0,
                                          const Budget* budget = nullptr);

}  // namespace tml
