// Interval MDPs and robust verification — the convex-uncertainty baseline.
//
// The paper's related work (§VI) contrasts TML with Puggelli et al. [28],
// who verify PCTL properties of MDPs with convex (interval) transition
// uncertainties instead of repairing a concrete model. This module
// implements that baseline for the interval case:
//
//  * an `IntervalMdp` whose transition probabilities are intervals
//    [lo, hi] containing the nominal value;
//  * robust value iteration for reachability: nature picks, at every step
//    and adversarially (or cooperatively), a distribution inside the
//    intervals. The inner optimization over the transition polytope is the
//    classic order-based greedy: sort successors by value, give maximal
//    mass to the best (or worst) ones subject to the interval box and the
//    sum-to-one budget.
//
// The ablate_baselines bench uses it to contrast the two philosophies:
// interval verification certifies what holds for EVERY model in a
// perturbation ball, Model Repair finds ONE minimally-perturbed model that
// satisfies the property.

#pragma once

#include <vector>

#include "src/mdp/model.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

/// One uncertain probabilistic edge.
struct IntervalTransition {
  StateId target = 0;
  double lower = 0.0;
  double upper = 0.0;
};

/// One action with an interval transition polytope.
struct IntervalChoice {
  ActionId action = 0;
  std::vector<IntervalTransition> transitions;
};

/// MDP with interval transition probabilities. Built from a nominal MDP by
/// widening every transition by ±radius (clamped to [0,1]); the polytope of
/// each choice is { p : lower <= p <= upper, Σ p = 1 }.
class IntervalMdp {
 public:
  /// Uniform widening of a nominal model. Transitions with probability 1
  /// (and singleton rows) stay exact.
  static IntervalMdp widen(const Mdp& nominal, double radius);

  std::size_t num_states() const { return choices_.size(); }
  StateId initial_state() const { return initial_state_; }
  const std::vector<IntervalChoice>& choices(StateId s) const;

  /// Checks that every choice's polytope is non-empty
  /// (Σ lower <= 1 <= Σ upper).
  void validate() const;

 private:
  std::vector<std::vector<IntervalChoice>> choices_;
  StateId initial_state_ = 0;
};

/// Who resolves the interval uncertainty.
enum class Nature {
  kAdversarial,  ///< worst case over the polytope (robust verification)
  kCooperative   ///< best case (optimistic bound)
};

/// Robust reachability: per-state
///   opt_{scheduler} opt_{nature} P(F targets),
/// where the scheduler optimizes `objective` and nature resolves each
/// choice's polytope per `nature` (adversarial nature opposes the
/// scheduler's objective).
std::vector<double> interval_reachability(const IntervalMdp& mdp,
                                          const StateSet& targets,
                                          Objective objective, Nature nature,
                                          const SolverOptions& options = {});

/// Inner optimization over one interval polytope: the distribution inside
/// the box maximizing (or minimizing) Σ p_i · value_i. Exposed for tests.
std::vector<double> resolve_polytope(
    const std::vector<IntervalTransition>& transitions,
    std::span<const double> values, bool maximize);

}  // namespace tml
