#include "src/checker/steady_state.hpp"

#include <algorithm>

#include "src/common/matrix.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

/// Iterative Tarjan SCC (explicit stack; recursion depth would otherwise
/// track the longest chain path).
struct TarjanState {
  std::vector<int> index;
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<StateId> stack;
  int next_index = 0;
  std::vector<std::vector<StateId>> components;
};

void tarjan(const Dtmc& chain, TarjanState& st, StateId root) {
  struct Frame {
    StateId state;
    std::size_t edge = 0;
  };
  std::vector<Frame> call_stack{{root, 0}};
  st.index[root] = st.lowlink[root] = st.next_index++;
  st.stack.push_back(root);
  st.on_stack[root] = true;

  while (!call_stack.empty()) {
    Frame& frame = call_stack.back();
    const auto& row = chain.transitions(frame.state);
    bool descended = false;
    while (frame.edge < row.size()) {
      const Transition& t = row[frame.edge];
      ++frame.edge;
      if (t.probability <= 0.0) continue;
      if (st.index[t.target] < 0) {
        st.index[t.target] = st.lowlink[t.target] = st.next_index++;
        st.stack.push_back(t.target);
        st.on_stack[t.target] = true;
        call_stack.push_back(Frame{t.target, 0});
        descended = true;
        break;
      }
      if (st.on_stack[t.target]) {
        st.lowlink[frame.state] =
            std::min(st.lowlink[frame.state], st.index[t.target]);
      }
    }
    if (descended) continue;
    // Frame finished.
    const StateId v = frame.state;
    call_stack.pop_back();
    if (!call_stack.empty()) {
      const StateId parent = call_stack.back().state;
      st.lowlink[parent] = std::min(st.lowlink[parent], st.lowlink[v]);
    }
    if (st.lowlink[v] == st.index[v]) {
      std::vector<StateId> component;
      while (true) {
        const StateId w = st.stack.back();
        st.stack.pop_back();
        st.on_stack[w] = false;
        component.push_back(w);
        if (w == v) break;
      }
      std::sort(component.begin(), component.end());
      st.components.push_back(std::move(component));
    }
  }
}

}  // namespace

std::vector<std::vector<StateId>> bottom_sccs(const Dtmc& chain) {
  chain.validate();
  const std::size_t n = chain.num_states();
  TarjanState st;
  st.index.assign(n, -1);
  st.lowlink.assign(n, -1);
  st.on_stack.assign(n, false);
  for (StateId s = 0; s < n; ++s) {
    if (st.index[s] < 0) tarjan(chain, st, s);
  }

  // A component is bottom iff no member has a positive edge leaving it.
  std::vector<std::vector<StateId>> bottoms;
  for (const auto& component : st.components) {
    bool closed = true;
    for (StateId s : component) {
      for (const Transition& t : chain.transitions(s)) {
        if (t.probability > 0.0 &&
            !std::binary_search(component.begin(), component.end(),
                                t.target)) {
          closed = false;
          break;
        }
      }
      if (!closed) break;
    }
    if (closed) bottoms.push_back(component);
  }
  return bottoms;
}

std::vector<double> stationary_distribution(
    const Dtmc& chain, const std::vector<StateId>& component) {
  TML_REQUIRE(!component.empty(), "stationary_distribution: empty component");
  const std::size_t k = component.size();
  std::vector<int> local(chain.num_states(), -1);
  for (std::size_t i = 0; i < k; ++i) {
    local[component[i]] = static_cast<int>(i);
  }
  // Closedness check.
  for (StateId s : component) {
    for (const Transition& t : chain.transitions(s)) {
      TML_REQUIRE(t.probability <= 0.0 || local[t.target] >= 0,
                  "stationary_distribution: component is not closed (edge "
                      << s << " -> " << t.target << ")");
    }
  }
  // Solve π (P − I) = 0 with Σ π = 1: transpose system with the last
  // equation replaced by the normalization row.
  Matrix a(k, k);
  std::vector<double> b(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    // Row j of the system: Σ_i π_i P(i, j) − π_j = 0.
    a(j, j) -= 1.0;
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (const Transition& t : chain.transitions(component[i])) {
      if (t.probability <= 0.0) continue;
      a(static_cast<std::size_t>(local[t.target]), i) += t.probability;
    }
  }
  for (std::size_t i = 0; i < k; ++i) a(k - 1, i) = 1.0;
  b[k - 1] = 1.0;
  std::vector<double> pi = solve_linear_system(std::move(a), std::move(b));
  // Numeric hygiene: clamp tiny negatives, renormalize.
  double total = 0.0;
  for (double& p : pi) {
    p = std::max(p, 0.0);
    total += p;
  }
  TML_REQUIRE(total > 0.0, "stationary_distribution: degenerate solution");
  for (double& p : pi) p /= total;
  return pi;
}

std::vector<double> long_run_distribution(const Dtmc& chain) {
  const auto bottoms = bottom_sccs(chain);
  std::vector<double> occupancy(chain.num_states(), 0.0);
  for (const auto& component : bottoms) {
    StateSet member(chain.num_states(), false);
    for (StateId s : component) member[s] = true;
    const double reach =
        dtmc_reachability(chain, member)[chain.initial_state()];
    if (reach <= 0.0) continue;
    const std::vector<double> pi = stationary_distribution(chain, component);
    for (std::size_t i = 0; i < component.size(); ++i) {
      occupancy[component[i]] += reach * pi[i];
    }
  }
  return occupancy;
}

double long_run_probability(const Dtmc& chain, const StateSet& states) {
  TML_REQUIRE(states.size() == chain.num_states(),
              "long_run_probability: set size mismatch");
  const std::vector<double> occupancy = long_run_distribution(chain);
  double total = 0.0;
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (states[s]) total += occupancy[s];
  }
  return total;
}

}  // namespace tml
