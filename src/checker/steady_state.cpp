#include "src/checker/steady_state.hpp"

#include <algorithm>

#include "src/common/matrix.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

/// Iterative Tarjan SCC (explicit stack; recursion depth would otherwise
/// track the longest chain path).
struct TarjanState {
  std::vector<int> index;
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<StateId> stack;
  int next_index = 0;
  std::vector<std::vector<StateId>> components;
};

void tarjan(const CompiledModel& model, TarjanState& st, StateId root) {
  struct Frame {
    StateId state;
    std::uint32_t edge;
  };
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<Frame> call_stack{{root, choice_start[root]}};
  st.index[root] = st.lowlink[root] = st.next_index++;
  st.stack.push_back(root);
  st.on_stack[root] = true;

  while (!call_stack.empty()) {
    Frame& frame = call_stack.back();
    const std::uint32_t row_end = choice_start[frame.state + 1];
    bool descended = false;
    while (frame.edge < row_end) {
      const std::uint32_t k = frame.edge;
      ++frame.edge;
      if (prob[k] <= 0.0) continue;
      const StateId succ = target[k];
      if (st.index[succ] < 0) {
        st.index[succ] = st.lowlink[succ] = st.next_index++;
        st.stack.push_back(succ);
        st.on_stack[succ] = true;
        call_stack.push_back(Frame{succ, choice_start[succ]});
        descended = true;
        break;
      }
      if (st.on_stack[succ]) {
        st.lowlink[frame.state] =
            std::min(st.lowlink[frame.state], st.index[succ]);
      }
    }
    if (descended) continue;
    // Frame finished.
    const StateId v = frame.state;
    call_stack.pop_back();
    if (!call_stack.empty()) {
      const StateId parent = call_stack.back().state;
      st.lowlink[parent] = std::min(st.lowlink[parent], st.lowlink[v]);
    }
    if (st.lowlink[v] == st.index[v]) {
      std::vector<StateId> component;
      while (true) {
        const StateId w = st.stack.back();
        st.stack.pop_back();
        st.on_stack[w] = false;
        component.push_back(w);
        if (w == v) break;
      }
      std::sort(component.begin(), component.end());
      st.components.push_back(std::move(component));
    }
  }
}

}  // namespace

std::vector<std::vector<StateId>> bottom_sccs(const CompiledModel& model) {
  TML_REQUIRE(model.deterministic(),
              "bottom_sccs: compiled model is not a DTMC");
  const std::size_t n = model.num_states();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  TarjanState st;
  st.index.assign(n, -1);
  st.lowlink.assign(n, -1);
  st.on_stack.assign(n, false);
  for (StateId s = 0; s < n; ++s) {
    if (st.index[s] < 0) tarjan(model, st, s);
  }

  // A component is bottom iff no member has a positive edge leaving it.
  std::vector<std::vector<StateId>> bottoms;
  for (const auto& component : st.components) {
    bool closed = true;
    for (StateId s : component) {
      for (std::uint32_t k = choice_start[s]; k < choice_start[s + 1]; ++k) {
        if (prob[k] > 0.0 &&
            !std::binary_search(component.begin(), component.end(),
                                target[k])) {
          closed = false;
          break;
        }
      }
      if (!closed) break;
    }
    if (closed) bottoms.push_back(component);
  }
  return bottoms;
}

std::vector<std::vector<StateId>> bottom_sccs(const Dtmc& chain) {
  return bottom_sccs(compile(chain));
}

std::vector<double> stationary_distribution(
    const CompiledModel& model, const std::vector<StateId>& component) {
  TML_REQUIRE(model.deterministic(),
              "stationary_distribution: compiled model is not a DTMC");
  TML_REQUIRE(!component.empty(), "stationary_distribution: empty component");
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  const std::size_t k = component.size();
  std::vector<int> local(model.num_states(), -1);
  for (std::size_t i = 0; i < k; ++i) {
    local[component[i]] = static_cast<int>(i);
  }
  // Closedness check.
  for (StateId s : component) {
    for (std::uint32_t t = choice_start[s]; t < choice_start[s + 1]; ++t) {
      TML_REQUIRE(prob[t] <= 0.0 || local[target[t]] >= 0,
                  "stationary_distribution: component is not closed (edge "
                      << s << " -> " << target[t] << ")");
    }
  }
  // Solve π (P − I) = 0 with Σ π = 1: transpose system with the last
  // equation replaced by the normalization row.
  Matrix a(k, k);
  std::vector<double> b(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    // Row j of the system: Σ_i π_i P(i, j) − π_j = 0.
    a(j, j) -= 1.0;
  }
  for (std::size_t i = 0; i < k; ++i) {
    const StateId s = component[i];
    for (std::uint32_t t = choice_start[s]; t < choice_start[s + 1]; ++t) {
      if (prob[t] <= 0.0) continue;
      a(static_cast<std::size_t>(local[target[t]]), i) += prob[t];
    }
  }
  for (std::size_t i = 0; i < k; ++i) a(k - 1, i) = 1.0;
  b[k - 1] = 1.0;
  std::vector<double> pi = solve_linear_system(std::move(a), std::move(b));
  // Numeric hygiene: clamp tiny negatives, renormalize.
  double total = 0.0;
  for (double& p : pi) {
    p = std::max(p, 0.0);
    total += p;
  }
  TML_REQUIRE(total > 0.0, "stationary_distribution: degenerate solution");
  for (double& p : pi) p /= total;
  return pi;
}

std::vector<double> stationary_distribution(
    const Dtmc& chain, const std::vector<StateId>& component) {
  return stationary_distribution(compile(chain), component);
}

std::vector<double> long_run_distribution(const CompiledModel& model) {
  const auto bottoms = bottom_sccs(model);
  std::vector<double> occupancy(model.num_states(), 0.0);
  for (const auto& component : bottoms) {
    StateSet member(model.num_states(), false);
    for (StateId s : component) member[s] = true;
    const double reach =
        dtmc_reachability(model, member)[model.initial_state()];
    if (reach <= 0.0) continue;
    const std::vector<double> pi = stationary_distribution(model, component);
    for (std::size_t i = 0; i < component.size(); ++i) {
      occupancy[component[i]] += reach * pi[i];
    }
  }
  return occupancy;
}

std::vector<double> long_run_distribution(const Dtmc& chain) {
  return long_run_distribution(compile(chain));
}

double long_run_probability(const CompiledModel& model,
                            const StateSet& states) {
  TML_REQUIRE(states.size() == model.num_states(),
              "long_run_probability: set size mismatch");
  const std::vector<double> occupancy = long_run_distribution(model);
  double total = 0.0;
  for (StateId s = 0; s < model.num_states(); ++s) {
    if (states[s]) total += occupancy[s];
  }
  return total;
}

double long_run_probability(const Dtmc& chain, const StateSet& states) {
  return long_run_probability(compile(chain), states);
}

}  // namespace tml
