// Counterexample evidence for violated probabilistic reachability bounds.
//
// When a model violates an upper-bound property P<=b [F bad] — the typical
// safety shape — a probabilistic counterexample is a set of paths into the
// bad region whose probability mass exceeds b (Han & Katoen). This module
// produces the strongest such evidence greedily: the k most probable
// finite paths from the initial state to the target set, found by Dijkstra
// search in −log-probability space over a path-prefix graph.
//
// The repair pipeline uses these paths as diagnostics: they show *which*
// behaviour pushes the property over its bound, and therefore which
// transitions a perturbation scheme should make controllable (they are the
// manual analogue of sensitivity_analysis).

#pragma once

#include <string>
#include <vector>

#include "src/mdp/model.hpp"

namespace tml {

/// One evidence path with its probability.
struct EvidencePath {
  std::vector<StateId> states;  ///< from the initial state into the target
  double probability = 0.0;
};

/// A (partial) counterexample: paths sorted by decreasing probability and
/// their total mass.
struct Counterexample {
  std::vector<EvidencePath> paths;
  double total_probability = 0.0;
  /// True when total_probability exceeds the bound it was asked to beat.
  bool exceeds_bound = false;

  std::string to_string(const Dtmc& chain) const;
};

/// Collects the most probable paths from the chain's initial state to
/// `targets` until either their mass exceeds `bound`, `max_paths` paths
/// were found, or no further path exists. Paths are loop-free extensions
/// found by best-first search; cyclic models contribute their acyclic
/// evidence (mass may then stay below the true reachability probability).
Counterexample strongest_evidence(const Dtmc& chain, const StateSet& targets,
                                  double bound,
                                  std::size_t max_paths = 64);

}  // namespace tml
