// Result types returned by the PCTL checkers.

#pragma once

#include <optional>
#include <vector>

#include "src/mdp/model.hpp"

namespace tml {

/// Outcome of checking one PCTL formula against a model.
///
/// For boolean formulas, `satisfied` reports the verdict at the initial
/// state and `sat_states` the full satisfaction set. For quantitative
/// queries (`Pmax=?` etc.), `value` holds the number at the initial state
/// and `values` the per-state vector. For boolean P/R operators at top
/// level, the checker also fills `value`/`values` with the underlying
/// measured quantity — the repair pipeline uses this to report "achieved vs
/// required" (e.g. expected attempts = 41.2 vs bound 40).
struct CheckResult {
  bool satisfied = false;
  StateSet sat_states;
  std::optional<double> value;
  std::vector<double> values;
  /// Number of states the solvers actually ran on when the check went
  /// through the bisimulation quotient (CheckOptions::quotient): the block
  /// count of the minimized model. 0 means the quotient pass was not used —
  /// either not requested, or refinement hit its budget and the check
  /// degraded to the unquotiented model. `sat_states`/`values` are always
  /// in the *original* state space (lifted through the block map).
  std::size_t quotient_states = 0;
};

}  // namespace tml
