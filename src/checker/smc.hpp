// Statistical model checking (SMC) for DTMCs.
//
// A simulation-based alternative to the exact engines: the probability of
// a path formula is estimated by Monte-Carlo sampling with a
// Chernoff–Hoeffding guarantee — after
//
//     n >= ln(2/δ) / (2 ε²)
//
// samples, the estimate p̂ satisfies P(|p̂ − p| > ε) < δ. Bounded
// operators are decided exactly per sample. Unbounded F/U/G walk until the
// path is *decided*: reaching the goal (or violating the stay region)
// decides immediately, and a graph precomputation (dtmc_prob0 on the
// relevant submodel) decides paths that enter a region from which the
// outcome is certain — the trap states that used to burn the whole
// `max_steps` budget. A path still undecided at `max_steps` is counted in
// `SmcResult::truncated`; when the truncation rate exceeds
// `SmcOptions::max_truncation_rate` (default 0: none tolerated),
// `smc_check` throws NumericError instead of silently reporting an
// estimate biased low. Tolerated truncation widens the reported interval:
// the true satisfaction probability of a truncated path is unknown, so
// `epsilon` grows by the truncation rate (estimate ∈ [hits/n,
// (hits+truncated)/n] before sampling error).
//
// SMC serves two roles here: an independent oracle for the exact checkers
// in the test suite, and the only practical engine when state spaces
// outgrow the linear-algebra engines — the scalability note of the
// paper's future work.

#pragma once

#include "src/checker/results.hpp"
#include "src/common/budget.hpp"
#include "src/common/rng.hpp"
#include "src/logic/pctl.hpp"
#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"

namespace tml {

struct SmcOptions {
  double epsilon = 0.01;        ///< absolute error bound
  double delta = 0.02;          ///< failure probability of the bound
  std::size_t max_steps = 5000; ///< truncation horizon for unbounded paths
  /// Largest tolerated fraction of sample paths still undecided at
  /// `max_steps`. Above it `smc_check` throws NumericError (the estimate
  /// would be silently biased); below it the truncated count is reported
  /// and the guarantee interval widened accordingly.
  double max_truncation_rate = 0.0;
  std::uint64_t seed = 1;
  /// Worker threads for the sample loop (0 = TML_THREADS / hardware). The
  /// budget is sharded into `shard_size` blocks, each with an independent
  /// Rng stream split off `seed`, so the result is bitwise identical for
  /// every thread count (threads = 1 runs the same shards serially).
  std::size_t threads = 0;
  std::size_t shard_size = 1024;  ///< samples per RNG shard (thread-agnostic)
  /// Resource budget. Polled once per shard at fixed batch boundaries
  /// (independent of thread count), so an iteration cap of k runs exactly
  /// the first k shards — bitwise reproducible across TML_THREADS. On
  /// exhaustion smc_check returns the estimate over the samples actually
  /// drawn with `epsilon` recomputed to the guarantee those samples earn
  /// (1.0 when nothing was drawn), flagged kBudgetExhausted.
  Budget budget = default_budget();
};

struct SmcResult {
  double estimate = 0.0;     ///< p̂ (always over the full budget)
  std::size_t samples = 0;   ///< n drawn
  double epsilon = 0.0;      ///< guarantee half-width
  double confidence = 0.0;   ///< 1 − δ
  /// For bounded operators (P⋈b): verdict by comparing p̂ against the
  /// bound. `decisive` is true when the verdict separated from b by more
  /// than ε — detected as soon as no outcome of the remaining budget could
  /// keep the final estimate within ε of b, not only by the comparison at
  /// the end. `decided_after` records how many samples (a whole number of
  /// shards) had been consumed when the verdict became certain (0 when it
  /// never did; p̂ itself is still reported over the full budget).
  bool satisfied = false;
  bool decisive = false;
  std::size_t decided_after = 0;
  /// Sample paths still undecided when the `max_steps` horizon hit (merged
  /// per shard in shard order — deterministic across thread counts). Only
  /// non-zero when `max_truncation_rate` tolerated them; `epsilon` already
  /// includes the widening `truncated / samples`.
  std::size_t truncated = 0;
  /// kBudgetExhausted when the sample budget stopped at a shard boundary
  /// before the full Chernoff sample size; `samples`/`epsilon` then report
  /// the confidence actually earned and `decisive` stays false unless the
  /// partial prefix already separated from the bound.
  BudgetStatus budget_status = BudgetStatus::kOk;
  BudgetStop budget_stop = BudgetStop::kNone;
};

/// Per-sample verdict of one simulated trajectory.
enum class PathSample {
  kSatisfied,  ///< the path provably satisfies the formula
  kViolated,   ///< the path provably violates the formula
  kUndecided,  ///< truncated at max_steps with the outcome still open
};

/// Required sample size for the (ε, δ) guarantee.
std::size_t chernoff_sample_size(double epsilon, double delta);

/// Evaluates one sampled trajectory against a path formula (exposed for
/// tests). Unbounded operators walk up to `max_steps` and report
/// kUndecided when the horizon hits first. The compiled model must be
/// deterministic; successors are drawn straight from the CSR probability
/// spans (no per-step weight vector is built). `certain_no` / `certain_yes`
/// optionally name states where the outcome is already graph-certain
/// (cannot reach the goal / cannot violate the invariant): entering one
/// decides the path without walking further.
PathSample sample_path_outcome(const CompiledModel& model,
                               const PathFormula& path,
                               const StateSet& left_sat,
                               const StateSet& right_sat,
                               std::size_t max_steps, Rng& rng,
                               const StateSet* certain_no = nullptr,
                               const StateSet* certain_yes = nullptr);

/// Back-compat wrapper: kSatisfied → true, anything else → false (the
/// historical lower-bound reading of a truncated path).
bool sample_path_satisfies(const CompiledModel& model, const PathFormula& path,
                           const StateSet& left_sat, const StateSet& right_sat,
                           std::size_t max_steps, Rng& rng);
bool sample_path_satisfies(const Dtmc& chain, const PathFormula& path,
                           const StateSet& left_sat, const StateSet& right_sat,
                           std::size_t max_steps, Rng& rng);

/// Estimates the probability of the path formula of `formula` (which must
/// be a kProb or kProbQuery node) from the chain's initial state. The model
/// is compiled once; every sample walks the flat CSR arrays.
SmcResult smc_check(const CompiledModel& model, const StateFormula& formula,
                    const SmcOptions& options = {});
SmcResult smc_check(const Dtmc& chain, const StateFormula& formula,
                    const SmcOptions& options = {});

}  // namespace tml
