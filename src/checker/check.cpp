#include "src/checker/check.hpp"

#include <cmath>

#include "src/checker/reachability.hpp"
#include "src/common/stats.hpp"
#include "src/logic/parser.hpp"
#include "src/mdp/quotient.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

Objective resolve_objective(const StateFormula& formula) {
  if (formula.quantifier()) {
    return *formula.quantifier() == Quantifier::kMax ? Objective::kMaximize
                                                     : Objective::kMinimize;
  }
  // PRISM resolution for bounded operators on MDPs: an upper bound must hold
  // for the worst (maximizing) scheduler, a lower bound for the minimizing
  // one.
  switch (formula.comparison()) {
    case Comparison::kLess:
    case Comparison::kLessEqual:
      return Objective::kMaximize;
    case Comparison::kGreater:
    case Comparison::kGreaterEqual:
      return Objective::kMinimize;
  }
  return Objective::kMaximize;
}

Objective flip(Objective objective) {
  return objective == Objective::kMaximize ? Objective::kMinimize
                                           : Objective::kMaximize;
}

// ---------------------------------------------------------------------------
// Checker over the compiled CSR form. One class serves both model kinds: the
// quantitative primitives dispatch on CompiledModel::deterministic() — DTMCs
// get the exact linear-system engines, MDPs the qualitative-precomputation +
// value-iteration engines.

class Checker {
 public:
  explicit Checker(const CompiledModel& model, const CheckOptions& options = {})
      : model_(model), options_(options) {}

  StateSet sat(const StateFormula& formula) {
    const std::size_t n = model_.num_states();
    switch (formula.kind()) {
      case StateFormula::Kind::kTrue:
        return StateSet(n, true);
      case StateFormula::Kind::kFalse:
        return StateSet(n, false);
      case StateFormula::Kind::kLabel:
        return model_.states_with_label(formula.label());
      case StateFormula::Kind::kNot:
        return complement(sat(formula.operand()));
      case StateFormula::Kind::kAnd:
        return set_intersection(sat(formula.operand(0)),
                                sat(formula.operand(1)));
      case StateFormula::Kind::kOr:
        return set_union(sat(formula.operand(0)), sat(formula.operand(1)));
      case StateFormula::Kind::kImplies:
        return set_union(complement(sat(formula.operand(0))),
                         sat(formula.operand(1)));
      case StateFormula::Kind::kProb: {
        const std::vector<double> values = prob_values(formula);
        StateSet out(n, false);
        for (StateId s = 0; s < n; ++s) {
          out[s] = compare(values[s], formula.comparison(), formula.bound());
        }
        return out;
      }
      case StateFormula::Kind::kReward: {
        const std::vector<double> values = reward_values(formula);
        StateSet out(n, false);
        for (StateId s = 0; s < n; ++s) {
          out[s] = compare(values[s], formula.comparison(), formula.bound());
        }
        return out;
      }
      case StateFormula::Kind::kProbQuery:
      case StateFormula::Kind::kRewardQuery:
        throw Error(
            "satisfying_states: quantitative query has no satisfaction set: " +
            formula.to_string());
    }
    throw Error("satisfying_states: unhandled formula kind");
  }

  std::vector<double> values(const StateFormula& formula) {
    switch (formula.kind()) {
      case StateFormula::Kind::kProb:
      case StateFormula::Kind::kProbQuery:
        return prob_values(formula);
      case StateFormula::Kind::kReward:
      case StateFormula::Kind::kRewardQuery:
        return reward_values(formula);
      default:
        throw Error("quantitative_values: formula is not a P/R operator: " +
                    formula.to_string());
    }
  }

 private:
  /// SolverOptions carrying this check's budget and thread count; the
  /// method/tolerance knobs keep their process defaults (tml_check --method
  /// still applies to server-side checks).
  SolverOptions solver_options() const {
    SolverOptions solver;
    solver.budget = options_.budget;
    solver.threads = options_.threads;
    return solver;
  }

  std::vector<double> until(const StateSet& stay, const StateSet& goal,
                            Objective objective) {
    if (model_.deterministic()) return dtmc_until(model_, stay, goal);
    // solver_options() preserves default_solve_method(): unbounded MDP
    // until runs the sound interval-topological engine unless a tool has
    // switched the process default (tml_check --method).
    return mdp_until(model_, stay, goal, objective, solver_options());
  }

  std::vector<double> bounded_until(const StateSet& stay, const StateSet& goal,
                                    std::size_t bound, Objective objective) {
    if (model_.deterministic()) {
      return dtmc_bounded_until(model_, stay, goal, bound, options_.threads,
                                &options_.budget);
    }
    return mdp_bounded_until(model_, stay, goal, bound, objective,
                             options_.threads, &options_.budget);
  }

  /// One-step probability of entering `goal`, optimized over choices. For a
  /// deterministic model each row has a single choice, so the same CSR loop
  /// serves both kinds.
  std::vector<double> next(const StateSet& goal, Objective objective) {
    const std::size_t n = model_.num_states();
    const auto& row_start = model_.row_start();
    const auto& choice_start = model_.choice_start();
    const auto& target = model_.target();
    const auto& prob = model_.prob();
    std::vector<double> values(n, 0.0);
    for (StateId s = 0; s < n; ++s) {
      bool first = true;
      double best = 0.0;
      for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
        double p = 0.0;
        for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
          if (goal[target[k]]) p += prob[k];
        }
        if (first ||
            (objective == Objective::kMaximize ? p > best : p < best)) {
          best = p;
          first = false;
        }
      }
      values[s] = best;
    }
    return values;
  }

  std::vector<double> reach_reward(const StateSet& goal, Objective objective) {
    if (model_.deterministic()) return dtmc_total_reward(model_, goal);
    return total_reward_to_target(model_, goal, objective, solver_options())
        .values;
  }

  std::vector<double> cumulative_reward(std::size_t horizon,
                                        Objective objective) {
    if (model_.deterministic()) {
      return dtmc_cumulative_reward(model_, horizon, options_.threads,
                                    &options_.budget);
    }
    return mdp_cumulative_reward(model_, horizon, objective, options_.threads,
                                 &options_.budget);
  }

  std::vector<double> prob_values(const StateFormula& formula) {
    const Objective objective = formula.kind() == StateFormula::Kind::kProb
                                    ? resolve_objective(formula)
                                    : (formula.quantifier() == Quantifier::kMin
                                           ? Objective::kMinimize
                                           : Objective::kMaximize);
    const PathFormula& path = formula.path();
    switch (path.kind()) {
      case PathFormula::Kind::kNext:
        return next(sat(path.right()), objective);
      case PathFormula::Kind::kUntil: {
        const StateSet stay = sat(path.left());
        const StateSet goal = sat(path.right());
        if (path.step_bound()) {
          return bounded_until(stay, goal, *path.step_bound(), objective);
        }
        return until(stay, goal, objective);
      }
      case PathFormula::Kind::kEventually: {
        const StateSet stay(model_.num_states(), true);
        const StateSet goal = sat(path.right());
        if (path.step_bound()) {
          return bounded_until(stay, goal, *path.step_bound(), objective);
        }
        return until(stay, goal, objective);
      }
      case PathFormula::Kind::kGlobally: {
        // P(G φ) = 1 − P(F ¬φ), with the scheduler direction flipped.
        const StateSet bad = complement(sat(path.right()));
        const StateSet stay(model_.num_states(), true);
        std::vector<double> reach =
            path.step_bound()
                ? bounded_until(stay, bad, *path.step_bound(), flip(objective))
                : until(stay, bad, flip(objective));
        for (double& v : reach) v = 1.0 - v;
        return reach;
      }
    }
    throw Error("prob_values: unhandled path formula kind");
  }

  std::vector<double> reward_values(const StateFormula& formula) {
    const Objective objective = formula.kind() == StateFormula::Kind::kReward
                                    ? resolve_objective(formula)
                                    : (formula.quantifier() == Quantifier::kMin
                                           ? Objective::kMinimize
                                           : Objective::kMaximize);
    if (formula.reward_path_kind() ==
        StateFormula::RewardPathKind::kReachability) {
      return reach_reward(sat(formula.reward_target()), objective);
    }
    return cumulative_reward(formula.reward_horizon(), objective);
  }

  const CompiledModel& model_;
  CheckOptions options_;
};

/// One check against one concrete model (no quotient pass). Factored out of
/// check_impl so the quotient path can run the solvers on the minimized
/// model without double-counting the checker.* stats.
CheckResult check_direct(const CompiledModel& model,
                         const StateFormula& formula,
                         const CheckOptions& options) {
  Checker checker(model, options);
  CheckResult result;
  if (formula.is_quantitative()) {
    result.values = checker.values(formula);
    result.value = result.values[model.initial_state()];
    // A quantitative query has no boolean verdict; report "satisfied" as
    // true so pipelines that only look at values don't misread it.
    result.satisfied = true;
    return result;
  }
  result.sat_states = checker.sat(formula);
  result.satisfied = result.sat_states[model.initial_state()];
  if (formula.kind() == StateFormula::Kind::kProb ||
      formula.kind() == StateFormula::Kind::kReward) {
    result.values = checker.values(formula);
    result.value = result.values[model.initial_state()];
  }
  return result;
}

CheckResult check_impl(const CompiledModel& model, const StateFormula& formula,
                       const CheckOptions& options = {}) {
  static stats::Timer& t_check = stats::timer("checker.check.time");
  static stats::Counter& c_checks = stats::counter("checker.checks");
  const stats::ScopedTimer span(t_check);
  c_checks.bump();
  if (options.quotient) {
    QuotientOptions quotient_options;
    quotient_options.budget = options.budget;
    const QuotientResult q = bisimulation_quotient(model, quotient_options);
    if (q.complete) {
      CheckResult result = check_direct(q.quotient, formula, options);
      // Lift every per-state channel back to the original state space. The
      // initial-state verdict/value need no translation: the quotient's
      // initial state is the block of the original initial state.
      if (!result.values.empty()) {
        result.values = lift_values(q.state_map, result.values);
      }
      if (result.sat_states.size() > 0) {
        result.sat_states = lift_states(q.state_map, result.sat_states);
      }
      result.quotient_states = q.quotient.num_states();
      return result;
    }
    // Refinement hit its budget: the partial partition is not a
    // bisimulation, so degrade to the unquotiented model (the documented
    // graceful-degradation contract; quotient_states stays 0).
  }
  return check_direct(model, formula, options);
}

}  // namespace

StateSet satisfying_states(const CompiledModel& model,
                           const StateFormula& formula) {
  return Checker(model).sat(formula);
}

StateSet satisfying_states(const Dtmc& chain, const StateFormula& formula) {
  return satisfying_states(compile(chain), formula);
}

StateSet satisfying_states(const Mdp& mdp, const StateFormula& formula) {
  return satisfying_states(compile(mdp), formula);
}

std::vector<double> quantitative_values(const CompiledModel& model,
                                        const StateFormula& formula) {
  return Checker(model).values(formula);
}

std::vector<double> quantitative_values(const Dtmc& chain,
                                        const StateFormula& formula) {
  return quantitative_values(compile(chain), formula);
}

std::vector<double> quantitative_values(const Mdp& mdp,
                                        const StateFormula& formula) {
  return quantitative_values(compile(mdp), formula);
}

CheckResult check(const CompiledModel& model, const StateFormula& formula) {
  return check_impl(model, formula);
}

CheckResult check(const CompiledModel& model, const StateFormula& formula,
                  const CheckOptions& options) {
  return check_impl(model, formula, options);
}

CheckResult check(const Dtmc& chain, const StateFormula& formula) {
  return check_impl(compile(chain), formula);
}

CheckResult check(const Mdp& mdp, const StateFormula& formula) {
  return check_impl(compile(mdp), formula);
}

CheckResult check(const Dtmc& chain, const std::string& formula_text) {
  return check(chain, *parse_pctl(formula_text));
}

CheckResult check(const Mdp& mdp, const std::string& formula_text) {
  return check(mdp, *parse_pctl(formula_text));
}

}  // namespace tml
