#include "src/checker/check.hpp"

#include <cmath>

#include "src/checker/reachability.hpp"
#include "src/logic/parser.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

Objective resolve_objective(const StateFormula& formula) {
  if (formula.quantifier()) {
    return *formula.quantifier() == Quantifier::kMax ? Objective::kMaximize
                                                     : Objective::kMinimize;
  }
  // PRISM resolution for bounded operators on MDPs: an upper bound must hold
  // for the worst (maximizing) scheduler, a lower bound for the minimizing
  // one.
  switch (formula.comparison()) {
    case Comparison::kLess:
    case Comparison::kLessEqual:
      return Objective::kMaximize;
    case Comparison::kGreater:
    case Comparison::kGreaterEqual:
      return Objective::kMinimize;
  }
  return Objective::kMaximize;
}

Objective flip(Objective objective) {
  return objective == Objective::kMaximize ? Objective::kMinimize
                                           : Objective::kMaximize;
}

// ---------------------------------------------------------------------------
// Generic checker over a model M ∈ {Dtmc, Mdp}. The Engine concept below
// abstracts the handful of quantitative primitives that differ.

template <typename Model>
struct Engine;

template <>
struct Engine<Dtmc> {
  static std::vector<double> until(const Dtmc& m, const StateSet& stay,
                                   const StateSet& goal, Objective) {
    return dtmc_until(m, stay, goal);
  }
  static std::vector<double> bounded_until(const Dtmc& m, const StateSet& stay,
                                           const StateSet& goal,
                                           std::size_t bound, Objective) {
    return dtmc_bounded_until(m, stay, goal, bound);
  }
  static std::vector<double> next(const Dtmc& m, const StateSet& goal,
                                  Objective) {
    std::vector<double> values(m.num_states(), 0.0);
    for (StateId s = 0; s < m.num_states(); ++s) {
      double p = 0.0;
      for (const Transition& t : m.transitions(s)) {
        if (goal[t.target]) p += t.probability;
      }
      values[s] = p;
    }
    return values;
  }
  static std::vector<double> reach_reward(const Dtmc& m, const StateSet& goal,
                                          Objective) {
    return dtmc_total_reward(m, goal);
  }
  static std::vector<double> cumulative_reward(const Dtmc& m,
                                               std::size_t horizon,
                                               Objective) {
    return dtmc_cumulative_reward(m, horizon);
  }
};

template <>
struct Engine<Mdp> {
  static std::vector<double> until(const Mdp& m, const StateSet& stay,
                                   const StateSet& goal, Objective objective) {
    return mdp_until(m, stay, goal, objective);
  }
  static std::vector<double> bounded_until(const Mdp& m, const StateSet& stay,
                                           const StateSet& goal,
                                           std::size_t bound,
                                           Objective objective) {
    return mdp_bounded_until(m, stay, goal, bound, objective);
  }
  static std::vector<double> next(const Mdp& m, const StateSet& goal,
                                  Objective objective) {
    std::vector<double> values(m.num_states(), 0.0);
    for (StateId s = 0; s < m.num_states(); ++s) {
      bool first = true;
      double best = 0.0;
      for (const Choice& c : m.choices(s)) {
        double p = 0.0;
        for (const Transition& t : c.transitions) {
          if (goal[t.target]) p += t.probability;
        }
        if (first || (objective == Objective::kMaximize ? p > best
                                                        : p < best)) {
          best = p;
          first = false;
        }
      }
      values[s] = best;
    }
    return values;
  }
  static std::vector<double> reach_reward(const Mdp& m, const StateSet& goal,
                                          Objective objective) {
    SolverOptions options;
    return total_reward_to_target(m, goal, objective, options).values;
  }
  static std::vector<double> cumulative_reward(const Mdp& m,
                                               std::size_t horizon,
                                               Objective objective) {
    return mdp_cumulative_reward(m, horizon, objective);
  }
};

template <typename Model>
class Checker {
 public:
  explicit Checker(const Model& model) : model_(model) {}

  StateSet sat(const StateFormula& formula) {
    const std::size_t n = model_.num_states();
    switch (formula.kind()) {
      case StateFormula::Kind::kTrue:
        return StateSet(n, true);
      case StateFormula::Kind::kFalse:
        return StateSet(n, false);
      case StateFormula::Kind::kLabel:
        return model_.states_with_label(formula.label());
      case StateFormula::Kind::kNot:
        return complement(sat(formula.operand()));
      case StateFormula::Kind::kAnd:
        return set_intersection(sat(formula.operand(0)),
                                sat(formula.operand(1)));
      case StateFormula::Kind::kOr:
        return set_union(sat(formula.operand(0)), sat(formula.operand(1)));
      case StateFormula::Kind::kImplies:
        return set_union(complement(sat(formula.operand(0))),
                         sat(formula.operand(1)));
      case StateFormula::Kind::kProb: {
        const std::vector<double> values = prob_values(formula);
        StateSet out(n, false);
        for (StateId s = 0; s < n; ++s) {
          out[s] = compare(values[s], formula.comparison(), formula.bound());
        }
        return out;
      }
      case StateFormula::Kind::kReward: {
        const std::vector<double> values = reward_values(formula);
        StateSet out(n, false);
        for (StateId s = 0; s < n; ++s) {
          out[s] = compare(values[s], formula.comparison(), formula.bound());
        }
        return out;
      }
      case StateFormula::Kind::kProbQuery:
      case StateFormula::Kind::kRewardQuery:
        throw Error(
            "satisfying_states: quantitative query has no satisfaction set: " +
            formula.to_string());
    }
    throw Error("satisfying_states: unhandled formula kind");
  }

  std::vector<double> values(const StateFormula& formula) {
    switch (formula.kind()) {
      case StateFormula::Kind::kProb:
      case StateFormula::Kind::kProbQuery:
        return prob_values(formula);
      case StateFormula::Kind::kReward:
      case StateFormula::Kind::kRewardQuery:
        return reward_values(formula);
      default:
        throw Error("quantitative_values: formula is not a P/R operator: " +
                    formula.to_string());
    }
  }

 private:
  std::vector<double> prob_values(const StateFormula& formula) {
    const Objective objective = formula.kind() == StateFormula::Kind::kProb
                                    ? resolve_objective(formula)
                                    : (formula.quantifier() == Quantifier::kMin
                                           ? Objective::kMinimize
                                           : Objective::kMaximize);
    const PathFormula& path = formula.path();
    switch (path.kind()) {
      case PathFormula::Kind::kNext:
        return Engine<Model>::next(model_, sat(path.right()), objective);
      case PathFormula::Kind::kUntil: {
        const StateSet stay = sat(path.left());
        const StateSet goal = sat(path.right());
        if (path.step_bound()) {
          return Engine<Model>::bounded_until(model_, stay, goal,
                                              *path.step_bound(), objective);
        }
        return Engine<Model>::until(model_, stay, goal, objective);
      }
      case PathFormula::Kind::kEventually: {
        const StateSet stay(model_.num_states(), true);
        const StateSet goal = sat(path.right());
        if (path.step_bound()) {
          return Engine<Model>::bounded_until(model_, stay, goal,
                                              *path.step_bound(), objective);
        }
        return Engine<Model>::until(model_, stay, goal, objective);
      }
      case PathFormula::Kind::kGlobally: {
        // P(G φ) = 1 − P(F ¬φ), with the scheduler direction flipped.
        const StateSet bad = complement(sat(path.right()));
        const StateSet stay(model_.num_states(), true);
        std::vector<double> reach =
            path.step_bound()
                ? Engine<Model>::bounded_until(model_, stay, bad,
                                               *path.step_bound(),
                                               flip(objective))
                : Engine<Model>::until(model_, stay, bad, flip(objective));
        for (double& v : reach) v = 1.0 - v;
        return reach;
      }
    }
    throw Error("prob_values: unhandled path formula kind");
  }

  std::vector<double> reward_values(const StateFormula& formula) {
    const Objective objective = formula.kind() == StateFormula::Kind::kReward
                                    ? resolve_objective(formula)
                                    : (formula.quantifier() == Quantifier::kMin
                                           ? Objective::kMinimize
                                           : Objective::kMaximize);
    if (formula.reward_path_kind() ==
        StateFormula::RewardPathKind::kReachability) {
      return Engine<Model>::reach_reward(model_, sat(formula.reward_target()),
                                         objective);
    }
    return Engine<Model>::cumulative_reward(model_, formula.reward_horizon(),
                                            objective);
  }

  const Model& model_;
};

template <typename Model>
CheckResult check_impl(const Model& model, const StateFormula& formula) {
  model.validate();
  Checker<Model> checker(model);
  CheckResult result;
  if (formula.is_quantitative()) {
    result.values = checker.values(formula);
    result.value = result.values[model.initial_state()];
    // A quantitative query has no boolean verdict; report "satisfied" as
    // true so pipelines that only look at values don't misread it.
    result.satisfied = true;
    return result;
  }
  result.sat_states = checker.sat(formula);
  result.satisfied = result.sat_states[model.initial_state()];
  if (formula.kind() == StateFormula::Kind::kProb ||
      formula.kind() == StateFormula::Kind::kReward) {
    result.values = checker.values(formula);
    result.value = result.values[model.initial_state()];
  }
  return result;
}

}  // namespace

StateSet satisfying_states(const Dtmc& chain, const StateFormula& formula) {
  chain.validate();
  return Checker<Dtmc>(chain).sat(formula);
}

StateSet satisfying_states(const Mdp& mdp, const StateFormula& formula) {
  mdp.validate();
  return Checker<Mdp>(mdp).sat(formula);
}

std::vector<double> quantitative_values(const Dtmc& chain,
                                        const StateFormula& formula) {
  chain.validate();
  return Checker<Dtmc>(chain).values(formula);
}

std::vector<double> quantitative_values(const Mdp& mdp,
                                        const StateFormula& formula) {
  mdp.validate();
  return Checker<Mdp>(mdp).values(formula);
}

CheckResult check(const Dtmc& chain, const StateFormula& formula) {
  return check_impl(chain, formula);
}

CheckResult check(const Mdp& mdp, const StateFormula& formula) {
  return check_impl(mdp, formula);
}

CheckResult check(const Dtmc& chain, const std::string& formula_text) {
  return check(chain, *parse_pctl(formula_text));
}

CheckResult check(const Mdp& mdp, const std::string& formula_text) {
  return check(mdp, *parse_pctl(formula_text));
}

}  // namespace tml
