#include "src/checker/smc.hpp"

#include <cmath>
#include <numeric>

#include "src/checker/check.hpp"
#include "src/common/parallel.hpp"

namespace tml {

std::size_t chernoff_sample_size(double epsilon, double delta) {
  TML_REQUIRE(epsilon > 0.0 && epsilon < 1.0,
              "chernoff_sample_size: epsilon out of (0,1)");
  TML_REQUIRE(delta > 0.0 && delta < 1.0,
              "chernoff_sample_size: delta out of (0,1)");
  return static_cast<std::size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

namespace {

/// One simulation step of a deterministic compiled model: for a DTMC the
/// choice index equals the state id, so the state's transition row is the
/// CSR probability span itself. The inverse-CDF walk skips categorical()'s
/// per-call weight validation and total — compile() already guarantees a
/// stochastic row, so one uniform draw against the running prefix sum
/// suffices (this loop is the entire per-sample cost of SMC).
StateId step(const CompiledModel& model, StateId current, Rng& rng) {
  const std::span<const double> row = model.probabilities(current);
  const std::span<const StateId> targets = model.targets(current);
  const double r = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < row.size(); ++i) {
    acc += row[i];
    if (r < acc) return targets[i];
  }
  return targets[row.size() - 1];
}

}  // namespace

bool sample_path_satisfies(const CompiledModel& model, const PathFormula& path,
                           const StateSet& left_sat, const StateSet& right_sat,
                           std::size_t max_steps, Rng& rng) {
  TML_REQUIRE(model.deterministic(),
              "sample_path_satisfies: compiled model is not a DTMC");
  StateId current = model.initial_state();
  switch (path.kind()) {
    case PathFormula::Kind::kNext:
      return right_sat[step(model, current, rng)];
    case PathFormula::Kind::kUntil:
    case PathFormula::Kind::kEventually: {
      const std::size_t bound =
          path.step_bound() ? *path.step_bound() : max_steps;
      const bool constrained = path.kind() == PathFormula::Kind::kUntil;
      for (std::size_t t = 0; /* step check below */; ++t) {
        if (right_sat[current]) return true;
        if (constrained && !left_sat[current]) return false;
        if (t >= bound) return false;
        current = step(model, current, rng);
      }
    }
    case PathFormula::Kind::kGlobally: {
      const std::size_t bound =
          path.step_bound() ? *path.step_bound() : max_steps;
      for (std::size_t t = 0; t <= bound; ++t) {
        if (!right_sat[current]) return false;
        if (t == bound) break;
        current = step(model, current, rng);
      }
      return true;
    }
  }
  return false;
}

bool sample_path_satisfies(const Dtmc& chain, const PathFormula& path,
                           const StateSet& left_sat, const StateSet& right_sat,
                           std::size_t max_steps, Rng& rng) {
  return sample_path_satisfies(compile(chain), path, left_sat, right_sat,
                               max_steps, rng);
}

SmcResult smc_check(const CompiledModel& model, const StateFormula& formula,
                    const SmcOptions& options) {
  TML_REQUIRE(model.deterministic(), "smc_check: compiled model is not a DTMC");
  TML_REQUIRE(formula.kind() == StateFormula::Kind::kProb ||
                  formula.kind() == StateFormula::Kind::kProbQuery,
              "smc_check: formula must be a P operator, got "
                  << formula.to_string());
  const PathFormula& path = formula.path();
  // Operand satisfaction sets are resolved exactly (they are state
  // formulas; only the path probability is sampled).
  const StateSet right = satisfying_states(model, path.right());
  const StateSet left = path.kind() == PathFormula::Kind::kUntil
                            ? satisfying_states(model, path.left())
                            : StateSet(model.num_states(), true);

  SmcResult result;
  result.epsilon = options.epsilon;
  result.confidence = 1.0 - options.delta;
  result.samples = chernoff_sample_size(options.epsilon, options.delta);

  // The budget is sharded into fixed-size blocks, each drawing from an
  // independent child stream of `seed`. The shard layout depends only on
  // (samples, shard_size), never on the thread count, so the hit counts —
  // and everything derived from them — are bitwise identical whether the
  // shards run serially or across any number of workers.
  const std::size_t shard = std::max<std::size_t>(1, options.shard_size);
  const std::size_t num_shards = chunk_count(0, result.samples, shard);
  std::vector<std::uint32_t> hits(num_shards, 0);
  const Rng root(options.seed);
  parallel_for(
      0, result.samples, shard,
      [&](std::size_t begin, std::size_t end) {
        const std::size_t s = begin / shard;
        Rng rng = root.split(s);
        std::uint32_t h = 0;
        for (std::size_t i = begin; i < end; ++i) {
          if (sample_path_satisfies(model, path, left, right,
                                    options.max_steps, rng)) {
            ++h;
          }
        }
        hits[s] = h;
      },
      options.threads);

  const std::size_t total = std::accumulate(hits.begin(), hits.end(),
                                            std::size_t{0});
  const double n = static_cast<double>(result.samples);
  result.estimate = static_cast<double>(total) / n;

  if (formula.kind() == StateFormula::Kind::kProb) {
    result.satisfied =
        compare(result.estimate, formula.comparison(), formula.bound());
    // Certainty scan in shard order: after `drawn` samples with `acc` hits,
    // the final estimate is confined to [acc/n, (acc + n − drawn)/n]. The
    // verdict is decisive as soon as that whole interval clears the
    // ε-neighbourhood of the bound (at the last shard this degenerates to
    // the classical |p̂ − b| > ε check).
    std::size_t acc = 0;
    std::size_t drawn = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      acc += hits[s];
      drawn += std::min(shard, result.samples - drawn);
      const double lo = static_cast<double>(acc) / n;
      const double hi =
          static_cast<double>(acc + (result.samples - drawn)) / n;
      if (lo > formula.bound() + options.epsilon ||
          hi < formula.bound() - options.epsilon) {
        result.decisive = true;
        result.decided_after = drawn;
        break;
      }
    }
  } else {
    result.satisfied = true;
    result.decisive = true;
    result.decided_after = result.samples;
  }
  return result;
}

SmcResult smc_check(const Dtmc& chain, const StateFormula& formula,
                    const SmcOptions& options) {
  return smc_check(compile(chain), formula, options);
}

}  // namespace tml
