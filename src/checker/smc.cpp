#include "src/checker/smc.hpp"

#include <cmath>

#include "src/checker/check.hpp"

namespace tml {

std::size_t chernoff_sample_size(double epsilon, double delta) {
  TML_REQUIRE(epsilon > 0.0 && epsilon < 1.0,
              "chernoff_sample_size: epsilon out of (0,1)");
  TML_REQUIRE(delta > 0.0 && delta < 1.0,
              "chernoff_sample_size: delta out of (0,1)");
  return static_cast<std::size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

namespace {

/// One simulation step of a deterministic compiled model: for a DTMC the
/// choice index equals the state id, so the state's transition row is the
/// CSR probability span itself — it feeds categorical() with no copy.
StateId step(const CompiledModel& model, StateId current, Rng& rng) {
  return model.targets(current)[rng.categorical(model.probabilities(current))];
}

}  // namespace

bool sample_path_satisfies(const CompiledModel& model, const PathFormula& path,
                           const StateSet& left_sat, const StateSet& right_sat,
                           std::size_t max_steps, Rng& rng) {
  TML_REQUIRE(model.deterministic(),
              "sample_path_satisfies: compiled model is not a DTMC");
  StateId current = model.initial_state();
  switch (path.kind()) {
    case PathFormula::Kind::kNext:
      return right_sat[step(model, current, rng)];
    case PathFormula::Kind::kUntil:
    case PathFormula::Kind::kEventually: {
      const std::size_t bound =
          path.step_bound() ? *path.step_bound() : max_steps;
      const bool constrained = path.kind() == PathFormula::Kind::kUntil;
      for (std::size_t t = 0; /* step check below */; ++t) {
        if (right_sat[current]) return true;
        if (constrained && !left_sat[current]) return false;
        if (t >= bound) return false;
        current = step(model, current, rng);
      }
    }
    case PathFormula::Kind::kGlobally: {
      const std::size_t bound =
          path.step_bound() ? *path.step_bound() : max_steps;
      for (std::size_t t = 0; t <= bound; ++t) {
        if (!right_sat[current]) return false;
        if (t == bound) break;
        current = step(model, current, rng);
      }
      return true;
    }
  }
  return false;
}

bool sample_path_satisfies(const Dtmc& chain, const PathFormula& path,
                           const StateSet& left_sat, const StateSet& right_sat,
                           std::size_t max_steps, Rng& rng) {
  return sample_path_satisfies(compile(chain), path, left_sat, right_sat,
                               max_steps, rng);
}

SmcResult smc_check(const CompiledModel& model, const StateFormula& formula,
                    const SmcOptions& options) {
  TML_REQUIRE(model.deterministic(), "smc_check: compiled model is not a DTMC");
  TML_REQUIRE(formula.kind() == StateFormula::Kind::kProb ||
                  formula.kind() == StateFormula::Kind::kProbQuery,
              "smc_check: formula must be a P operator, got "
                  << formula.to_string());
  const PathFormula& path = formula.path();
  // Operand satisfaction sets are resolved exactly (they are state
  // formulas; only the path probability is sampled).
  const StateSet right = satisfying_states(model, path.right());
  const StateSet left = path.kind() == PathFormula::Kind::kUntil
                            ? satisfying_states(model, path.left())
                            : StateSet(model.num_states(), true);

  SmcResult result;
  result.epsilon = options.epsilon;
  result.confidence = 1.0 - options.delta;
  result.samples = chernoff_sample_size(options.epsilon, options.delta);

  Rng rng(options.seed);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < result.samples; ++i) {
    if (sample_path_satisfies(model, path, left, right, options.max_steps,
                              rng)) {
      ++hits;
    }
  }
  result.estimate =
      static_cast<double>(hits) / static_cast<double>(result.samples);

  if (formula.kind() == StateFormula::Kind::kProb) {
    result.satisfied =
        compare(result.estimate, formula.comparison(), formula.bound());
    result.decisive =
        std::abs(result.estimate - formula.bound()) > options.epsilon;
  } else {
    result.satisfied = true;
    result.decisive = true;
  }
  return result;
}

SmcResult smc_check(const Dtmc& chain, const StateFormula& formula,
                    const SmcOptions& options) {
  return smc_check(compile(chain), formula, options);
}

}  // namespace tml
