#include "src/checker/smc.hpp"

#include <cmath>
#include <numeric>
#include <optional>

#include "src/checker/check.hpp"
#include "src/common/fault.hpp"
#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"
#include "src/mdp/graph.hpp"

namespace tml {

std::size_t chernoff_sample_size(double epsilon, double delta) {
  TML_REQUIRE(epsilon > 0.0 && epsilon < 1.0,
              "chernoff_sample_size: epsilon out of (0,1)");
  TML_REQUIRE(delta > 0.0 && delta < 1.0,
              "chernoff_sample_size: delta out of (0,1)");
  return static_cast<std::size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

namespace {

/// One simulation step of a deterministic compiled model: for a DTMC the
/// choice index equals the state id, so the state's transition row is the
/// CSR probability span itself. The inverse-CDF walk skips categorical()'s
/// per-call weight validation and total — compile() already guarantees a
/// stochastic row, so one uniform draw against the running prefix sum
/// suffices (this loop is the entire per-sample cost of SMC).
StateId step(const CompiledModel& model, StateId current, Rng& rng) {
  const std::span<const double> row = model.probabilities(current);
  const std::span<const StateId> targets = model.targets(current);
  TML_ASSERT(!row.empty(),
             "smc step: state " << current << " has no outgoing transitions");
  const double r = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < row.size(); ++i) {
    acc += row[i];
    if (r < acc) return targets[i];
  }
  return targets[row.size() - 1];
}

/// Graph-certain decision sets for the path formula, so sample paths that
/// enter a trap (goal unreachable) or a safe region (violation unreachable)
/// are decided right there instead of burning the max_steps budget —
/// truncation then only flags genuinely open paths. Empty optionals mean
/// "no precomputation applies" (bounded kNext needs none).
struct CertainSets {
  std::optional<StateSet> no;   ///< outcome certainly "violated" (F/U)
  std::optional<StateSet> yes;  ///< outcome certainly "satisfied" (G)
};

CertainSets certain_sets(const CompiledModel& model, const PathFormula& path,
                         const StateSet& left_sat, const StateSet& right_sat) {
  CertainSets sets;
  switch (path.kind()) {
    case PathFormula::Kind::kNext:
      break;
    case PathFormula::Kind::kEventually:
      sets.no = dtmc_prob0(model, right_sat);
      break;
    case PathFormula::Kind::kUntil: {
      // P0 of (stay U goal): escape states are made absorbing first, so
      // "cannot reach goal" is judged within the stay region.
      StateSet escape = set_union(left_sat, right_sat);
      escape.flip();
      sets.no = dtmc_prob0(model.make_absorbing(escape), right_sat);
      break;
    }
    case PathFormula::Kind::kGlobally:
      // Satisfaction is certain once no ¬φ state is reachable any more.
      sets.yes = dtmc_prob0(model, complement(right_sat));
      break;
  }
  return sets;
}

}  // namespace

PathSample sample_path_outcome(const CompiledModel& model,
                               const PathFormula& path,
                               const StateSet& left_sat,
                               const StateSet& right_sat,
                               std::size_t max_steps, Rng& rng,
                               const StateSet* certain_no,
                               const StateSet* certain_yes) {
  TML_REQUIRE(model.deterministic(),
              "sample_path_outcome: compiled model is not a DTMC");
  StateId current = model.initial_state();
  switch (path.kind()) {
    case PathFormula::Kind::kNext:
      return right_sat[step(model, current, rng)] ? PathSample::kSatisfied
                                                  : PathSample::kViolated;
    case PathFormula::Kind::kUntil:
    case PathFormula::Kind::kEventually: {
      const bool bounded = path.step_bound().has_value();
      const std::size_t bound = bounded ? *path.step_bound() : max_steps;
      const bool constrained = path.kind() == PathFormula::Kind::kUntil;
      for (std::size_t t = 0; /* step check below */; ++t) {
        if (right_sat[current]) return PathSample::kSatisfied;
        if (constrained && !left_sat[current]) return PathSample::kViolated;
        if (certain_no != nullptr && (*certain_no)[current]) {
          return PathSample::kViolated;
        }
        if (t >= bound) {
          // A bounded operator ran its exact horizon; an unbounded one hit
          // the truncation cut-off with the outcome still open.
          return bounded ? PathSample::kViolated : PathSample::kUndecided;
        }
        current = step(model, current, rng);
      }
    }
    case PathFormula::Kind::kGlobally: {
      const bool bounded = path.step_bound().has_value();
      const std::size_t bound = bounded ? *path.step_bound() : max_steps;
      for (std::size_t t = 0; t <= bound; ++t) {
        if (!right_sat[current]) return PathSample::kViolated;
        if (certain_yes != nullptr && (*certain_yes)[current]) {
          return PathSample::kSatisfied;
        }
        if (t == bound) break;
        current = step(model, current, rng);
      }
      return bounded ? PathSample::kSatisfied : PathSample::kUndecided;
    }
  }
  return PathSample::kViolated;
}

bool sample_path_satisfies(const CompiledModel& model, const PathFormula& path,
                           const StateSet& left_sat, const StateSet& right_sat,
                           std::size_t max_steps, Rng& rng) {
  return sample_path_outcome(model, path, left_sat, right_sat, max_steps,
                             rng) == PathSample::kSatisfied;
}

bool sample_path_satisfies(const Dtmc& chain, const PathFormula& path,
                           const StateSet& left_sat, const StateSet& right_sat,
                           std::size_t max_steps, Rng& rng) {
  return sample_path_satisfies(compile(chain), path, left_sat, right_sat,
                               max_steps, rng);
}

SmcResult smc_check(const CompiledModel& model, const StateFormula& formula,
                    const SmcOptions& options) {
  static stats::Timer& t_check = stats::timer("smc.check.time");
  static stats::Counter& c_runs = stats::counter("smc.runs");
  static stats::Counter& c_samples = stats::counter("smc.samples");
  static stats::Counter& c_truncated = stats::counter("smc.truncated_paths");
  static stats::Gauge& g_decided_after = stats::gauge("smc.decided_after");
  const stats::ScopedTimer span(t_check);

  TML_REQUIRE(model.deterministic(), "smc_check: compiled model is not a DTMC");
  TML_REQUIRE(formula.kind() == StateFormula::Kind::kProb ||
                  formula.kind() == StateFormula::Kind::kProbQuery,
              "smc_check: formula must be a P operator, got "
                  << formula.to_string());
  TML_REQUIRE(options.max_truncation_rate >= 0.0 &&
                  options.max_truncation_rate <= 1.0,
              "smc_check: max_truncation_rate out of [0,1]");
  const PathFormula& path = formula.path();
  // Operand satisfaction sets are resolved exactly (they are state
  // formulas; only the path probability is sampled).
  const StateSet right = satisfying_states(model, path.right());
  const StateSet left = path.kind() == PathFormula::Kind::kUntil
                            ? satisfying_states(model, path.left())
                            : StateSet(model.num_states(), true);
  const CertainSets certain = certain_sets(model, path, left, right);
  const StateSet* certain_no = certain.no ? &*certain.no : nullptr;
  const StateSet* certain_yes = certain.yes ? &*certain.yes : nullptr;

  SmcResult result;
  result.confidence = 1.0 - options.delta;
  const std::size_t required =
      chernoff_sample_size(options.epsilon, options.delta);

  // The sample budget is sharded into fixed-size blocks, each drawing from
  // an independent child stream of `seed`. The shard layout depends only on
  // (samples, shard_size), never on the thread count, so the hit and
  // truncation counts — and everything derived from them — are bitwise
  // identical whether the shards run serially or across any number of
  // workers.
  const std::size_t shard = std::max<std::size_t>(1, options.shard_size);
  const std::size_t num_shards = chunk_count(0, required, shard);
  std::vector<std::uint32_t> hits(num_shards, 0);
  std::vector<std::uint32_t> undecided(num_shards, 0);
  const Rng root(options.seed);

  // Shards run in fixed batches of kShardsPerBatch and the resource budget
  // is polled once per shard at the (serial) batch boundaries, so the set
  // of shards that runs is always a prefix of the deterministic shard
  // sequence: an iteration cap of k runs exactly shards 0..k−1 under every
  // thread count, and a deadline/cancellation stops at a whole-shard
  // boundary.
  BudgetTracker tracker(options.budget);
  constexpr std::size_t kShardsPerBatch = 8;
  std::size_t shards_run = 0;
  while (shards_run < num_shards) {
    const std::size_t batch_end =
        std::min(num_shards, shards_run + kShardsPerBatch);
    std::size_t allowed = shards_run;
    while (allowed < batch_end && tracker.tick()) ++allowed;
    if (allowed == shards_run) break;  // budget fired before this batch
    parallel_for(
        shards_run * shard, std::min(required, allowed * shard), shard,
        [&](std::size_t begin, std::size_t end) {
          const std::size_t s = begin / shard;
          Rng rng = root.split(s);
          std::uint32_t h = 0;
          std::uint32_t u = 0;
          for (std::size_t i = begin; i < end; ++i) {
            PathSample outcome =
                sample_path_outcome(model, path, left, right,
                                    options.max_steps, rng, certain_no,
                                    certain_yes);
            if (fault::fire("smc.sample")) outcome = PathSample::kUndecided;
            switch (outcome) {
              case PathSample::kSatisfied: ++h; break;
              case PathSample::kViolated: break;
              case PathSample::kUndecided: ++u; break;
            }
          }
          hits[s] = h;
          undecided[s] = u;
        },
        options.threads);
    shards_run = allowed;
  }

  result.samples = std::min(required, shards_run * shard);
  result.budget_status = tracker.status();
  result.budget_stop = tracker.stop();
  const std::size_t total = std::accumulate(hits.begin(), hits.end(),
                                            std::size_t{0});
  result.truncated = std::accumulate(undecided.begin(), undecided.end(),
                                     std::size_t{0});
  const double n = static_cast<double>(result.samples);
  result.estimate = n > 0.0 ? static_cast<double>(total) / n : 0.0;

  c_runs.bump();
  c_samples.add(result.samples);
  c_truncated.add(result.truncated);

  const double truncation_rate =
      n > 0.0 ? static_cast<double>(result.truncated) / n : 0.0;
  if (truncation_rate > options.max_truncation_rate) {
    throw NumericError(
        "smc_check: " + std::to_string(result.truncated) + " of " +
        std::to_string(result.samples) +
        " sample paths were still undecided at max_steps=" +
        std::to_string(options.max_steps) +
        "; the estimate would be silently biased low. Raise "
        "SmcOptions::max_steps, or accept the widened interval via "
        "SmcOptions::max_truncation_rate");
  }
  // Every truncated path could have gone either way: widen the reported
  // half-width so [estimate − ε, estimate + ε] still brackets the truth
  // with the Chernoff confidence. A budget-truncated run did not earn the
  // requested ε, only what its sample count supports (inverting the
  // Chernoff bound at the same δ); with no samples at all the interval is
  // vacuous.
  if (result.samples < required) {
    const double earned =
        n > 0.0 ? std::sqrt(std::log(2.0 / options.delta) / (2.0 * n)) : 1.0;
    result.epsilon = std::min(1.0, earned + truncation_rate);
  } else {
    result.epsilon = options.epsilon + truncation_rate;
  }

  if (n == 0.0) {
    // Budget fired before the first shard: nothing to decide.
    result.satisfied = false;
  } else if (formula.kind() == StateFormula::Kind::kProb) {
    result.satisfied =
        compare(result.estimate, formula.comparison(), formula.bound());
    // Certainty scan in shard order: after `drawn` samples with `acc` hits,
    // the final estimate is confined to [acc/n, (acc + n − drawn)/n]. The
    // verdict is decisive as soon as that whole interval clears the
    // ε-neighbourhood of the bound (at the last shard this degenerates to
    // the classical |p̂ − b| > ε check).
    std::size_t acc = 0;
    std::size_t drawn = 0;
    for (std::size_t s = 0; s < shards_run; ++s) {
      acc += hits[s];
      drawn += std::min(shard, result.samples - drawn);
      const double lo = static_cast<double>(acc) / n;
      const double hi =
          static_cast<double>(acc + (result.samples - drawn)) / n;
      if (lo > formula.bound() + result.epsilon ||
          hi < formula.bound() - result.epsilon) {
        result.decisive = true;
        result.decided_after = drawn;
        break;
      }
    }
  } else {
    result.satisfied = true;
    result.decisive = true;
    result.decided_after = result.samples;
  }
  g_decided_after.set(static_cast<double>(result.decided_after));
  return result;
}

SmcResult smc_check(const Dtmc& chain, const StateFormula& formula,
                    const SmcOptions& options) {
  return smc_check(compile(chain), formula, options);
}

}  // namespace tml
