#include "src/checker/reachability.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/fault.hpp"
#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"
#include "src/mdp/graph.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

void record_bounded_sweeps(std::size_t sweeps) {
  static stats::Counter& c_sweeps = stats::counter("checker.bounded.sweeps");
  c_sweeps.add(sweeps);
}

/// The bounded/cumulative sweeps accept a budget as a trailing pointer
/// (nullptr = process default) to keep the dozens of existing thread-only
/// call sites source-compatible.
Budget budget_or_default(const Budget* budget) {
  return budget != nullptr ? *budget : default_budget();
}

/// Checks a sweep delta (or interval gap) for injected or genuine NaN.
double checked_sweep_delta(double delta, const char* engine) {
  delta = fault::poison("checker.sweep", delta);
  if (std::isnan(delta)) {
    throw NumericError(std::string(engine) +
                       ": NaN convergence delta — model or update sequence "
                       "produced non-finite values");
  }
  return delta;
}

/// Restricts an until problem to a plain reachability problem: states in
/// neither `stay` nor `goal` are made absorbing (they can never contribute),
/// then P[F goal] on the modified model equals P[stay U goal] on the
/// original.
CompiledModel absorb_escape_states(const CompiledModel& model,
                                   const StateSet& stay,
                                   const StateSet& goal) {
  StateSet escape = set_union(stay, goal);
  escape.flip();
  return model.make_absorbing(escape);
}

/// Probability-0 / probability-1 regions for the given objective, pinned by
/// graph analysis before any numerics run.
struct Prob01 {
  StateSet zero;
  StateSet one;
};

Prob01 reach_prob01(const CompiledModel& model, const StateSet& targets,
                    Objective objective) {
  Prob01 sets;
  if (objective == Objective::kMaximize) {
    sets.zero = complement(reachable_existential(model, targets));
    sets.one = prob1_existential(model, targets);
  } else {
    sets.zero = avoid_certain(model, targets);
    sets.one = prob1_universal(model, targets);
  }
  if (stats::enabled()) {  // skip the popcounts entirely when disabled
    static stats::Gauge& g_zero = stats::gauge("checker.prob0.states");
    static stats::Gauge& g_one = stats::gauge("checker.prob1.states");
    g_zero.set(static_cast<double>(count(sets.zero)));
    g_one.set(static_cast<double>(count(sets.one)));
  }
  return sets;
}

void record_vi_stats(std::size_t iterations, double last_delta) {
  static stats::Counter& c_iters = stats::counter("checker.vi.iterations");
  static stats::Gauge& g_delta = stats::gauge("checker.vi.last_delta");
  c_iters.add(iterations);
  g_delta.set(last_delta);
}

// ---- warm starts ----------------------------------------------------------

bool warm_values_valid(const WarmStart* warm, std::size_t n) {
  return warm != nullptr && warm->values.size() == n;
}

bool warm_bracket_valid(const WarmStart* warm, std::size_t n) {
  return warm != nullptr && warm->lo.size() == n && warm->hi.size() == n;
}

/// Affected-block propagation over the dependency-ordered condensation:
/// ascending block order, a block is affected iff it contains a dirty state
/// or any positive edge leaving it lands in an affected (necessarily
/// lower-indexed) block. Unaffected blocks see the identical Bellman
/// operator AND identical downstream values, so their fixpoint — and every
/// iterate of it — is unchanged; skipping them is exact, not approximate.
std::vector<char> affected_blocks(const CompiledModel& model,
                                  const SccDecomposition& scc,
                                  const StateSet& dirty) {
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<char> affected(scc.num_blocks(), 0);
  for (std::uint32_t b = 0; b < scc.num_blocks(); ++b) {
    bool hit = false;
    for (StateId s : scc.block(b)) {
      if (dirty[s]) {
        hit = true;
        break;
      }
      for (std::uint32_t c = row_start[s]; c < row_start[s + 1] && !hit; ++c) {
        for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
          if (prob[k] <= 0.0) continue;
          const std::uint32_t bt = scc.component[target[k]];
          if (bt != b && affected[bt]) {
            hit = true;
            break;
          }
        }
      }
      if (hit) break;
    }
    affected[b] = hit ? 1 : 0;
  }
  return affected;
}

/// Qualitative sets for an entry point: reuse the seeding run's cached
/// prob0/prob1 (valid after a support-preserving patch — the sets are pure
/// graph properties of the positive support) or recompute from scratch.
Prob01 prob01_for(const CompiledModel& model, const StateSet& targets,
                  Objective objective, const SolverOptions& options) {
  const std::size_t n = model.num_states();
  if (options.warm != nullptr && options.warm->zero.size() == n &&
      options.warm->one.size() == n) {
    return Prob01{options.warm->zero, options.warm->one};
  }
  return reach_prob01(model, targets, objective);
}

void record_warm_stats(std::size_t skipped, std::size_t resolved) {
  static stats::Counter& c_warm = stats::counter("checker.warm_solves");
  static stats::Counter& c_skip = stats::counter("checker.warm_blocks_skipped");
  static stats::Counter& c_solve =
      stats::counter("checker.warm_blocks_resolved");
  c_warm.bump();
  c_skip.add(skipped);
  c_solve.add(resolved);
}

void record_scc_count(std::size_t blocks) {
  static stats::Gauge& g_scc = stats::gauge("checker.scc_count");
  g_scc.set(static_cast<double>(blocks));
}

/// Closed-form solve of a single-state SCC block against already-final
/// successor values: with self-loop mass a_c and external inflow
/// b_c = Σ_{t≠s} p(t|s,c)·v(t) per choice, the fixpoint of choice c is
/// b_c / (1 - a_c). Pure self-loop choices (a_c = 1) never advance the state
/// and are skipped: a Pmin state owning one would be in avoid_certain
/// (pinned 0), and for Pmax such a choice yields value 0 from here on, which
/// never beats a competing exit and equals the a-priori 0 fallback otherwise.
double solve_single_state(const CompiledModel& model, StateId s,
                          Objective objective,
                          const std::vector<double>& values) {
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  bool any = false;
  double best = 0.0;
  for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
    double self = 0.0;
    double inflow = 0.0;
    for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1]; ++k) {
      if (target[k] == s) {
        self += prob[k];
      } else {
        inflow += prob[k] * values[target[k]];
      }
    }
    if (self >= 1.0) continue;
    const double q = std::min(1.0, inflow / (1.0 - self));
    if (!any || (objective == Objective::kMaximize ? q > best : q < best)) {
      best = q;
      any = true;
    }
  }
  return best;
}

/// Classic flat Jacobi value iteration with the `delta < eps` stopping rule
/// (SolveMethod::kValueIteration). Kept as the baseline engine; the stopping
/// rule is unsound on slowly-mixing models (see SolveMethod docs).
std::vector<double> reach_classic(const CompiledModel& model,
                                  const Prob01& sets, Objective objective,
                                  const SolverOptions& options) {
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  const StateSet& zero = sets.zero;
  const StateSet& one = sets.one;

  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (one[s]) values[s] = 1.0;
  }
  // Warm point seed: start the iterate at the previous fixpoint (clamped to
  // [0,1], pins kept exact). Inherits this engine's unsound `delta < eps`
  // stopping rule — a warm classic solve is a faster heuristic, not a
  // certificate; use the interval engine for certified warm brackets.
  if (warm_values_valid(options.warm, n)) {
    for (StateId s = 0; s < n; ++s) {
      if (zero[s] || one[s]) continue;
      values[s] = std::clamp(options.warm->values[s], 0.0, 1.0);
    }
  }

  std::vector<double> next = values;
  bool converged = false;
  std::size_t iterations = 0;
  double last_delta = 0.0;
  BudgetTracker tracker(options.budget);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (!tracker.tick()) tracker.require_ok("mdp_reachability");
    const double delta = parallel_transform_reduce(
        std::size_t{0}, n, kDefaultGrain, 0.0,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          double local = 0.0;
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            if (zero[s] || one[s]) continue;
            double best = objective == Objective::kMaximize ? 0.0 : 1.0;
            for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
              double q = 0.0;
              for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
                   ++k) {
                q += prob[k] * values[target[k]];
              }
              if (objective == Objective::kMaximize) {
                best = std::max(best, q);
              } else {
                best = std::min(best, q);
              }
            }
            next[s] = best;
            local = std::max(local, std::abs(next[s] - values[s]));
          }
          return local;
        },
        [](double a, double b) { return std::max(a, b); }, options.threads);
    values.swap(next);
    iterations = iter + 1;
    last_delta = checked_sweep_delta(delta, "mdp_reachability");
    if (last_delta < options.tolerance && !fault::fire("checker.converge")) {
      converged = true;
      break;
    }
  }
  record_vi_stats(iterations, last_delta);
  if (!converged && options.throw_on_nonconvergence) {
    throw NumericError("mdp_reachability: no convergence after " +
                       std::to_string(iterations) + " iterations");
  }
  return values;
}

/// Classic value iteration swept per SCC block in dependency order
/// (SolveMethod::kTopological). Each block iterates against already-final
/// downstream values; single-state blocks solve in closed form, so acyclic
/// models finish without any iteration at all.
std::vector<double> reach_topological(const CompiledModel& model,
                                      const Prob01& sets, Objective objective,
                                      const SolverOptions& options) {
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  const StateSet& zero = sets.zero;
  const StateSet& one = sets.one;
  const SccDecomposition& scc = model.scc();
  record_scc_count(scc.num_blocks());

  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (one[s]) values[s] = 1.0;
  }

  // Warm start: blocks with no dirty state and no affected block downstream
  // keep the previous values verbatim and are skipped — exact, because both
  // their operator and everything they read are unchanged. Affected blocks
  // re-run from the cold initialization, so a warm topological solve
  // reproduces the cold solve bitwise.
  const bool warm = warm_values_valid(options.warm, n);
  std::vector<char> affected;
  std::size_t skipped = 0;
  std::size_t resolved = 0;
  if (warm) {
    StateSet dirty = options.warm->dirty.size() == n ? options.warm->dirty
                                                     : StateSet(n, true);
    affected = affected_blocks(model, scc, dirty);
    for (StateId s = 0; s < n; ++s) {
      if (zero[s] || one[s]) continue;
      if (!affected[scc.component[s]]) {
        values[s] = std::clamp(options.warm->values[s], 0.0, 1.0);
      }
    }
  }
  std::vector<double> next = values;

  std::size_t total_sweeps = 0;
  double last_delta = 0.0;
  BudgetTracker tracker(options.budget);
  // Blocks are emitted in dependency order: every inter-block edge points to
  // a lower block id, so by the time block b runs, everything it reads
  // outside itself is final.
  for (std::uint32_t b = 0; b < scc.num_blocks(); ++b) {
    const auto block = scc.block(b);
    bool any_unknown = false;
    for (StateId s : block) {
      if (!zero[s] && !one[s]) {
        any_unknown = true;
        break;
      }
    }
    if (!any_unknown) continue;
    if (warm && !affected[b]) {
      ++skipped;
      continue;
    }
    if (warm) ++resolved;

    if (block.size() == 1) {
      const StateId s = block.front();
      values[s] = solve_single_state(model, s, objective, values);
      next[s] = values[s];
      continue;
    }

    const std::size_t begin = scc.block_start[b];
    const std::size_t end = scc.block_start[b + 1];
    bool converged = false;
    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
      if (!tracker.tick()) tracker.require_ok("mdp_reachability(topological)");
      const double delta = parallel_transform_reduce(
          begin, end, kDefaultGrain, 0.0,
          [&](std::size_t chunk_begin, std::size_t chunk_end) {
            double local = 0.0;
            for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
              const StateId s = scc.block_states[i];
              if (zero[s] || one[s]) continue;
              double best = objective == Objective::kMaximize ? 0.0 : 1.0;
              for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
                double q = 0.0;
                for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
                     ++k) {
                  q += prob[k] * values[target[k]];
                }
                if (objective == Objective::kMaximize) {
                  best = std::max(best, q);
                } else {
                  best = std::min(best, q);
                }
              }
              next[s] = best;
              local = std::max(local, std::abs(next[s] - values[s]));
            }
            return local;
          },
          [](double a, double b) { return std::max(a, b); }, options.threads);
      values.swap(next);
      ++total_sweeps;
      last_delta = checked_sweep_delta(delta, "mdp_reachability(topological)");
      if (last_delta < options.tolerance && !fault::fire("checker.converge")) {
        converged = true;
        break;
      }
    }
    // After the final swap, `next` is stale on this block's states only;
    // resync so later blocks can swap freely.
    for (std::size_t i = begin; i < end; ++i) {
      next[scc.block_states[i]] = values[scc.block_states[i]];
    }
    if (!converged && options.throw_on_nonconvergence) {
      throw NumericError("mdp_reachability(topological): block " +
                         std::to_string(b) + " did not converge within " +
                         std::to_string(options.max_iterations) + " sweeps");
    }
  }
  if (warm) record_warm_stats(skipped, resolved);
  record_vi_stats(total_sweeps, last_delta);
  return values;
}

/// Sound interval iteration over the SCC condensation
/// (SolveMethod::kIntervalTopological). See the SolveMethod docs for the
/// invariants; the certified bracket is returned in SolveResult::lo/hi.
SolveResult reach_interval(const CompiledModel& model, const Prob01& sets,
                           Objective objective, const SolverOptions& options) {
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  const StateSet& zero = sets.zero;
  const StateSet& one = sets.one;
  const SccDecomposition& scc = model.scc();
  record_scc_count(scc.num_blocks());

  std::vector<double> lo(n, 0.0);
  std::vector<double> hi(n, 1.0);
  for (StateId s = 0; s < n; ++s) {
    if (one[s]) lo[s] = 1.0;
    if (zero[s]) hi[s] = 0.0;
  }

  // Warm start (see WarmStart in solver.hpp). Unaffected blocks — no dirty
  // state, nothing affected downstream, previous gap already below
  // tolerance — keep the previous bracket verbatim and are skipped: their
  // Bellman operator and everything it reads are unchanged, so the previous
  // bracket is exactly what a cold solve would recompute. Affected blocks
  // are re-seeded lazily at block start (never earlier, so a budget stop
  // leaves untouched blocks at the sound cold 0/1 bracket).
  const bool warm = warm_bracket_valid(options.warm, n);
  std::vector<char> affected;
  std::size_t warm_skipped = 0;
  std::size_t warm_resolved = 0;
  if (warm) {
    StateSet dirty = options.warm->dirty.size() == n ? options.warm->dirty
                                                     : StateSet(n, true);
    // A state whose seed gap never converged must re-iterate (and upstream
    // must treat its value as movable), so a warm solve converges
    // everywhere a cold solve would.
    for (StateId s = 0; s < n; ++s) {
      if (!zero[s] && !one[s] &&
          options.warm->hi[s] - options.warm->lo[s] >= options.tolerance) {
        dirty.set(s);
      }
    }
    affected = affected_blocks(model, scc, dirty);
    for (StateId s = 0; s < n; ++s) {
      if (zero[s] || one[s]) continue;
      if (!affected[scc.component[s]]) {
        lo[s] = options.warm->lo[s];
        hi[s] = options.warm->hi[s];
      }
    }
  }

  // MEC deflation/inflation (Pmax only). Inside a maximal end component all
  // states share one Pmax value: v = max over exit choices c of
  // (sum of p * v(t) over t OUTSIDE the MEC) / p_out(c), because committing
  // to exit choice c forever reaches its state with probability 1 (EC
  // property) and leaves via t with probability p_t / p_out. Every sweep we
  // snap BOTH bounds of every MEC to that normalized best-exit form:
  //  * deflation (hi): iteration from above otherwise converges to the
  //    greatest fixpoint, which overshoots inside end components (cycling
  //    forever keeps upper value 1);
  //  * inflation (lo): the plain lower iterate climbs through a MEC at a
  //    rate proportional to the exit probability — with a 1e-3 exit it
  //    needs millions of sweeps, while the commit-to-exit policy bound is
  //    exact the moment the external values are.
  // Pmin needs neither: an end component among the unknown states would let
  // a scheduler avoid the target forever, so its states would already be
  // pinned by avoid_certain.
  struct MecExit {
    double p_out = 0.0;  ///< total probability mass leaving the MEC
    std::vector<std::pair<StateId, double>> external;  ///< targets outside
  };
  struct Mec {
    std::vector<StateId> states;
    std::vector<MecExit> exits;
  };
  std::vector<std::vector<Mec>> block_mecs(scc.num_blocks());
  if (objective == Objective::kMaximize) {
    StateSet unknown = set_union(zero, one);
    unknown.flip();
    for (auto& members : maximal_end_components(model, unknown)) {
      Mec mec;
      auto inside = [&](StateId t) {
        return std::binary_search(members.begin(), members.end(), t);
      };
      for (StateId s : members) {
        for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
          MecExit exit;
          for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
               ++k) {
            if (prob[k] > 0.0 && !inside(target[k])) {
              exit.p_out += prob[k];
              exit.external.emplace_back(target[k], prob[k]);
            }
          }
          if (exit.p_out > 0.0) mec.exits.push_back(std::move(exit));
        }
      }
      // End components are contained in SCCs, so a MEC lives in one block.
      const std::uint32_t b = scc.component[members.front()];
      mec.states = std::move(members);
      block_mecs[b].push_back(std::move(mec));
    }
  }

  std::vector<double> next_lo = lo;
  std::vector<double> next_hi = hi;
  std::size_t total_sweeps = 0;
  bool all_converged = true;
  // On exhaustion the engine stops at the current sweep boundary and
  // returns lo/hi as they stand: the bracket is sound after EVERY sweep
  // (lower iterate under-approximates, upper over-approximates, and
  // untouched downstream blocks still hold their initial certified 0/1
  // bounds), so a budget-truncated run degrades to a wider — never wrong —
  // certified interval.
  BudgetTracker tracker(options.budget);
  bool budget_fired = false;

  // One Jacobi sweep of this block's unknown states against `src`, into
  // `dst`. `from_below` keeps the lower iterate monotone non-decreasing and
  // the upper monotone non-increasing, so rounding can never break the
  // bracket direction.
  auto sweep = [&](std::size_t begin, std::size_t end,
                   const std::vector<double>& src, std::vector<double>& dst,
                   bool from_below) {
    parallel_for(
        begin, end, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            const StateId s = scc.block_states[i];
            if (zero[s] || one[s]) continue;
            double best = objective == Objective::kMaximize ? 0.0 : 1.0;
            for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
              double q = 0.0;
              for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
                   ++k) {
                q += prob[k] * src[target[k]];
              }
              if (objective == Objective::kMaximize) {
                best = std::max(best, q);
              } else {
                best = std::min(best, q);
              }
            }
            dst[s] = from_below ? std::max(best, src[s])
                                : std::min(best, src[s]);
          }
        },
        options.threads);
  };

  for (std::uint32_t b = 0; b < scc.num_blocks() && !budget_fired; ++b) {
    const auto block = scc.block(b);
    bool any_unknown = false;
    for (StateId s : block) {
      if (!zero[s] && !one[s]) {
        any_unknown = true;
        break;
      }
    }
    if (!any_unknown) continue;
    if (warm && !affected[b]) {
      // Frozen: previous bracket already seeded and exact; nothing to do.
      ++warm_skipped;
      continue;
    }
    if (warm) ++warm_resolved;

    if (block.size() == 1) {
      // Downstream values are final, so the closed form is final too; its
      // gap is bounded by the worst downstream gap (the 1/(1-a) factor in
      // the value cancels against the (1-a) total external mass).
      const StateId s = block.front();
      lo[s] = std::max(lo[s], solve_single_state(model, s, objective, lo));
      hi[s] = std::min(hi[s], solve_single_state(model, s, objective, hi));
      next_lo[s] = lo[s];
      next_hi[s] = hi[s];
      continue;
    }

    const std::size_t begin = scc.block_start[b];
    const std::size_t end = scc.block_start[b + 1];

    if (warm && options.warm->widen >= 0.0) {
      // Re-widened seed for this affected block, then per-block
      // certification by one raw Bellman application against the (final)
      // downstream values:
      //  * upper: F(hi) ≤ hi pointwise ⇒ the decreasing clamped iterates
      //    stay above a fixpoint, and every fixpoint dominates the LEAST
      //    fixpoint v* — valid unconditionally;
      //  * lower: F(lo) ≥ lo pointwise ⇒ the increasing iterates stay below
      //    a fixpoint, which equals v* only when the block's unknown region
      //    has a unique fixpoint — i.e. no end components (always true for
      //    Pmin and for DTMCs after the qualitative pinning; checked via
      //    block_mecs for Pmax).
      // A failed certificate falls back to the cold 0/1 bound for that
      // side: warm seeds can only lose speed, never soundness. Note the
      // caller's widen is purely a seed-quality heuristic — nothing here
      // assumes it bounds the true value drift.
      const double widen = options.warm->widen;
      for (std::size_t i = begin; i < end; ++i) {
        const StateId s = scc.block_states[i];
        if (zero[s] || one[s]) continue;
        lo[s] = std::clamp(options.warm->lo[s] - widen, 0.0, 1.0);
        hi[s] = std::clamp(options.warm->hi[s] + widen, 0.0, 1.0);
      }
      bool lo_ok = block_mecs[b].empty();
      bool hi_ok = true;
      for (std::size_t i = begin; i < end && (lo_ok || hi_ok); ++i) {
        const StateId s = scc.block_states[i];
        if (zero[s] || one[s]) continue;
        double best_lo = objective == Objective::kMaximize ? 0.0 : 1.0;
        double best_hi = best_lo;
        for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
          double q_lo = 0.0;
          double q_hi = 0.0;
          for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
               ++k) {
            q_lo += prob[k] * lo[target[k]];
            q_hi += prob[k] * hi[target[k]];
          }
          if (objective == Objective::kMaximize) {
            best_lo = std::max(best_lo, q_lo);
            best_hi = std::max(best_hi, q_hi);
          } else {
            best_lo = std::min(best_lo, q_lo);
            best_hi = std::min(best_hi, q_hi);
          }
        }
        if (best_lo < lo[s]) lo_ok = false;
        if (best_hi > hi[s]) hi_ok = false;
      }
      if (!lo_ok || !hi_ok) {
        static stats::Counter& c_reject =
            stats::counter("checker.warm_seed_rejections");
        c_reject.bump();
        for (std::size_t i = begin; i < end; ++i) {
          const StateId s = scc.block_states[i];
          if (zero[s] || one[s]) continue;
          if (!lo_ok) lo[s] = 0.0;
          if (!hi_ok) hi[s] = 1.0;
        }
      }
      for (std::size_t i = begin; i < end; ++i) {
        const StateId s = scc.block_states[i];
        next_lo[s] = lo[s];
        next_hi[s] = hi[s];
      }
    }

    bool converged = false;
    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
      if (!tracker.tick()) {
        budget_fired = true;
        break;
      }
      sweep(begin, end, lo, next_lo, /*from_below=*/true);
      sweep(begin, end, hi, next_hi, /*from_below=*/false);
      lo.swap(next_lo);
      hi.swap(next_hi);
      ++total_sweeps;
      for (const Mec& mec : block_mecs[b]) {
        double exit_lo = 0.0;
        double exit_hi = 0.0;
        for (const MecExit& exit : mec.exits) {
          double q_lo = 0.0;
          double q_hi = 0.0;
          for (const auto& [t, p] : exit.external) {
            q_lo += p * lo[t];
            q_hi += p * hi[t];
          }
          exit_lo = std::max(exit_lo, q_lo / exit.p_out);
          exit_hi = std::max(exit_hi, q_hi / exit.p_out);
        }
        for (StateId s : mec.states) {
          lo[s] = std::max(lo[s], exit_lo);
          hi[s] = std::min(hi[s], exit_hi);
        }
      }
      const double gap = parallel_transform_reduce(
          begin, end, kDefaultGrain, 0.0,
          [&](std::size_t chunk_begin, std::size_t chunk_end) {
            double local = 0.0;
            for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
              const StateId s = scc.block_states[i];
              if (zero[s] || one[s]) continue;
              local = std::max(local, hi[s] - lo[s]);
            }
            return local;
          },
          [](double a, double b) { return std::max(a, b); }, options.threads);
      if (checked_sweep_delta(gap, "mdp_reachability(interval)") <
              options.tolerance &&
          !fault::fire("checker.converge")) {
        converged = true;
        break;
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      next_lo[scc.block_states[i]] = lo[scc.block_states[i]];
      next_hi[scc.block_states[i]] = hi[scc.block_states[i]];
    }
    if (!converged) {
      if (!budget_fired && options.throw_on_nonconvergence) {
        throw NumericError("mdp_reachability(interval): block " +
                           std::to_string(b) +
                           " gap did not close within " +
                           std::to_string(options.max_iterations) + " sweeps");
      }
      all_converged = false;
    }
  }

  if (warm) record_warm_stats(warm_skipped, warm_resolved);

  double final_gap = 0.0;
  for (StateId s = 0; s < n; ++s) {
    final_gap = std::max(final_gap, hi[s] - lo[s]);
  }
  {
    static stats::Counter& c_sweeps =
        stats::counter("checker.interval_sweeps");
    static stats::Gauge& g_gap = stats::gauge("checker.final_gap");
    c_sweeps.add(total_sweeps);
    g_gap.set(final_gap);
  }

  SolveResult result;
  result.iterations = total_sweeps;
  result.converged = all_converged;
  result.budget_status = tracker.status();
  result.budget_stop = tracker.stop();
  result.values.resize(n);
  for (StateId s = 0; s < n; ++s) {
    // Pinned states report exactly 0/1; everything else the bracket midpoint.
    result.values[s] =
        one[s] ? 1.0 : (zero[s] ? 0.0 : 0.5 * (lo[s] + hi[s]));
  }
  result.lo = std::move(lo);
  result.hi = std::move(hi);
  return result;
}

}  // namespace

std::vector<double> mdp_reachability(const CompiledModel& model,
                                     const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options) {
  TML_REQUIRE(targets.size() == model.num_states(),
              "mdp_reachability: target set size mismatch");
  const Prob01 sets = prob01_for(model, targets, objective, options);
  switch (options.method) {
    case SolveMethod::kValueIteration:
      return reach_classic(model, sets, objective, options);
    case SolveMethod::kTopological:
      return reach_topological(model, sets, objective, options);
    case SolveMethod::kIntervalTopological:
      break;
  }
  SolveResult result = reach_interval(model, sets, objective, options);
  if (result.budget_status == BudgetStatus::kBudgetExhausted) {
    // This entry point returns a bare vector, so it has no channel for the
    // exhaustion flag; surface the typed error instead of a silent partial.
    throw BudgetExhausted("mdp_reachability: budget exhausted (" +
                              std::string(to_string(result.budget_stop)) +
                              ") after " +
                              std::to_string(result.iterations) + " sweeps",
                          result.budget_stop);
  }
  return std::move(result.values);
}

SolveResult mdp_reachability_bracket(const CompiledModel& model,
                                     const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options) {
  TML_REQUIRE(targets.size() == model.num_states(),
              "mdp_reachability_bracket: target set size mismatch");
  Prob01 sets = prob01_for(model, targets, objective, options);
  SolveResult result = reach_interval(model, sets, objective, options);
  // Hand the qualitative sets back so the caller can feed them into the next
  // WarmStart after a support-preserving patch (skipping the graph analyses).
  result.zero = std::move(sets.zero);
  result.one = std::move(sets.one);
  return result;
}

SolveResult mdp_reachability_bracket(const Mdp& mdp, const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options) {
  return mdp_reachability_bracket(compile(mdp), targets, objective, options);
}

SolveResult mdp_until_bracket(const CompiledModel& model, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options) {
  return mdp_reachability_bracket(absorb_escape_states(model, stay, goal),
                                  goal, objective, options);
}

SolveResult mdp_until_bracket(const Mdp& mdp, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options) {
  return mdp_until_bracket(compile(mdp), stay, goal, objective, options);
}

std::vector<double> mdp_reachability(const Mdp& mdp, const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options) {
  return mdp_reachability(compile(mdp), targets, objective, options);
}

std::vector<double> mdp_bounded_until(const CompiledModel& model,
                                      const StateSet& stay,
                                      const StateSet& goal, std::size_t bound,
                                      Objective objective,
                                      std::size_t threads,
                                      const Budget* budget) {
  const std::size_t n = model.num_states();
  TML_REQUIRE(stay.size() == n && goal.size() == n,
              "mdp_bounded_until: set size mismatch");
  BudgetTracker tracker(budget_or_default(budget));
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) values[s] = 1.0;
  }
  std::vector<double> next = values;
  for (std::size_t k = 0; k < bound; ++k) {
    if (!tracker.tick()) tracker.require_ok("mdp_bounded_until");
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            if (goal[s]) {
              next[s] = 1.0;
              continue;
            }
            if (!stay[s]) {
              next[s] = 0.0;
              continue;
            }
            double best = objective == Objective::kMaximize ? 0.0 : 1.0;
            for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
              double q = 0.0;
              for (std::uint32_t t = choice_start[c]; t < choice_start[c + 1];
                   ++t) {
                q += prob[t] * values[target[t]];
              }
              if (objective == Objective::kMaximize) {
                best = std::max(best, q);
              } else {
                best = std::min(best, q);
              }
            }
            next[s] = best;
          }
        },
        threads);
    values.swap(next);
  }
  record_bounded_sweeps(bound);
  return values;
}

std::vector<double> mdp_bounded_until(const Mdp& mdp, const StateSet& stay,
                                      const StateSet& goal, std::size_t bound,
                                      Objective objective,
                                      std::size_t threads,
                                      const Budget* budget) {
  return mdp_bounded_until(compile(mdp), stay, goal, bound, objective, threads,
                           budget);
}

std::vector<double> dtmc_bounded_until(const CompiledModel& model,
                                       const StateSet& stay,
                                       const StateSet& goal, std::size_t bound,
                                       std::size_t threads,
                                       const Budget* budget) {
  TML_REQUIRE(model.deterministic(),
              "dtmc_bounded_until: compiled model is not a DTMC");
  const std::size_t n = model.num_states();
  TML_REQUIRE(stay.size() == n && goal.size() == n,
              "dtmc_bounded_until: set size mismatch");
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) values[s] = 1.0;
  }
  std::vector<double> next = values;
  BudgetTracker tracker(budget_or_default(budget));
  for (std::size_t k = 0; k < bound; ++k) {
    if (!tracker.tick()) tracker.require_ok("dtmc_bounded_until");
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            if (goal[s]) {
              next[s] = 1.0;
              continue;
            }
            if (!stay[s]) {
              next[s] = 0.0;
              continue;
            }
            double q = 0.0;
            for (std::uint32_t t = choice_start[s]; t < choice_start[s + 1];
                 ++t) {
              q += prob[t] * values[target[t]];
            }
            next[s] = q;
          }
        },
        threads);
    values.swap(next);
  }
  record_bounded_sweeps(bound);
  return values;
}

std::vector<double> dtmc_bounded_until(const Dtmc& chain, const StateSet& stay,
                                       const StateSet& goal, std::size_t bound,
                                       std::size_t threads,
                                       const Budget* budget) {
  return dtmc_bounded_until(compile(chain), stay, goal, bound, threads, budget);
}

std::vector<double> dtmc_until(const CompiledModel& model, const StateSet& stay,
                               const StateSet& goal) {
  return dtmc_reachability(absorb_escape_states(model, stay, goal), goal);
}

std::vector<double> dtmc_until(const Dtmc& chain, const StateSet& stay,
                               const StateSet& goal) {
  return dtmc_until(compile(chain), stay, goal);
}

std::vector<double> mdp_until(const CompiledModel& model, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options) {
  return mdp_reachability(absorb_escape_states(model, stay, goal), goal,
                          objective, options);
}

std::vector<double> mdp_until(const Mdp& mdp, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options) {
  return mdp_until(compile(mdp), stay, goal, objective, options);
}

std::vector<double> dtmc_cumulative_reward(const CompiledModel& model,
                                           std::size_t horizon,
                                           std::size_t threads,
                                           const Budget* budget) {
  TML_REQUIRE(model.deterministic(),
              "dtmc_cumulative_reward: compiled model is not a DTMC");
  const std::size_t n = model.num_states();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<double> values(n, 0.0);
  std::vector<double> next(n, 0.0);
  BudgetTracker tracker(budget_or_default(budget));
  for (std::size_t k = 0; k < horizon; ++k) {
    if (!tracker.tick()) tracker.require_ok("dtmc_cumulative_reward");
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            double q = model.state_reward(s);
            for (std::uint32_t t = choice_start[s]; t < choice_start[s + 1];
                 ++t) {
              q += prob[t] * values[target[t]];
            }
            next[s] = q;
          }
        },
        threads);
    values.swap(next);
  }
  record_bounded_sweeps(horizon);
  return values;
}

std::vector<double> dtmc_cumulative_reward(const Dtmc& chain,
                                           std::size_t horizon,
                                           std::size_t threads,
                                           const Budget* budget) {
  return dtmc_cumulative_reward(compile(chain), horizon, threads, budget);
}

std::vector<double> mdp_cumulative_reward(const CompiledModel& model,
                                          std::size_t horizon,
                                          Objective objective,
                                          std::size_t threads,
                                          const Budget* budget) {
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<double> values(n, 0.0);
  std::vector<double> next(n, 0.0);
  BudgetTracker tracker(budget_or_default(budget));
  for (std::size_t k = 0; k < horizon; ++k) {
    if (!tracker.tick()) tracker.require_ok("mdp_cumulative_reward");
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            bool first = true;
            double best = 0.0;
            for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
              double q = model.state_reward(s) + model.choice_reward(c);
              for (std::uint32_t t = choice_start[c]; t < choice_start[c + 1];
                   ++t) {
                q += prob[t] * values[target[t]];
              }
              if (first ||
                  (objective == Objective::kMaximize ? q > best : q < best)) {
                best = q;
                first = false;
              }
            }
            next[s] = best;
          }
        },
        threads);
    values.swap(next);
  }
  record_bounded_sweeps(horizon);
  return values;
}

std::vector<double> mdp_cumulative_reward(const Mdp& mdp, std::size_t horizon,
                                          Objective objective,
                                          std::size_t threads,
                                          const Budget* budget) {
  return mdp_cumulative_reward(compile(mdp), horizon, objective, threads,
                               budget);
}

}  // namespace tml
