#include "src/checker/reachability.hpp"

#include <cmath>

#include "src/mdp/graph.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

/// Restricts an until problem to a plain reachability problem: states in
/// neither `stay` nor `goal` are made absorbing (they can never contribute),
/// then P[F goal] on the modified model equals P[stay U goal] on the
/// original.
Dtmc absorb_escape_states(const Dtmc& chain, const StateSet& stay,
                          const StateSet& goal) {
  Dtmc out = chain;
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!stay[s] && !goal[s]) {
      out.set_transitions(s, {Transition{s, 1.0}});
    }
  }
  return out;
}

Mdp absorb_escape_states(const Mdp& mdp, const StateSet& stay,
                         const StateSet& goal) {
  Mdp out = mdp;
  const ActionId self = out.declare_action("__absorb__");
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    if (!stay[s] && !goal[s]) {
      auto& choices = out.mutable_choices(s);
      choices.clear();
      choices.push_back(Choice{self, 0.0, {Transition{s, 1.0}}});
    }
  }
  return out;
}

}  // namespace

std::vector<double> mdp_reachability(const Mdp& mdp, const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options) {
  TML_REQUIRE(targets.size() == mdp.num_states(),
              "mdp_reachability: target set size mismatch");
  const std::size_t n = mdp.num_states();

  StateSet zero, one;
  if (objective == Objective::kMaximize) {
    zero = complement(reachable_existential(mdp, targets));
    one = prob1_existential(mdp, targets);
  } else {
    zero = avoid_certain(mdp, targets);
    one = prob1_universal(mdp, targets);
  }

  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (one[s]) values[s] = 1.0;
  }

  std::vector<double> next = values;
  bool converged = false;
  std::size_t iterations = 0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      if (zero[s] || one[s]) continue;
      double best = objective == Objective::kMaximize ? 0.0 : 1.0;
      for (const Choice& c : mdp.choices(s)) {
        double q = 0.0;
        for (const Transition& t : c.transitions) {
          q += t.probability * values[t.target];
        }
        if (objective == Objective::kMaximize) {
          best = std::max(best, q);
        } else {
          best = std::min(best, q);
        }
      }
      next[s] = best;
      delta = std::max(delta, std::abs(next[s] - values[s]));
    }
    values.swap(next);
    iterations = iter + 1;
    if (delta < options.tolerance) {
      converged = true;
      break;
    }
  }
  if (!converged && options.throw_on_nonconvergence) {
    throw NumericError("mdp_reachability: no convergence after " +
                       std::to_string(iterations) + " iterations");
  }
  return values;
}

std::vector<double> mdp_bounded_until(const Mdp& mdp, const StateSet& stay,
                                      const StateSet& goal, std::size_t bound,
                                      Objective objective) {
  const std::size_t n = mdp.num_states();
  TML_REQUIRE(stay.size() == n && goal.size() == n,
              "mdp_bounded_until: set size mismatch");
  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) values[s] = 1.0;
  }
  std::vector<double> next = values;
  for (std::size_t k = 0; k < bound; ++k) {
    for (StateId s = 0; s < n; ++s) {
      if (goal[s]) {
        next[s] = 1.0;
        continue;
      }
      if (!stay[s]) {
        next[s] = 0.0;
        continue;
      }
      double best = objective == Objective::kMaximize ? 0.0 : 1.0;
      for (const Choice& c : mdp.choices(s)) {
        double q = 0.0;
        for (const Transition& t : c.transitions) {
          q += t.probability * values[t.target];
        }
        if (objective == Objective::kMaximize) {
          best = std::max(best, q);
        } else {
          best = std::min(best, q);
        }
      }
      next[s] = best;
    }
    values.swap(next);
  }
  return values;
}

std::vector<double> dtmc_bounded_until(const Dtmc& chain, const StateSet& stay,
                                       const StateSet& goal,
                                       std::size_t bound) {
  const std::size_t n = chain.num_states();
  TML_REQUIRE(stay.size() == n && goal.size() == n,
              "dtmc_bounded_until: set size mismatch");
  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) values[s] = 1.0;
  }
  std::vector<double> next = values;
  for (std::size_t k = 0; k < bound; ++k) {
    for (StateId s = 0; s < n; ++s) {
      if (goal[s]) {
        next[s] = 1.0;
        continue;
      }
      if (!stay[s]) {
        next[s] = 0.0;
        continue;
      }
      double q = 0.0;
      for (const Transition& t : chain.transitions(s)) {
        q += t.probability * values[t.target];
      }
      next[s] = q;
    }
    values.swap(next);
  }
  return values;
}

std::vector<double> dtmc_until(const Dtmc& chain, const StateSet& stay,
                               const StateSet& goal) {
  const Dtmc restricted = absorb_escape_states(chain, stay, goal);
  return dtmc_reachability(restricted, goal);
}

std::vector<double> mdp_until(const Mdp& mdp, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options) {
  const Mdp restricted = absorb_escape_states(mdp, stay, goal);
  return mdp_reachability(restricted, goal, objective, options);
}

std::vector<double> dtmc_cumulative_reward(const Dtmc& chain,
                                           std::size_t horizon) {
  const std::size_t n = chain.num_states();
  std::vector<double> values(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (std::size_t k = 0; k < horizon; ++k) {
    for (StateId s = 0; s < n; ++s) {
      double q = chain.state_reward(s);
      for (const Transition& t : chain.transitions(s)) {
        q += t.probability * values[t.target];
      }
      next[s] = q;
    }
    values.swap(next);
  }
  return values;
}

std::vector<double> mdp_cumulative_reward(const Mdp& mdp, std::size_t horizon,
                                          Objective objective) {
  const std::size_t n = mdp.num_states();
  std::vector<double> values(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (std::size_t k = 0; k < horizon; ++k) {
    for (StateId s = 0; s < n; ++s) {
      bool first = true;
      double best = 0.0;
      for (const Choice& c : mdp.choices(s)) {
        double q = mdp.state_reward(s) + c.reward;
        for (const Transition& t : c.transitions) {
          q += t.probability * values[t.target];
        }
        if (first || (objective == Objective::kMaximize ? q > best
                                                        : q < best)) {
          best = q;
          first = false;
        }
      }
      next[s] = best;
    }
    values.swap(next);
  }
  return values;
}

}  // namespace tml
