#include "src/checker/reachability.hpp"

#include <cmath>

#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"
#include "src/mdp/graph.hpp"
#include "src/mdp/solver.hpp"

namespace tml {

namespace {

void record_bounded_sweeps(std::size_t sweeps) {
  static stats::Counter& c_sweeps = stats::counter("checker.bounded.sweeps");
  c_sweeps.add(sweeps);
}

/// Restricts an until problem to a plain reachability problem: states in
/// neither `stay` nor `goal` are made absorbing (they can never contribute),
/// then P[F goal] on the modified model equals P[stay U goal] on the
/// original.
CompiledModel absorb_escape_states(const CompiledModel& model,
                                   const StateSet& stay,
                                   const StateSet& goal) {
  StateSet escape = set_union(stay, goal);
  escape.flip();
  return model.make_absorbing(escape);
}

}  // namespace

std::vector<double> mdp_reachability(const CompiledModel& model,
                                     const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options) {
  TML_REQUIRE(targets.size() == model.num_states(),
              "mdp_reachability: target set size mismatch");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();

  StateSet zero, one;
  if (objective == Objective::kMaximize) {
    zero = complement(reachable_existential(model, targets));
    one = prob1_existential(model, targets);
  } else {
    zero = avoid_certain(model, targets);
    one = prob1_universal(model, targets);
  }
  if (stats::enabled()) {  // skip the popcounts entirely when disabled
    static stats::Gauge& g_zero = stats::gauge("checker.prob0.states");
    static stats::Gauge& g_one = stats::gauge("checker.prob1.states");
    g_zero.set(static_cast<double>(count(zero)));
    g_one.set(static_cast<double>(count(one)));
  }

  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (one[s]) values[s] = 1.0;
  }

  std::vector<double> next = values;
  bool converged = false;
  std::size_t iterations = 0;
  double last_delta = 0.0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const double delta = parallel_transform_reduce(
        std::size_t{0}, n, kDefaultGrain, 0.0,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          double local = 0.0;
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            if (zero[s] || one[s]) continue;
            double best = objective == Objective::kMaximize ? 0.0 : 1.0;
            for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
              double q = 0.0;
              for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
                   ++k) {
                q += prob[k] * values[target[k]];
              }
              if (objective == Objective::kMaximize) {
                best = std::max(best, q);
              } else {
                best = std::min(best, q);
              }
            }
            next[s] = best;
            local = std::max(local, std::abs(next[s] - values[s]));
          }
          return local;
        },
        [](double a, double b) { return std::max(a, b); }, options.threads);
    values.swap(next);
    iterations = iter + 1;
    last_delta = delta;
    if (delta < options.tolerance) {
      converged = true;
      break;
    }
  }
  {
    static stats::Counter& c_iters = stats::counter("checker.vi.iterations");
    static stats::Gauge& g_delta = stats::gauge("checker.vi.last_delta");
    c_iters.add(iterations);
    g_delta.set(last_delta);
  }
  if (!converged && options.throw_on_nonconvergence) {
    throw NumericError("mdp_reachability: no convergence after " +
                       std::to_string(iterations) + " iterations");
  }
  return values;
}

std::vector<double> mdp_reachability(const Mdp& mdp, const StateSet& targets,
                                     Objective objective,
                                     const SolverOptions& options) {
  return mdp_reachability(compile(mdp), targets, objective, options);
}

std::vector<double> mdp_bounded_until(const CompiledModel& model,
                                      const StateSet& stay,
                                      const StateSet& goal, std::size_t bound,
                                      Objective objective,
                                      std::size_t threads) {
  const std::size_t n = model.num_states();
  TML_REQUIRE(stay.size() == n && goal.size() == n,
              "mdp_bounded_until: set size mismatch");
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) values[s] = 1.0;
  }
  std::vector<double> next = values;
  for (std::size_t k = 0; k < bound; ++k) {
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            if (goal[s]) {
              next[s] = 1.0;
              continue;
            }
            if (!stay[s]) {
              next[s] = 0.0;
              continue;
            }
            double best = objective == Objective::kMaximize ? 0.0 : 1.0;
            for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
              double q = 0.0;
              for (std::uint32_t t = choice_start[c]; t < choice_start[c + 1];
                   ++t) {
                q += prob[t] * values[target[t]];
              }
              if (objective == Objective::kMaximize) {
                best = std::max(best, q);
              } else {
                best = std::min(best, q);
              }
            }
            next[s] = best;
          }
        },
        threads);
    values.swap(next);
  }
  record_bounded_sweeps(bound);
  return values;
}

std::vector<double> mdp_bounded_until(const Mdp& mdp, const StateSet& stay,
                                      const StateSet& goal, std::size_t bound,
                                      Objective objective,
                                      std::size_t threads) {
  return mdp_bounded_until(compile(mdp), stay, goal, bound, objective, threads);
}

std::vector<double> dtmc_bounded_until(const CompiledModel& model,
                                       const StateSet& stay,
                                       const StateSet& goal, std::size_t bound,
                                       std::size_t threads) {
  TML_REQUIRE(model.deterministic(),
              "dtmc_bounded_until: compiled model is not a DTMC");
  const std::size_t n = model.num_states();
  TML_REQUIRE(stay.size() == n && goal.size() == n,
              "dtmc_bounded_until: set size mismatch");
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<double> values(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) values[s] = 1.0;
  }
  std::vector<double> next = values;
  for (std::size_t k = 0; k < bound; ++k) {
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            if (goal[s]) {
              next[s] = 1.0;
              continue;
            }
            if (!stay[s]) {
              next[s] = 0.0;
              continue;
            }
            double q = 0.0;
            for (std::uint32_t t = choice_start[s]; t < choice_start[s + 1];
                 ++t) {
              q += prob[t] * values[target[t]];
            }
            next[s] = q;
          }
        },
        threads);
    values.swap(next);
  }
  record_bounded_sweeps(bound);
  return values;
}

std::vector<double> dtmc_bounded_until(const Dtmc& chain, const StateSet& stay,
                                       const StateSet& goal, std::size_t bound,
                                       std::size_t threads) {
  return dtmc_bounded_until(compile(chain), stay, goal, bound, threads);
}

std::vector<double> dtmc_until(const CompiledModel& model, const StateSet& stay,
                               const StateSet& goal) {
  return dtmc_reachability(absorb_escape_states(model, stay, goal), goal);
}

std::vector<double> dtmc_until(const Dtmc& chain, const StateSet& stay,
                               const StateSet& goal) {
  return dtmc_until(compile(chain), stay, goal);
}

std::vector<double> mdp_until(const CompiledModel& model, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options) {
  return mdp_reachability(absorb_escape_states(model, stay, goal), goal,
                          objective, options);
}

std::vector<double> mdp_until(const Mdp& mdp, const StateSet& stay,
                              const StateSet& goal, Objective objective,
                              const SolverOptions& options) {
  return mdp_until(compile(mdp), stay, goal, objective, options);
}

std::vector<double> dtmc_cumulative_reward(const CompiledModel& model,
                                           std::size_t horizon,
                                           std::size_t threads) {
  TML_REQUIRE(model.deterministic(),
              "dtmc_cumulative_reward: compiled model is not a DTMC");
  const std::size_t n = model.num_states();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<double> values(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (std::size_t k = 0; k < horizon; ++k) {
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            double q = model.state_reward(s);
            for (std::uint32_t t = choice_start[s]; t < choice_start[s + 1];
                 ++t) {
              q += prob[t] * values[target[t]];
            }
            next[s] = q;
          }
        },
        threads);
    values.swap(next);
  }
  record_bounded_sweeps(horizon);
  return values;
}

std::vector<double> dtmc_cumulative_reward(const Dtmc& chain,
                                           std::size_t horizon,
                                           std::size_t threads) {
  return dtmc_cumulative_reward(compile(chain), horizon, threads);
}

std::vector<double> mdp_cumulative_reward(const CompiledModel& model,
                                          std::size_t horizon,
                                          Objective objective,
                                          std::size_t threads) {
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  std::vector<double> values(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (std::size_t k = 0; k < horizon; ++k) {
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            bool first = true;
            double best = 0.0;
            for (std::uint32_t c = row_start[s]; c < row_start[s + 1]; ++c) {
              double q = model.state_reward(s) + model.choice_reward(c);
              for (std::uint32_t t = choice_start[c]; t < choice_start[c + 1];
                   ++t) {
                q += prob[t] * values[target[t]];
              }
              if (first ||
                  (objective == Objective::kMaximize ? q > best : q < best)) {
                best = q;
                first = false;
              }
            }
            next[s] = best;
          }
        },
        threads);
    values.swap(next);
  }
  record_bounded_sweeps(horizon);
  return values;
}

std::vector<double> mdp_cumulative_reward(const Mdp& mdp, std::size_t horizon,
                                          Objective objective,
                                          std::size_t threads) {
  return mdp_cumulative_reward(compile(mdp), horizon, objective, threads);
}

}  // namespace tml
