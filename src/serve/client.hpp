// Retrying client for the tml_serve wire protocol.
//
// The server side of the protocol (protocol.hpp) classifies its failures;
// this is the client side that acts on the classification:
//
//  * TRANSIENT — connection refused, a connect/request deadline expiring,
//    the peer disconnecting mid-exchange, or a typed "overloaded"/"timeout"
//    response. The client resubmits after a capped exponential backoff
//    with deterministic seeded jitter (no thundering herd, reproducible
//    tests).
//  * PERMANENT — typed "bad_request"/"parse"/"internal" responses. Retrying
//    cannot help; the error surfaces to the caller immediately.
//
// Resubmission is safe because checks are idempotent: a check is a pure
// function of (model, formula, options), and check() stamps each request's
// "id" with the FNV-1a content key of exactly those bytes — every retry is
// the byte-identical line, and a response whose echoed id does not match
// the key is discarded as stale instead of being mistaken for the answer.
//
// Each attempt opens a fresh connection. The protocol is one-line-in /
// one-line-out, so connection reuse saves little, and a fresh socket
// guarantees a retry can never read a half-dead predecessor's leftovers.
//
// Every response line is parsed strictly; a line still unterminated at EOF
// (a torn write on the server side, a mid-response crash) is a transport
// error, never handed to the JSON parser as if it were complete.
//
// The backoff policy and the retry taxonomy are exposed as pure functions
// (backoff_delay_ms / retryable_kind) so tests pin them down without
// sockets; `ClientOptions::sleeper` injects the delay action itself.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/serve/json.hpp"

namespace tml {
namespace serve {

struct ClientOptions {
  /// TCP endpoint (host is always loopback-ish; the daemon binds loopback).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// When nonempty, connect to this Unix-domain socket instead of TCP.
  std::string unix_path;
  /// Deadline for establishing one connection.
  std::int64_t connect_timeout_ms = 2000;
  /// Deadline for one attempt's write + response read. 0 = unlimited.
  std::int64_t request_timeout_ms = 30000;
  /// Total attempts (first try + retries). 1 = never retry.
  std::size_t max_attempts = 4;
  /// Backoff before retry k (0-based) is min(base << k, max) ± jitter.
  std::int64_t backoff_base_ms = 50;
  std::int64_t backoff_max_ms = 2000;
  /// Jitter fraction in [0,1]: the delay is scaled by a uniform factor in
  /// [1-jitter, 1+jitter] drawn from the seeded stream below.
  double jitter = 0.25;
  /// Seed of the jitter stream — fixed seed, fixed delays (tested).
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
  /// How to wait, given a delay in ms. Defaults to sleep_for; tests inject
  /// a recorder to assert the schedule without wall-clock time.
  std::function<void(std::int64_t)> sleeper;
};

/// Typed client-side failure. `kind()` is either a transport kind
/// ("connect", "timeout", "disconnected", "stale_response") or the server's
/// wire error kind echoed from the response; `retryable()` says which side
/// of the taxonomy it fell on (a thrown ClientError is always the FINAL
/// outcome — retryable ones are thrown only once attempts are exhausted).
class ClientError : public Error {
 public:
  ClientError(std::string kind, const std::string& message, bool retryable)
      : Error(message), kind_(std::move(kind)), retryable_(retryable) {}
  const std::string& kind() const { return kind_; }
  bool retryable() const { return retryable_; }

 private:
  std::string kind_;
  bool retryable_;
};

/// The retry taxonomy for SERVER error kinds: true for "overloaded" and
/// "timeout", false for everything else ("bad_request", "parse",
/// "internal", unknown future kinds — fail fast rather than hammer).
bool retryable_kind(const std::string& kind);

/// Backoff before retry `attempt` (0-based): min(base << attempt, max)
/// scaled by a uniform jitter factor in [1-jitter, 1+jitter] drawn from
/// `rng`. Pure given the rng state; never negative.
std::int64_t backoff_delay_ms(std::size_t attempt, const ClientOptions& options,
                              Rng& rng);

/// FNV-1a 64 content key of a check request — the idempotency token
/// check() stamps into "id" (as a hex string) and verifies on the echo.
std::uint64_t request_key(const std::string& model,
                          const std::string& formula);

class Client {
 public:
  explicit Client(ClientOptions options);

  /// Sends one request object and returns the parsed response, retrying
  /// transient failures per the options. Throws ClientError once the
  /// failure is permanent or attempts are exhausted.
  Json request(const Json::Object& request);

  Json ping();
  Json metrics();
  /// Check with idempotent resubmission: the request's "id" is the content
  /// key of (model, formula), every attempt sends the byte-identical line,
  /// and a response with a different echoed id is treated as stale (and
  /// retried) rather than returned.
  Json check(const std::string& model, const std::string& formula,
             std::int64_t timeout_ms = 0, bool quotient = false);

  /// Transport attempts made over this client's lifetime (tests assert
  /// retry counts through this).
  std::uint64_t attempts_made() const { return attempts_made_; }

 private:
  /// One connect → write line → read line attempt. Throws ClientError
  /// (retryable for transport failures) — never returns a torn line.
  Json attempt_once(const std::string& line);
  Json request_line(const std::string& line, const Json* expect_id);

  ClientOptions options_;
  Rng jitter_rng_;
  std::uint64_t attempts_made_ = 0;
};

}  // namespace serve
}  // namespace tml
