// Minimal JSON value for the serving wire protocol.
//
// The daemon speaks line-delimited JSON (src/serve/protocol.hpp); this is
// the self-contained value type behind it — parse, navigate, build, dump —
// written in-tree because the build takes no third-party dependencies.
// Scope is exactly what the protocol needs:
//
//  * the six JSON kinds, objects as sorted maps (dump order is
//    deterministic, so responses are byte-stable for tests);
//  * strict parsing (UTF-8 passthrough, \uXXXX escapes including surrogate
//    pairs, a nesting-depth limit so a hostile request cannot blow the
//    stack) that throws tml::ParseError with a byte offset;
//  * compact single-line dump — never emits a newline, which is what makes
//    values safe to put on a line-delimited wire. Numbers print via
//    std::to_chars (shortest round-trip); non-finite numbers have no JSON
//    spelling and dump as null, which the protocol documents.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  /// Any arithmetic type maps to the JSON number kind (doubles hold every
  /// value the protocol carries; counters above 2^53 would lose precision,
  /// which a line-delimited debugging protocol can live with).
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Json(T v) : value_(static_cast<double>(v)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw tml::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Object& as_object();

  /// Object member lookup: nullptr when this is not an object or the key
  /// is absent.
  const Json* find(std::string_view key) const;

  /// Strict parse of exactly one JSON value (surrounding whitespace
  /// allowed, trailing garbage rejected). Throws tml::ParseError naming the
  /// byte offset. `max_depth` bounds array/object nesting.
  static Json parse(std::string_view text, std::size_t max_depth = 64);

  /// Compact one-line serialization (no newlines anywhere — values are
  /// line-delimited-wire safe). Object keys in sorted order; non-finite
  /// numbers dump as null.
  std::string dump() const;

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace tml
