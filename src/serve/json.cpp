#include "src/serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>

#include "src/common/numeric.hpp"

namespace tml {

namespace {

[[noreturn]] void fail_at(std::size_t offset, const std::string& message) {
  throw ParseError("JSON parse error at offset " + std::to_string(offset) +
                   ": " + message);
}

class JsonParser {
 public:
  JsonParser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json parse() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing garbage after value");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > max_depth_) fail_at(pos_, "nesting exceeds depth limit");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail_at(pos_, "expected 'null'");
        return Json(nullptr);
      case 't':
        if (!consume_literal("true")) fail_at(pos_, "expected 'true'");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail_at(pos_, "expected 'false'");
        return Json(false);
      case '"':
        return Json(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  Json parse_number() {
    // JSON's number grammar is stricter than what parse_double accepts
    // ("+1", "inf", ".5", "01", "1." are all JSON-invalid), so the token is
    // shaped here first and only then converted.
    const std::string_view rest = text_.substr(pos_);
    const auto digit = [&](std::size_t i) {
      return i < rest.size() && rest[i] >= '0' && rest[i] <= '9';
    };
    std::size_t i = 0;
    if (i < rest.size() && rest[i] == '-') ++i;
    const std::size_t int_start = i;
    while (digit(i)) ++i;
    if (i == int_start) fail_at(pos_, "expected a value");
    if (rest[int_start] == '0' && i - int_start > 1) {
      fail_at(pos_, "leading zeros are not allowed");
    }
    if (i < rest.size() && rest[i] == '.') {
      ++i;
      const std::size_t frac_start = i;
      while (digit(i)) ++i;
      if (i == frac_start) fail_at(pos_, "expected digits after '.'");
    }
    if (i < rest.size() && (rest[i] == 'e' || rest[i] == 'E')) {
      ++i;
      if (i < rest.size() && (rest[i] == '+' || rest[i] == '-')) ++i;
      const std::size_t exp_start = i;
      while (digit(i)) ++i;
      if (i == exp_start) fail_at(pos_, "expected exponent digits");
    }
    double value = 0.0;
    const std::size_t consumed = parse_finite_double(rest.substr(0, i), &value);
    // A shape-valid token can still fail conversion by overflowing to
    // infinity, which has no JSON meaning.
    if (consumed != i) fail_at(pos_, "number out of range");
    pos_ += i;
    return Json(value);
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      // Bulk-copy the common case: a run of plain bytes up to the next
      // quote, escape, or control character. Requests carry whole PRISM
      // models as single strings, so this path sees hundreds of KB; the
      // byte-at-a-time loop it replaces dominated warm-request latency.
      std::size_t run = pos_;
      while (run < text_.size()) {
        const unsigned char p = static_cast<unsigned char>(text_[run]);
        if (p == '"' || p == '\\' || p < 0x20) break;
        ++run;
      }
      if (run > pos_) {
        out.append(text_.substr(pos_, run - pos_));
        pos_ = run;
      }
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail_at(pos_, "raw control character in string");
      ++pos_;
      if (pos_ >= text_.size()) fail_at(pos_, "dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail_at(pos_ - 1, "unknown escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail_at(pos_, "truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail_at(pos_ - 1, "bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate escape must follow.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail_at(pos_, "high surrogate not followed by \\u low surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) {
        fail_at(pos_, "invalid low surrogate");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail_at(pos_, "unpaired low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_array(std::size_t depth) {
    ++pos_;  // '['
    Json::Array items;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(items));
      }
      fail_at(pos_, "expected ',' or ']' in array");
    }
  }

  Json parse_object(std::size_t depth) {
    ++pos_;  // '{'
    Json::Object members;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      if (peek() != '"') fail_at(pos_, "expected string key in object");
      std::string key = parse_string();
      if (peek() != ':') fail_at(pos_, "expected ':' after object key");
      ++pos_;
      members[std::move(key)] = parse_value(depth + 1);
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail_at(pos_, "expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[c >> 4]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(raw);  // UTF-8 bytes pass through
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& value, std::string& out);

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan spelling
    return;
  }
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), v);
  out.append(buffer, result.ptr);
}

void dump_value(const Json& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    dump_number(value.as_number(), out);
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Json& item : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(item, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, member] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(key, out);
      out.push_back(':');
      dump_value(member, out);
    }
    out.push_back('}');
  }
}

}  // namespace

bool Json::as_bool() const {
  TML_REQUIRE(is_bool(), "Json: value is not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  TML_REQUIRE(is_number(), "Json: value is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  TML_REQUIRE(is_string(), "Json: value is not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  TML_REQUIRE(is_array(), "Json: value is not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  TML_REQUIRE(is_object(), "Json: value is not an object");
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  TML_REQUIRE(is_object(), "Json: value is not an object");
  return std::get<Object>(value_);
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& members = std::get<Object>(value_);
  const auto it = members.find(std::string(key));
  return it == members.end() ? nullptr : &it->second;
}

Json Json::parse(std::string_view text, std::size_t max_depth) {
  return JsonParser(text, max_depth).parse();
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

}  // namespace tml
