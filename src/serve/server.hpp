// Checking-as-a-service: the tml_serve daemon core.
//
// A `Server` owns one listening socket (TCP on 127.0.0.1, or a Unix-domain
// socket), a `ModelCache` of compiled models keyed by content hash, and a
// view onto the process ThreadPool. The loop per connection is:
//
//   read line → parse request → admission control → submit to pool →
//   check with a per-request Budget → write one response line
//
//  * Admission control: at most `max_queue` check requests may be in
//    flight; request `max_queue + 1` gets the typed "overloaded" error
//    response immediately instead of queueing without bound. `max_queue`
//    of 0 rejects every check (useful for drain mode and tests).
//  * Per-request budgets: each check runs under its own Budget (request
//    "timeout_ms", falling back to the server default), threaded through
//    `CheckOptions` — concurrent requests with different deadlines never
//    share the racy process-wide default budget. Every budget carries the
//    server's cancel token, so stop() unwinds in-flight solves at their
//    next checkpoint.
//  * Graceful degradation: a deadline firing mid-solve produces a
//    "status":"partial" response with the certified [lo, hi] bracket the
//    interval engine reached (see protocol.hpp) — never a connection error.
//  * Requests execute as detached ThreadPool tasks; an engine-level
//    parallel_for inside a request degrades to inline execution (pool
//    re-entrancy guard), so one request occupies one worker — throughput
//    scales across requests rather than inside one.
//
// Observability: every stage records serve.* metrics (see the schema in
// src/common/stats.cpp); the "metrics" op dumps the whole registry, with
// latency p50/p99 gauges maintained from a sliding window of request
// latencies.
//
// `handle_line()` — one request line in, one response line out — is public:
// the protocol logic is testable without sockets, and the socket layer is
// exactly "frame lines, call handle_line, write the result".

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/serve/cache.hpp"

namespace tml {
namespace serve {

struct ServeOptions {
  /// TCP listen port on 127.0.0.1; 0 = ephemeral (read back via port()).
  /// Ignored when unix_path is set.
  std::uint16_t port = 0;
  /// When nonempty, listen on this Unix-domain socket path instead of TCP.
  std::string unix_path;
  /// Compiled-model cache entries to retain (LRU beyond this).
  std::size_t cache_capacity = 32;
  /// In-flight check requests admitted before "overloaded" rejections.
  std::size_t max_queue = 64;
  /// Per-request wall-clock deadline in ms when the request names none;
  /// 0 = unlimited.
  std::int64_t default_timeout_ms = 0;
  /// Solver threads per request (CheckOptions::threads). Requests already
  /// run one-per-worker, so >1 only matters for a mostly-idle server.
  std::size_t solver_threads = 1;
  /// Per-connection I/O deadline in ms (slow-loris defense): a peer that
  /// neither completes a request line nor drains its responses within this
  /// window gets a typed "timeout" error and is disconnected. 0 = none.
  std::int64_t io_timeout_ms = 30000;
  /// Longest accepted request line. A connection exceeding it gets a typed
  /// "bad_request" response and is closed (the oversize prefix is never
  /// buffered beyond this bound).
  std::size_t max_line_bytes = 64u << 20;
  /// Concurrent connections admitted; one past the cap is sent a typed
  /// "overloaded" response and closed immediately. 0 = unlimited.
  std::size_t max_connections = 256;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept thread. Throws tml::Error when
  /// the socket cannot be bound.
  void start();

  /// Stops accepting, cancels in-flight checks (their budgets share the
  /// server cancel token), unblocks and joins every connection. Idempotent.
  void stop();

  /// Graceful drain (the SIGTERM path): stops accepting connections,
  /// rejects NEW check requests with "overloaded", lets in-flight requests
  /// finish and their responses flush, then closes every connection and
  /// returns. No in-flight work is cancelled and no written response is
  /// truncated — the difference from stop(). Idempotent; stop() afterwards
  /// is a no-op beyond flipping the cancel token.
  void drain();
  /// True once drain() has begun (reported by ping/metrics as "draining").
  bool draining() const;
  /// Milliseconds since the server object was constructed (ping/metrics
  /// "uptime_ms").
  std::uint64_t uptime_ms() const;

  /// Actual TCP port after start() (resolves port 0); 0 in Unix mode.
  std::uint16_t port() const;

  /// Processes one request line and returns the response line (without the
  /// trailing newline). Never throws — failures become "status":"error"
  /// responses. Public for direct protocol tests.
  std::string handle_line(const std::string& line);

  const ModelCache& cache() const;
  /// Check requests currently admitted (in queue or executing).
  std::size_t in_flight() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace tml
