#include "src/serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/checker/check.hpp"
#include "src/checker/reachability.hpp"
#include "src/common/fault.hpp"
#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"
#include "src/logic/parser.hpp"
#include "src/serve/protocol.hpp"

namespace tml {
namespace serve {

namespace {

/// Sliding window of request latencies feeding the p50/p99 gauges. Fixed
/// ring so a long-lived daemon reports recent behaviour, not its lifetime
/// average.
class LatencyWindow {
 public:
  void record(double ms) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.size() < kWindow) {
      samples_.push_back(ms);
    } else {
      samples_[next_] = ms;
    }
    next_ = (next_ + 1) % kWindow;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    static stats::Gauge& g_p50 = stats::gauge("serve.latency_p50_ms");
    static stats::Gauge& g_p99 = stats::gauge("serve.latency_p99_ms");
    g_p50.set(quantile(sorted, 0.50));
    g_p99.set(quantile(sorted, 0.99));
  }

 private:
  static double quantile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const std::size_t index = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
    return sorted[index];
  }

  static constexpr std::size_t kWindow = 512;
  std::mutex mutex_;
  std::vector<double> samples_;
  std::size_t next_ = 0;
};

/// Certified partial bracket at the initial state for an unbounded P query
/// on an MDP — the graceful-degradation payload after a budget stop. The
/// interval engine's bracket entry point degrades instead of throwing:
/// even with the budget already spent it returns the graph-certified
/// prob0/prob1 bounds, refined by however many sweeps fit before the stop.
struct PartialBracket {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t sweeps = 0;
  BudgetStop stop = BudgetStop::kNone;
};

std::optional<PartialBracket> partial_bracket(const CompiledModel& model,
                                              const StateFormula& formula,
                                              const Budget& budget) {
  if (model.deterministic()) return std::nullopt;
  if (formula.kind() != StateFormula::Kind::kProbQuery &&
      formula.kind() != StateFormula::Kind::kProb) {
    return std::nullopt;
  }
  const PathFormula& path = formula.path();
  if (path.step_bound()) return std::nullopt;
  if (path.kind() != PathFormula::Kind::kUntil &&
      path.kind() != PathFormula::Kind::kEventually) {
    return std::nullopt;
  }
  try {
    const Objective objective =
        formula.quantifier() && *formula.quantifier() == Quantifier::kMin
            ? Objective::kMinimize
            : Objective::kMaximize;
    StateSet stay(model.num_states(), true);
    if (path.kind() == PathFormula::Kind::kUntil) {
      stay = satisfying_states(model, path.left());
    }
    const StateSet goal = satisfying_states(model, path.right());
    SolverOptions options;
    options.budget = budget;
    const SolveResult bracket =
        mdp_until_bracket(model, stay, goal, objective, options);
    const StateId init = model.initial_state();
    return PartialBracket{bracket.lo[init], bracket.hi[init],
                          bracket.iterations, bracket.budget_stop};
  } catch (const Error&) {
    // Operand evaluation can itself exhaust the budget; then there is no
    // bracket to salvage and the partial response carries null bounds.
    return std::nullopt;
  }
}

/// Writes the whole buffer or reports failure — never a silent truncation.
/// Loops on short writes and EINTR; MSG_NOSIGNAL (the fd also runs under an
/// ignored SIGPIPE in tml_serve) turns a dead peer into a return value; an
/// SO_SNDTIMEO expiry (set per-connection from ServeOptions::io_timeout_ms)
/// surfaces as EAGAIN and counts as an I/O timeout. On any failure the
/// caller must close the connection: a partially written line has no '\n',
/// so a client can never mistake the fragment for a complete response.
bool send_all(int fd, const std::string& data) {
  static stats::Counter& c_io_timeouts = stats::counter("serve.io_timeouts");
  const fault::WireAction action = fault::wire("serve.write");
  if (action.kind == fault::WireAction::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(action.delay_ns));
  }
  if (action.kind == fault::WireAction::Kind::kDrop) {
    return false;  // injected EPIPE: peer vanished before the write
  }
  // Injected short writes squeeze the data out one byte per send(2) —
  // every iteration of the loop below is a "short write" the loop must
  // survive without reordering or truncating.
  const std::size_t stride = action.kind == fault::WireAction::Kind::kShort
                                 ? 1
                                 : data.size();
  std::size_t sent = 0;
  while (sent < data.size()) {
    const std::size_t len = std::min(stride, data.size() - sent);
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + sent, len, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + sent, len, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO fired: the peer stopped draining its responses
        // (write-side slow loris).
        c_io_timeouts.bump();
      }
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServeOptions opts)
      : options(std::move(opts)), cache(options.cache_capacity) {}

  ServeOptions options;
  ModelCache cache;
  CancelToken cancel;  // shared into every request budget; stop() flips it
  LatencyWindow latency;
  const std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();

  std::atomic<bool> stopping{false};
  std::atomic<bool> draining{false};
  std::atomic<std::size_t> in_flight{0};
  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::thread accept_thread;

  std::mutex conn_mutex;
  struct Connection {
    std::atomic<int> fd{-1};
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::vector<std::unique_ptr<Connection>> connections;

  // -- request handling ----------------------------------------------------

  Json::Object run_check(const Request& request);
  std::string handle(const std::string& line);

  std::uint64_t uptime_ms() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
  }

  /// Liveness fields shared by ping and metrics responses (protocol v2).
  void add_liveness(Json::Object& response) const {
    response["proto"] = kProtocolVersion;
    response["uptime_ms"] = uptime_ms();
    response["draining"] = draining.load(std::memory_order_acquire);
  }

  // -- sockets -------------------------------------------------------------

  void bind_and_listen();
  void accept_loop();
  void connection_loop(Connection* conn);
  void reap_finished_locked();
};

Json::Object Server::Impl::run_check(const Request& request) {
  Json::Object response;

  ModelCache::Result cached;
  try {
    cached = cache.get(request.model);
  } catch (const Error& e) {
    throw WireError("parse", std::string("model: ") + e.what());
  }
  StateFormulaPtr formula;
  try {
    formula = parse_pctl(request.formula);
  } catch (const Error& e) {
    throw WireError("parse", std::string("formula: ") + e.what());
  }

  const std::int64_t timeout_ms = request.timeout_ms > 0
                                      ? request.timeout_ms
                                      : options.default_timeout_ms;
  CheckOptions check_options;
  check_options.budget = Budget{};
  if (timeout_ms > 0) check_options.budget.deadline_in_ms(timeout_ms);
  check_options.budget.cancel = cancel;
  check_options.threads = options.solver_threads;
  check_options.quotient = request.quotient;

  response["cache"] = cached.hit ? "hit" : "miss";
  response["states"] = cached.entry->num_states;

  try {
    const CheckResult result =
        check(cached.entry->model, *formula, check_options);
    response["status"] = "ok";
    response["verdict"] = result.satisfied;
    if (result.value) response["value"] = *result.value;
    if (result.quotient_states > 0) {
      response["quotient_states"] = result.quotient_states;
    }
  } catch (const BudgetExhausted& e) {
    static stats::Counter& c_exhausted =
        stats::counter("serve.deadline_exhausted");
    c_exhausted.bump();
    response["status"] = "partial";
    response["budget_status"] = "exhausted";
    response["budget_stop"] = to_string(e.stop());
    const std::optional<PartialBracket> bracket =
        partial_bracket(cached.entry->model, *formula, check_options.budget);
    if (bracket) {
      response["lo"] = bracket->lo;
      response["hi"] = bracket->hi;
      response["sweeps"] = bracket->sweeps;
    } else {
      response["lo"] = nullptr;
      response["hi"] = nullptr;
    }
  }
  return response;
}

std::string Server::Impl::handle(const std::string& line) {
  static stats::Counter& c_requests = stats::counter("serve.requests");
  static stats::Counter& c_errors = stats::counter("serve.errors");
  static stats::Counter& c_rejected = stats::counter("serve.rejected");
  static stats::Timer& t_request = stats::timer("serve.request.time");
  static stats::Gauge& g_depth = stats::gauge("serve.queue_depth");
  static stats::Gauge& g_peak = stats::gauge("serve.queue_peak");

  const stats::ScopedTimer span(t_request);
  const auto started = std::chrono::steady_clock::now();
  c_requests.bump();

  Request request;
  try {
    request = parse_request(line);
  } catch (const WireError& e) {
    c_errors.bump();
    return error_response(Json{}, e.kind(), e.what());
  }

  Json::Object response;
  try {
    switch (request.op) {
      case Request::Op::kPing:
        response["status"] = "ok";
        add_liveness(response);
        break;
      case Request::Op::kMetrics: {
        // stats_to_json() pretty-prints across lines; re-emit compact so
        // the response stays one wire line.
        response["status"] = "ok";
        add_liveness(response);
        response["metrics"] = Json::parse(stats_to_json());
        break;
      }
      case Request::Op::kCheck: {
        // Draining: in-flight checks run to completion, new ones are
        // refused with the retryable kind so a client fails over.
        if (draining.load(std::memory_order_acquire)) {
          c_rejected.bump();
          c_errors.bump();
          return error_response(request.id, "overloaded",
                                "server is draining; resubmit elsewhere");
        }
        // Admission control: bounded in-flight set, typed reject beyond it.
        const std::size_t depth =
            in_flight.fetch_add(1, std::memory_order_acq_rel);
        if (depth >= options.max_queue) {
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
          c_rejected.bump();
          c_errors.bump();
          return error_response(
              request.id, "overloaded",
              "queue full (" + std::to_string(options.max_queue) +
                  " in flight); retry later");
        }
        g_depth.set(static_cast<double>(depth + 1));
        g_peak.set_max(static_cast<double>(depth + 1));
        // Multiplex onto the pool: the connection thread only frames lines
        // and writes responses; the engine work happens on a worker. The
        // task owns the promise, so a task dropped at pool teardown breaks
        // it and future.get() throws instead of hanging.
        auto promise = std::make_shared<std::promise<Json::Object>>();
        std::future<Json::Object> future = promise->get_future();
        ThreadPool::global().submit([this, promise, &request] {
          try {
            promise->set_value(run_check(request));
          } catch (...) {
            promise->set_exception(std::current_exception());
          }
        });
        try {
          response = future.get();
        } catch (...) {
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
          g_depth.set(static_cast<double>(
              in_flight.load(std::memory_order_relaxed)));
          throw;
        }
        in_flight.fetch_sub(1, std::memory_order_acq_rel);
        g_depth.set(
            static_cast<double>(in_flight.load(std::memory_order_relaxed)));
        break;
      }
    }
  } catch (const WireError& e) {
    c_errors.bump();
    return error_response(request.id, e.kind(), e.what());
  } catch (const std::exception& e) {
    c_errors.bump();
    return error_response(request.id, "internal", e.what());
  }

  if (!request.id.is_null()) response["id"] = request.id;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  response["time_ms"] = elapsed_ms;
  latency.record(elapsed_ms);
  return Json(std::move(response)).dump();
}

void Server::Impl::bind_and_listen() {
  const bool unix_mode = !options.unix_path.empty();
  listen_fd = ::socket(unix_mode ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  TML_REQUIRE(listen_fd >= 0, "serve: socket() failed: " << strerror(errno));

  if (unix_mode) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    TML_REQUIRE(options.unix_path.size() < sizeof(addr.sun_path),
                "serve: unix socket path too long");
    std::strncpy(addr.sun_path, options.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options.unix_path.c_str());  // stale socket from a prior run
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const std::string reason = strerror(errno);
      ::close(listen_fd);
      listen_fd = -1;
      throw Error("serve: cannot bind " + options.unix_path + ": " + reason);
    }
  } else {
    const int reuse = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(options.port);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const std::string reason = strerror(errno);
      ::close(listen_fd);
      listen_fd = -1;
      throw Error("serve: cannot bind 127.0.0.1:" +
                  std::to_string(options.port) + ": " + reason);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port = ntohs(bound.sin_port);
  }

  TML_REQUIRE(::listen(listen_fd, 64) == 0,
              "serve: listen() failed: " << strerror(errno));
}

void Server::Impl::accept_loop() {
  static stats::Counter& c_connections = stats::counter("serve.connections");
  static stats::Counter& c_conn_rejected =
      stats::counter("serve.conn_rejected");
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping.load(std::memory_order_acquire) ||
          draining.load(std::memory_order_acquire)) {
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Descriptor/buffer exhaustion is transient: back off instead of
        // abandoning the listener (which would strand the daemon alive but
        // unreachable). Pending clients keep queueing in the backlog.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listener closed under us
    }
    const fault::WireAction action = fault::wire("serve.accept");
    if (action.kind == fault::WireAction::Kind::kDelay) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(action.delay_ns));
    } else if (action.kind != fault::WireAction::Kind::kNone) {
      ::close(fd);  // injected accept failure: connection never happened
      continue;
    }
    // The response-write deadline rides on the socket itself (send_all sees
    // the expiry as EAGAIN); the read deadline is enforced by poll() in the
    // connection loop.
    if (options.io_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options.io_timeout_ms / 1000;
      tv.tv_usec = (options.io_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    const std::lock_guard<std::mutex> lock(conn_mutex);
    reap_finished_locked();
    if (options.max_connections > 0 &&
        connections.size() >= options.max_connections) {
      // Over the cap: a typed retryable refusal, not a silent RST.
      c_conn_rejected.bump();
      send_all(fd, error_response(Json{}, "overloaded",
                                  "connection limit (" +
                                      std::to_string(options.max_connections) +
                                      ") reached; retry later") +
                       "\n");
      ::close(fd);
      continue;
    }
    c_connections.bump();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { connection_loop(raw); });
    connections.push_back(std::move(conn));
  }
}

void Server::Impl::connection_loop(Connection* conn) {
  // One request line in, one response line out, in order. A response is
  // written even for malformed input; framing overflow (a "line" that
  // never ends), an idle deadline, a failed write, drain, or peer EOF
  // closes the connection. Reads go through poll() in short ticks so the
  // loop notices drain/stop promptly and can enforce the read deadline
  // (slow-loris defense) without per-byte timers.
  static stats::Counter& c_io_timeouts = stats::counter("serve.io_timeouts");
  static stats::Counter& c_oversized = stats::counter("serve.oversized");
  constexpr int kPollTickMs = 100;
  const int fd = conn->fd.load(std::memory_order_acquire);
  std::string buffer;
  char chunk[4096];
  auto last_activity = std::chrono::steady_clock::now();
  for (;;) {
    if (stopping.load(std::memory_order_acquire)) break;
    // Drain: every complete buffered line has been answered by the time we
    // are back here; a partial line in the buffer belongs to a request
    // that never finished arriving, which the client retries elsewhere.
    if (draining.load(std::memory_order_acquire)) break;

    const fault::WireAction action = fault::wire("serve.read");
    if (action.kind == fault::WireAction::Kind::kDelay) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(action.delay_ns));
    }
    if (action.kind == fault::WireAction::Kind::kDrop) {
      break;  // injected mid-request disconnect: treat as peer EOF
    }
    // An injected short read delivers one byte per recv(2): the framing
    // below must reassemble lines byte-at-a-time without corruption.
    const std::size_t want =
        action.kind == fault::WireAction::Kind::kShort ? 1 : sizeof(chunk);
    // Opportunistic non-blocking read first: on a busy stream the next
    // request is usually already queued in the kernel, so the common case
    // skips the poll syscall entirely. Only an empty buffer falls back to
    // the poll tick — which is where the io deadline is enforced and what
    // keeps drain/stop latency bounded while the connection idles.
    const ssize_t n = ::recv(fd, chunk, want, MSG_DONTWAIT);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pending{};
      pending.fd = fd;
      pending.events = POLLIN;
      const int ready = ::poll(&pending, 1, kPollTickMs);
      if (ready < 0 && errno != EINTR) break;
      if (ready == 0 && options.io_timeout_ms > 0 &&
          std::chrono::steady_clock::now() - last_activity >=
              std::chrono::milliseconds(options.io_timeout_ms)) {
        // The peer opened a line (or the connection) and stalled.
        c_io_timeouts.bump();
        send_all(fd, error_response(Json{}, "timeout",
                                    "no complete request within " +
                                        std::to_string(options.io_timeout_ms) +
                                        " ms; closing") +
                         "\n");
        break;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    last_activity = std::chrono::steady_clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));

    bool open = true;
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const fault::WireAction parse_action = fault::wire("serve.parse");
      if (parse_action.kind == fault::WireAction::Kind::kDelay) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(parse_action.delay_ns));
      } else if (parse_action.kind != fault::WireAction::Kind::kNone) {
        // Injected parse-stage loss: the request dies before a response
        // exists. The client sees a missing reply, never a torn one.
        open = false;
        break;
      }
      // A failed/timed-out write closes the connection: the unfinished
      // line carries no '\n', so the peer cannot misread the fragment as
      // a complete response.
      open = send_all(fd, handle(line) + "\n");
    }
    if (!open) break;
    if (buffer.size() > options.max_line_bytes) {
      c_oversized.bump();
      send_all(fd,
               error_response(Json{}, "bad_request",
                              "request line exceeds " +
                                  std::to_string(options.max_line_bytes) +
                                  " bytes") +
                   "\n");
      break;
    }
  }
  // Do NOT close here: stop() may still shutdown() this fd, and a close
  // here could let the kernel recycle the number onto an unrelated
  // descriptor first. The reaper (or stop) closes after joining us. But DO
  // shutdown(2) now — it keeps the descriptor number reserved while pushing
  // a FIN to the peer, so a client whose response was lost sees a prompt
  // EOF ("disconnected", retry now) instead of silence until its own
  // request deadline.
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void Server::Impl::reap_finished_locked() {
  for (auto it = connections.begin(); it != connections.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      const int fd = (*it)->fd.load(std::memory_order_acquire);
      if (fd >= 0) ::close(fd);
      it = connections.erase(it);
    } else {
      ++it;
    }
  }
}

Server::Server(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

void Server::start() {
  impl_->bind_and_listen();
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void Server::drain() {
  if (impl_->draining.exchange(true, std::memory_order_acq_rel)) return;
  if (impl_->stopping.load(std::memory_order_acquire)) return;
  // Stop accepting: close the listener and let the accept thread fall out.
  if (impl_->listen_fd >= 0) {
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
    ::close(impl_->listen_fd);
  }
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  impl_->listen_fd = -1;
  // Connection threads observe the draining flag within one poll tick,
  // AFTER answering every complete buffered line — in-flight work finishes
  // and flushes; nothing is cancelled, no fd is shut down under a writer.
  {
    const std::lock_guard<std::mutex> lock(impl_->conn_mutex);
    for (auto& conn : impl_->connections) {
      if (conn->thread.joinable()) conn->thread.join();
      const int fd = conn->fd.load(std::memory_order_acquire);
      if (fd >= 0) ::close(fd);
    }
    impl_->connections.clear();
  }
  if (!impl_->options.unix_path.empty()) {
    ::unlink(impl_->options.unix_path.c_str());
  }
}

bool Server::draining() const {
  return impl_->draining.load(std::memory_order_acquire);
}

std::uint64_t Server::uptime_ms() const { return impl_->uptime_ms(); }

void Server::stop() {
  if (impl_->stopping.exchange(true, std::memory_order_acq_rel)) return;
  // Unwind in-flight solves at their next budget checkpoint.
  impl_->cancel.cancel();
  if (impl_->listen_fd >= 0) {
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
    ::close(impl_->listen_fd);
  }
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  {
    const std::lock_guard<std::mutex> lock(impl_->conn_mutex);
    for (auto& conn : impl_->connections) {
      const int fd = conn->fd.load(std::memory_order_acquire);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& conn : impl_->connections) {
      if (conn->thread.joinable()) conn->thread.join();
      const int fd = conn->fd.load(std::memory_order_acquire);
      if (fd >= 0) ::close(fd);
    }
    impl_->connections.clear();
  }
  impl_->listen_fd = -1;
  if (!impl_->options.unix_path.empty()) {
    ::unlink(impl_->options.unix_path.c_str());
  }
}

std::uint16_t Server::port() const { return impl_->bound_port; }

std::string Server::handle_line(const std::string& line) {
  return impl_->handle(line);
}

const ModelCache& Server::cache() const { return impl_->cache; }

std::size_t Server::in_flight() const {
  return impl_->in_flight.load(std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace tml
