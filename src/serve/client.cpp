#include "src/serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

namespace tml {
namespace serve {

namespace {

/// Absolute attempt deadline; unbounded when the timeout option is 0.
struct Deadline {
  explicit Deadline(std::int64_t timeout_ms)
      : bounded(timeout_ms > 0),
        at(std::chrono::steady_clock::now() +
           std::chrono::milliseconds(timeout_ms)) {}

  /// Remaining budget as a poll(2) timeout: -1 = unbounded, 0 = expired.
  int remaining_poll_ms() const {
    if (!bounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          at - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return 0;
    return static_cast<int>(std::min<long long>(left, INT_MAX));
  }

  bool bounded;
  std::chrono::steady_clock::time_point at;
};

struct UniqueFd {
  int fd = -1;
  ~UniqueFd() {
    if (fd >= 0) ::close(fd);
  }
  UniqueFd() = default;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
};

/// Non-blocking connect bounded by connect_timeout_ms. The socket stays
/// non-blocking: every later send/recv is paced by poll() against the
/// attempt deadline instead of kernel-default blocking.
int connect_with_timeout(const ClientOptions& options) {
  const bool unix_mode = !options.unix_path.empty();
  const int fd =
      ::socket(unix_mode ? AF_UNIX : AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    throw ClientError("connect",
                      std::string("socket(): ") + std::strerror(errno), true);
  }
  UniqueFd guard;
  guard.fd = fd;

  int rc;
  if (unix_mode) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.unix_path.size() >= sizeof(addr.sun_path)) {
      throw ClientError("connect", "unix socket path too long", false);
    }
    std::strncpy(addr.sun_path, options.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      // A host that does not parse is a configuration error, not weather.
      throw ClientError("connect", "bad host '" + options.host + "'", false);
    }
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    throw ClientError("connect",
                      std::string("connect(): ") + std::strerror(errno), true);
  }
  if (rc != 0) {
    pollfd waiting{};
    waiting.fd = fd;
    waiting.events = POLLOUT;
    const int timeout = options.connect_timeout_ms > 0
                            ? static_cast<int>(std::min<std::int64_t>(
                                  options.connect_timeout_ms, INT_MAX))
                            : -1;
    const int ready = ::poll(&waiting, 1, timeout);
    if (ready == 0) {
      throw ClientError("connect",
                        "connect timed out after " +
                            std::to_string(options.connect_timeout_ms) + " ms",
                        true);
    }
    if (ready < 0) {
      throw ClientError("connect",
                        std::string("poll(): ") + std::strerror(errno), true);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      throw ClientError("connect",
                        std::string("connect(): ") + std::strerror(err), true);
    }
  }
  guard.fd = -1;  // handed to the caller
  return fd;
}

void send_line(int fd, const std::string& data, const Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd waiting{};
      waiting.fd = fd;
      waiting.events = POLLOUT;
      const int ready = ::poll(&waiting, 1, deadline.remaining_poll_ms());
      if (ready == 0) {
        throw ClientError("timeout", "request write timed out", true);
      }
      if (ready < 0 && errno != EINTR) {
        throw ClientError("disconnected",
                          std::string("poll(): ") + std::strerror(errno), true);
      }
      continue;
    }
    throw ClientError("disconnected", "connection closed during write", true);
  }
}

/// Reads one complete '\n'-terminated line. A connection that ends before
/// the terminator is a transport error — the fragment is discarded, never
/// parsed (a torn server write must not look like a short answer).
std::string recv_line(int fd, const Deadline& deadline) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    pollfd waiting{};
    waiting.fd = fd;
    waiting.events = POLLIN;
    const int ready = ::poll(&waiting, 1, deadline.remaining_poll_ms());
    if (ready == 0) {
      throw ClientError("timeout", "response read timed out", true);
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ClientError("disconnected",
                        std::string("poll(): ") + std::strerror(errno), true);
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw ClientError("disconnected",
                        std::string("recv(): ") + std::strerror(errno), true);
    }
    if (n == 0) {
      throw ClientError(
          "disconnected",
          buffer.empty()
              ? "server closed the connection before responding"
              : "connection closed mid-response (torn line discarded)",
          true);
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
  }
}

std::string hex_key(std::uint64_t key) {
  std::ostringstream out;
  out << std::hex << key;
  return out.str();
}

}  // namespace

bool retryable_kind(const std::string& kind) {
  return kind == "overloaded" || kind == "timeout";
}

std::int64_t backoff_delay_ms(std::size_t attempt, const ClientOptions& options,
                              Rng& rng) {
  const double base =
      static_cast<double>(std::max<std::int64_t>(0, options.backoff_base_ms));
  const double cap =
      static_cast<double>(std::max<std::int64_t>(0, options.backoff_max_ms));
  // Cap the shift before exponentiating so huge attempt counts cannot
  // overflow into nonsense delays.
  const double raw =
      base * std::pow(2.0, static_cast<double>(std::min<std::size_t>(attempt, 32)));
  double delay = std::min(raw, cap);
  const double jitter = std::clamp(options.jitter, 0.0, 1.0);
  // Always draw, even at jitter 0: the stream position then depends only
  // on the retry count, not on the jitter setting.
  delay *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  return static_cast<std::int64_t>(std::max(0.0, delay));
}

std::uint64_t request_key(const std::string& model,
                          const std::string& formula) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& text) {
    for (unsigned char c : text) {
      h ^= c;
      h *= 1099511628211ull;
    }
    // Separator byte: key("ab","c") must differ from key("a","bc").
    h ^= 0xFFu;
    h *= 1099511628211ull;
  };
  mix(model);
  mix(formula);
  return h;
}

Client::Client(ClientOptions options)
    : options_(std::move(options)), jitter_rng_(options_.jitter_seed) {}

Json Client::attempt_once(const std::string& line) {
  const Deadline deadline(options_.request_timeout_ms);
  UniqueFd fd;
  fd.fd = connect_with_timeout(options_);
  send_line(fd.fd, line + "\n", deadline);
  const std::string response = recv_line(fd.fd, deadline);
  try {
    return Json::parse(response);
  } catch (const Error& e) {
    // A complete line that is not JSON means the stream is corrupt; a
    // fresh connection may still get a sane answer.
    throw ClientError("stale_response",
                      std::string("malformed response line: ") + e.what(),
                      true);
  }
}

Json Client::request_line(const std::string& line, const Json* expect_id) {
  const std::size_t max_attempts = std::max<std::size_t>(1, options_.max_attempts);
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      ++attempts_made_;
      Json response = attempt_once(line);
      const Json* status = response.find("status");
      if (status != nullptr && status->is_string() &&
          status->as_string() == "error") {
        const Json* kind = response.find("kind");
        const std::string k =
            kind != nullptr && kind->is_string() ? kind->as_string() : "internal";
        const Json* message = response.find("message");
        throw ClientError(k,
                          message != nullptr && message->is_string()
                              ? message->as_string()
                              : "server error",
                          retryable_kind(k));
      }
      if (expect_id != nullptr) {
        const Json* id = response.find("id");
        if (id == nullptr || !(*id == *expect_id)) {
          throw ClientError("stale_response",
                            "response id does not echo the request key", true);
        }
      }
      return response;
    } catch (const ClientError& e) {
      if (!e.retryable() || attempt + 1 >= max_attempts) throw;
      const std::int64_t delay = backoff_delay_ms(attempt, options_, jitter_rng_);
      if (options_.sleeper) {
        options_.sleeper(delay);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
  }
}

Json Client::request(const Json::Object& request) {
  const auto it = request.find("id");
  const Json* expect_id = it != request.end() ? &it->second : nullptr;
  return request_line(Json(request).dump(), expect_id);
}

Json Client::ping() {
  Json::Object request;
  request["op"] = "ping";
  return request_line(Json(std::move(request)).dump(), nullptr);
}

Json Client::metrics() {
  Json::Object request;
  request["op"] = "metrics";
  return request_line(Json(std::move(request)).dump(), nullptr);
}

Json Client::check(const std::string& model, const std::string& formula,
                   std::int64_t timeout_ms, bool quotient) {
  Json::Object request;
  request["op"] = "check";
  request["model"] = model;
  request["formula"] = formula;
  if (timeout_ms > 0) request["timeout_ms"] = timeout_ms;
  if (quotient) request["quotient"] = true;
  const Json key(hex_key(request_key(model, formula)));
  request["id"] = key;
  // One dump, reused verbatim: every retry is the byte-identical request,
  // which is what makes resubmission idempotent on the server's cache.
  return request_line(Json(std::move(request)).dump(), &key);
}

}  // namespace serve
}  // namespace tml
