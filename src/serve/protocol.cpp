#include "src/serve/protocol.hpp"

#include <cmath>

namespace tml {
namespace serve {

namespace {

std::string required_string(const Json& request, const char* key) {
  const Json* member = request.find(key);
  if (member == nullptr || !member->is_string()) {
    throw WireError("bad_request",
                    std::string("check request needs a string \"") + key +
                        "\" member");
  }
  return member->as_string();
}

}  // namespace

Request parse_request(const std::string& line) {
  Json parsed;
  try {
    parsed = Json::parse(line);
  } catch (const ParseError& e) {
    throw WireError("bad_request", e.what());
  }
  if (!parsed.is_object()) {
    throw WireError("bad_request", "request must be a JSON object");
  }

  Request request;
  if (const Json* id = parsed.find("id")) request.id = *id;

  const Json* op = parsed.find("op");
  if (op == nullptr || !op->is_string()) {
    throw WireError("bad_request", "request needs a string \"op\" member");
  }
  const std::string& name = op->as_string();
  if (name == "ping") {
    request.op = Request::Op::kPing;
    return request;
  }
  if (name == "metrics") {
    request.op = Request::Op::kMetrics;
    return request;
  }
  if (name != "check") {
    throw WireError("bad_request",
                    "unknown op '" + name + "' (want check|metrics|ping)");
  }

  request.op = Request::Op::kCheck;
  request.model = required_string(parsed, "model");
  request.formula = required_string(parsed, "formula");
  if (const Json* timeout = parsed.find("timeout_ms")) {
    if (!timeout->is_number() || timeout->as_number() < 0 ||
        std::floor(timeout->as_number()) != timeout->as_number()) {
      throw WireError("bad_request",
                      "\"timeout_ms\" must be a non-negative integer");
    }
    request.timeout_ms = static_cast<std::int64_t>(timeout->as_number());
  }
  if (const Json* quotient = parsed.find("quotient")) {
    if (!quotient->is_bool()) {
      throw WireError("bad_request", "\"quotient\" must be a boolean");
    }
    request.quotient = quotient->as_bool();
  }
  return request;
}

std::string error_response(const Json& id, const std::string& kind,
                           const std::string& message) {
  Json::Object response;
  if (!id.is_null()) response["id"] = id;
  response["status"] = "error";
  response["kind"] = kind;
  response["message"] = message;
  return Json(std::move(response)).dump();
}

}  // namespace serve
}  // namespace tml
