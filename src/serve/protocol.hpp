// Wire protocol of the tml_serve daemon: line-delimited JSON.
//
// One request per line, one response line per request, in order. A request
// is a JSON object with an "op" member:
//
//   {"op":"check","model":"<prism source>","formula":"<pctl>",
//    "timeout_ms":250,"id":7}
//   {"op":"metrics","id":"m1"}
//   {"op":"ping"}
//
//  * "model"/"formula" (check only): PRISM-subset source text and a PCTL
//    formula, exactly the two positional arguments of tml_check.
//  * "timeout_ms" (optional): per-request wall-clock deadline; omitted or 0
//    uses the server default (ServeOptions::default_timeout_ms).
//  * "quotient" (optional boolean, check only): run strong-bisimulation
//    minimization before solving (CheckOptions::quotient). Semantically
//    transparent; the response reports the solved block count as
//    "quotient_states" when the pass ran to completion (absent when
//    refinement hit the deadline and the check degraded to the full model).
//  * "id" (optional): any JSON value, echoed verbatim in the response so
//    clients can pipeline requests on one connection.
//
// Responses always carry "status":
//
//   {"id":7,"status":"ok","verdict":true,"value":0.75,"cache":"hit",
//    "time_ms":0.42}                                     -- check, decided
//   {"id":7,"status":"partial","lo":0.2,"hi":0.9,"budget_status":
//    "exhausted","budget_stop":"deadline", ...}          -- check, budget
//   {"status":"error","kind":"parse","message":"..."}    -- typed failure
//   {"status":"error","kind":"overloaded","message":"..."} -- admission
//
// Graceful degradation on the wire: a deadline that fires mid-solve is NOT
// an error — the response is "status":"partial" carrying the certified
// [lo, hi] bracket the sound interval engine had at the stop boundary
// (lo/hi are null for operators with no bracket channel). Error kinds are
// "bad_request" (malformed JSON / missing members / oversized line),
// "parse" (model or formula text), "overloaded" (admission queue full,
// connection cap, or a draining server), "timeout" (per-connection I/O
// deadline), "internal". Retry taxonomy: "overloaded" and "timeout" are
// transient — resubmitting the identical request is safe and is what the
// client library does; "bad_request"/"parse" are permanent.
//
// "ping" and "metrics" responses additionally report "proto" (the protocol
// version below), "uptime_ms" (ms since the server started) and "draining"
// (true once a graceful drain began — stop sending new work).

#pragma once

#include <cstdint>
#include <string>

#include "src/common/error.hpp"
#include "src/serve/json.hpp"

namespace tml {
namespace serve {

/// Wire protocol version, reported by ping/metrics as "proto". Version 2
/// added uptime_ms/proto/draining, the "timeout" error kind, and the
/// connection-hardening semantics documented above.
inline constexpr int kProtocolVersion = 2;

/// A validated request. `id` is echoed verbatim (null when absent).
struct Request {
  enum class Op { kCheck, kMetrics, kPing };
  Op op = Op::kPing;
  std::string model;
  std::string formula;
  std::int64_t timeout_ms = 0;  ///< 0 = server default
  bool quotient = false;  ///< minimize before solving (check only)
  Json id;
};

/// Typed protocol failure; `kind()` is the wire "kind" member.
class WireError : public Error {
 public:
  WireError(std::string kind, const std::string& message)
      : Error(message), kind_(std::move(kind)) {}
  const std::string& kind() const { return kind_; }

 private:
  std::string kind_;
};

/// Parses one request line. Throws WireError("bad_request", ...) on
/// malformed JSON or a structurally invalid request.
Request parse_request(const std::string& line);

/// One-line error response (no trailing newline).
std::string error_response(const Json& id, const std::string& kind,
                           const std::string& message);

}  // namespace serve
}  // namespace tml
