#include "src/serve/cache.hpp"

#include "src/common/stats.hpp"

namespace tml {

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::shared_ptr<const CachedModel> compile_entry(const std::string& source) {
  const PrismModel parsed = parse_prism(source);
  auto entry = std::make_shared<CachedModel>();
  entry->deterministic = parsed.type == PrismModel::Type::kDtmc;
  entry->num_states = parsed.mdp.num_states();
  entry->num_choices = parsed.mdp.num_choices();
  entry->model = entry->deterministic ? compile(parsed.dtmc())
                                      : compile(parsed.mdp);
  entry->content_hash = entry->model.content_hash();
  // Force-build the lazy graph caches before the entry becomes visible to
  // other threads: afterwards every access through the shared const entry
  // is a pure read.
  if (entry->model.num_states() > 0) {
    (void)entry->model.scc();
    (void)entry->model.predecessors(0);
  }
  return entry;
}

}  // namespace

ModelCache::ModelCache(std::size_t capacity) : capacity_(capacity) {}

ModelCache::Result ModelCache::get(const std::string& source) {
  static stats::Counter& c_hits = stats::counter("serve.cache.hits");
  static stats::Counter& c_misses = stats::counter("serve.cache.misses");
  static stats::Counter& c_evictions = stats::counter("serve.cache.evictions");

  const std::uint64_t source_hash = fnv1a(source);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto src_it = sources_.find(source_hash);
    if (src_it != sources_.end() && src_it->second.source == source) {
      const auto entry_it = entries_.find(src_it->second.content_hash);
      if (entry_it != entries_.end()) {
        touch(entry_it->second);
        ++hits_;
        c_hits.bump();
        return {entry_it->second.model, true};
      }
      // The entry was evicted out from under its index row; fall through
      // to a recompile, which re-inserts both.
    }
  }

  // Miss path: parse + compile outside the lock, so a slow compile never
  // stalls concurrent fast-path hits. Two racing misses on the same source
  // both compile; the second insert finds the entry already present and
  // just re-links the index.
  std::shared_ptr<const CachedModel> compiled = compile_entry(source);

  const std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  c_misses.bump();
  sources_[source_hash] = SourceKey{source, compiled->content_hash};
  // Keep the source index bounded: many distinct sources can point at few
  // (or evicted) entries, so occasionally drop rows whose entry is gone.
  // The row just written is exempt — its entry is inserted below.
  if (sources_.size() > 8 * capacity_ + 8) {
    for (auto it = sources_.begin(); it != sources_.end();) {
      const bool stale = it->first != source_hash &&
                         entries_.count(it->second.content_hash) == 0;
      it = stale ? sources_.erase(it) : std::next(it);
    }
  }
  auto entry_it = entries_.find(compiled->content_hash);
  if (entry_it != entries_.end()) {
    // Distinct source text, identical compiled artifact — reuse the cached
    // entry (and its warm graph caches) rather than the fresh compile.
    touch(entry_it->second);
    return {entry_it->second.model, false};
  }
  if (capacity_ == 0) return {std::move(compiled), false};
  while (entries_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
    c_evictions.bump();
  }
  lru_.push_front(compiled->content_hash);
  entries_[compiled->content_hash] = Entry{compiled, lru_.begin()};
  return {std::move(compiled), false};
}

void ModelCache::touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  entry.lru_pos = lru_.begin();
}

std::size_t ModelCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ModelCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ModelCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ModelCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace tml
