// Content-hashed compiled-model cache for the serving layer.
//
// A checking service sees the same model text over and over — monitoring
// loops re-check a deployed controller, CI re-checks a fixture — and
// parse_prism + compile dominates a request once the check itself is warm.
// The cache keys compiled artifacts by CompiledModel::content_hash(), so a
// repeat request skips both stages entirely:
//
//   source text ──FNV──► source index ──content hash──► LRU of entries
//
// Lookup hashes the raw source bytes, finds the index entry, and verifies
// the stored source byte-exact (an FNV collision therefore costs one
// recompile, never a wrong model). The index maps to the *content* hash of
// the compiled artifact, which keys the LRU proper — two textually
// different sources that compile to the same artifact (whitespace, comment
// churn, reordered labels hashing equal) share one entry, each gaining its
// own fast-path index row after its first compile.
//
// Entries are handed out as shared_ptr<const CachedModel>: an entry evicted
// while a request still checks against it stays alive until that request
// drops it. The CompiledModel inside an entry has its lazy predecessor/SCC
// caches force-built before publication, so concurrent const use from many
// request threads never mutates shared state (the per-request
// make_absorbing copies rebuild their own caches locally).
//
// Capacity is a hard entry bound (LRU eviction, stats-instrumented as
// serve.cache.*); capacity 0 disables retention but still returns usable
// one-shot entries.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/mdp/compiled.hpp"
#include "src/mdp/prism_parser.hpp"

namespace tml {

/// One cached compiled artifact. Immutable after publication.
struct CachedModel {
  CompiledModel model;
  std::uint64_t content_hash = 0;
  /// True when the source declared `dtmc` (CompiledModel::deterministic()
  /// agrees, but the parser-level type also rejects MDP-only requests).
  bool deterministic = false;
  std::size_t num_states = 0;
  std::size_t num_choices = 0;
};

class ModelCache {
 public:
  explicit ModelCache(std::size_t capacity);

  struct Result {
    std::shared_ptr<const CachedModel> entry;
    /// True when the source-index fast path supplied the entry — no parse,
    /// no compile ran for this request.
    bool hit = false;
  };

  /// Returns the compiled artifact for `source`, compiling on miss. Throws
  /// ParseError / ModelError for malformed sources (nothing is cached for
  /// a throwing source). Thread-safe; concurrent misses on the same source
  /// may compile redundantly but converge on one entry.
  Result get(const std::string& source);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedModel> model;
    std::list<std::uint64_t>::iterator lru_pos;  // into lru_, front = hottest
  };
  struct SourceKey {
    std::string source;          // exact bytes, for collision verification
    std::uint64_t content_hash;  // key into entries_
  };

  void touch(Entry& entry);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::uint64_t> lru_;  // content hashes, most recent first
  std::unordered_map<std::uint64_t, Entry> entries_;       // by content hash
  std::unordered_map<std::uint64_t, SourceKey> sources_;   // by source FNV
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tml
