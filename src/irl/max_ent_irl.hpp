// Maximum-entropy inverse reinforcement learning (Ziebart et al., AAAI'08).
//
// The paper's Reward Repair setting (§IV-C, Eq. 16) models the probability
// of a trajectory U as
//
//     P(U | Θ, P) ∝ exp(Σ_i Θᵀ f(s_i)) · Π_i P(s_{i+1} | s_i, a_i)
//
// with the reward linear in state features. IRL fits Θ by maximizing the
// likelihood of the expert demonstrations, whose gradient is the difference
// between empirical and expected feature counts:
//
//     ∇L = f̃_expert − E_{U ~ P(·|Θ)}[f(U)].
//
// We implement the finite-horizon algorithm:
//  * backward pass — causal-entropy soft value iteration producing a
//    time-varying stochastic policy π_t(a|s) ∝ exp(Q_t(s,a));
//  * forward pass — state-visitation frequencies D_t(s) from the initial
//    state under π;
//  * gradient ascent on Θ with optional projection onto the unit L2 ball
//    (the paper constrains ‖Θ‖₂ ≤ 1).
//
// Convention: trajectory reward = Σ_{t=0}^{len-1} r(s_t) (reward collected
// when a step departs from a state; the final state is not charged).
// Feature counts on both the empirical and the model side follow the same
// convention, which is what makes the gradient consistent.

#pragma once

#include <span>
#include <vector>

#include "src/common/budget.hpp"
#include "src/irl/features.hpp"
#include "src/mdp/compiled.hpp"
#include "src/mdp/model.hpp"
#include "src/mdp/trajectory.hpp"

namespace tml {

struct IrlOptions {
  std::size_t horizon = 20;          ///< finite planning horizon T
  std::size_t max_iterations = 2000;
  double learning_rate = 0.05;
  double tolerance = 1e-6;           ///< gradient-norm convergence threshold
  bool project_unit_ball = true;     ///< enforce ‖Θ‖₂ ≤ 1 (paper's constraint)
  double l2_regularization = 0.0;
  /// Worker threads for the backward/forward passes (0 = TML_THREADS /
  /// hardware). The per-state sweeps are chunked deterministically and the
  /// forward-pass scatter merges per-chunk partial distributions in chunk
  /// order, so fitted Θ is identical for every thread count.
  std::size_t threads = 0;
  /// Resource budget; one tick per gradient iteration. On exhaustion the
  /// fit stops at the iteration boundary and returns the current Θ flagged
  /// `budget_status = kBudgetExhausted` (gradient_norm then reports how far
  /// from stationarity the partial fit stopped).
  Budget budget = default_budget();
};

struct IrlResult {
  std::vector<double> theta;
  std::vector<double> state_rewards;  ///< Θᵀ f(s) per state
  std::size_t iterations = 0;
  bool converged = false;
  double gradient_norm = 0.0;
  /// kBudgetExhausted when the fit stopped because IrlOptions::budget fired;
  /// theta is then the last completed iterate.
  BudgetStatus budget_status = BudgetStatus::kOk;
  BudgetStop budget_stop = BudgetStop::kNone;
};

/// Time-varying stochastic policy from soft value iteration:
/// pi[t][s][c] = probability of choice c in state s at time t, 0 <= t < T.
struct SoftPolicy {
  std::vector<std::vector<std::vector<double>>> pi;
  std::size_t horizon() const { return pi.size(); }

  /// Time-averaged stationary approximation (used to induce a single DTMC).
  RandomizedPolicy average() const;
};

/// Backward pass: soft (log-sum-exp) value iteration for the given state
/// rewards over `horizon` steps. Runs over the compiled CSR rows; the Mdp
/// overload compiles and delegates (the optimizer loop in
/// fit_to_feature_counts compiles once up front).
SoftPolicy soft_value_iteration(const CompiledModel& model,
                                std::span<const double> state_rewards,
                                std::size_t horizon, std::size_t threads = 0);
SoftPolicy soft_value_iteration(const Mdp& mdp,
                                std::span<const double> state_rewards,
                                std::size_t horizon, std::size_t threads = 0);

/// Forward pass: D[t][s] = P(state at time t = s | initial state, policy),
/// for t = 0..horizon (horizon+1 slices).
std::vector<std::vector<double>> state_visitation(const CompiledModel& model,
                                                  const SoftPolicy& policy,
                                                  std::size_t threads = 0);
std::vector<std::vector<double>> state_visitation(const Mdp& mdp,
                                                  const SoftPolicy& policy,
                                                  std::size_t threads = 0);

/// Expected feature counts Σ_{t=0}^{T-1} Σ_s D_t(s) f(s) under the policy.
std::vector<double> expected_feature_counts(const CompiledModel& model,
                                            const StateFeatures& features,
                                            const SoftPolicy& policy,
                                            std::size_t threads = 0);
std::vector<double> expected_feature_counts(const Mdp& mdp,
                                            const StateFeatures& features,
                                            const SoftPolicy& policy,
                                            std::size_t threads = 0);

/// Empirical feature counts of the expert data: average over trajectories
/// of Σ_{t=0}^{len-1} f(s_t). When `pad_to_horizon` is nonzero, each
/// trajectory shorter than the horizon is padded by repeating its final
/// state — demonstrations that end in an absorbing state (the car reaching
/// its goal) must be charged for the remaining time slices, or the
/// empirical and model-side counts have different scales and the gradient
/// is biased.
std::vector<double> empirical_feature_counts(const StateFeatures& features,
                                             const TrajectoryDataset& expert,
                                             std::size_t pad_to_horizon = 0);

/// Fits Θ so the model's expected feature counts match `target_counts`.
/// This is the inner loop of IRL; Reward Repair reuses it with the
/// rule-projected feature counts (Prop. 4). The Mdp overload compiles once;
/// every gradient iteration then runs backward and forward passes on the
/// same flat CSR arrays.
IrlResult fit_to_feature_counts(const CompiledModel& model,
                                const StateFeatures& features,
                                std::span<const double> target_counts,
                                const IrlOptions& options,
                                std::span<const double> theta_init = {});
IrlResult fit_to_feature_counts(const Mdp& mdp, const StateFeatures& features,
                                std::span<const double> target_counts,
                                const IrlOptions& options,
                                std::span<const double> theta_init = {});

/// Full max-ent IRL from expert demonstrations.
IrlResult max_ent_irl(const CompiledModel& model, const StateFeatures& features,
                      const TrajectoryDataset& expert,
                      const IrlOptions& options);
IrlResult max_ent_irl(const Mdp& mdp, const StateFeatures& features,
                      const TrajectoryDataset& expert,
                      const IrlOptions& options);

}  // namespace tml
