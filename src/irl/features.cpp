#include "src/irl/features.hpp"

#include "src/common/matrix.hpp"

namespace tml {

void StateFeatures::set(StateId s, std::size_t feature, double value) {
  TML_REQUIRE(s < rows_.size(), "StateFeatures::set: state out of range");
  TML_REQUIRE(feature < dim_, "StateFeatures::set: feature out of range");
  rows_[s][feature] = value;
}

void StateFeatures::set_row(StateId s, std::vector<double> row) {
  TML_REQUIRE(s < rows_.size(), "StateFeatures::set_row: state out of range");
  TML_REQUIRE(row.size() == dim_, "StateFeatures::set_row: dim mismatch");
  rows_[s] = std::move(row);
}

const std::vector<double>& StateFeatures::row(StateId s) const {
  TML_REQUIRE(s < rows_.size(), "StateFeatures::row: state out of range");
  return rows_[s];
}

std::vector<double> StateFeatures::rewards(std::span<const double> theta) const {
  TML_REQUIRE(theta.size() == dim_, "StateFeatures::rewards: theta dim mismatch");
  std::vector<double> out(rows_.size(), 0.0);
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    out[s] = dot(rows_[s], theta);
  }
  return out;
}

Mdp with_linear_reward(const Mdp& mdp, const StateFeatures& features,
                       std::span<const double> theta) {
  TML_REQUIRE(features.num_states() == mdp.num_states(),
              "with_linear_reward: feature table size mismatch");
  Mdp out = mdp;
  const std::vector<double> rewards = features.rewards(theta);
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    out.set_state_reward(s, rewards[s]);
  }
  return out;
}

}  // namespace tml
