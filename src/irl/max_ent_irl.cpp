#include "src/irl/max_ent_irl.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/common/matrix.hpp"
#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"

namespace tml {

namespace {

double log_sum_exp(std::span<const double> xs) {
  double m = xs[0];
  for (double x : xs) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double acc = 0.0;
  for (double x : xs) acc += std::exp(x - m);
  return m + std::log(acc);
}

}  // namespace

RandomizedPolicy SoftPolicy::average() const {
  TML_REQUIRE(!pi.empty(), "SoftPolicy::average: empty policy");
  RandomizedPolicy out;
  const std::size_t n = pi[0].size();
  out.choice_probabilities.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    out.choice_probabilities[s].assign(pi[0][s].size(), 0.0);
    for (const auto& slice : pi) {
      for (std::size_t c = 0; c < slice[s].size(); ++c) {
        out.choice_probabilities[s][c] += slice[s][c];
      }
    }
    for (double& p : out.choice_probabilities[s]) {
      p /= static_cast<double>(pi.size());
    }
  }
  return out;
}

SoftPolicy soft_value_iteration(const CompiledModel& model,
                                std::span<const double> state_rewards,
                                std::size_t horizon, std::size_t threads) {
  TML_REQUIRE(state_rewards.size() == model.num_states(),
              "soft_value_iteration: reward vector size mismatch");
  TML_REQUIRE(horizon > 0, "soft_value_iteration: zero horizon");
  const std::size_t n = model.num_states();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();

  static stats::Counter& c_backward = stats::counter("irl.backward_passes");
  c_backward.add(horizon);

  SoftPolicy policy;
  policy.pi.assign(horizon, {});

  // V at time `horizon` is 0 (no reward after the last step departs).
  // Each time slice is a Jacobi sweep over the fixed V of the next slice:
  // every state writes only its own v_prev / policy row, so chunks are
  // independent (the q scratch buffer lives per chunk).
  std::vector<double> v(n, 0.0);
  std::vector<double> v_prev(n, 0.0);
  for (std::size_t t = horizon; t-- > 0;) {
    auto& slice = policy.pi[t];
    slice.resize(n);
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          std::vector<double> q;
          for (StateId s = chunk_begin; s < chunk_end; ++s) {
            const std::uint32_t begin = row_start[s];
            const std::uint32_t end = row_start[s + 1];
            q.assign(end - begin, 0.0);
            for (std::uint32_t c = begin; c < end; ++c) {
              double expect = 0.0;
              for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
                   ++k) {
                expect += prob[k] * v[target[k]];
              }
              q[c - begin] = state_rewards[s] + model.choice_reward(c) + expect;
            }
            const double lse = log_sum_exp(q);
            v_prev[s] = lse;
            slice[s].resize(q.size());
            for (std::size_t c = 0; c < q.size(); ++c) {
              slice[s][c] = std::exp(q[c] - lse);
            }
          }
        },
        threads);
    v.swap(v_prev);
  }
  return policy;
}

SoftPolicy soft_value_iteration(const Mdp& mdp,
                                std::span<const double> state_rewards,
                                std::size_t horizon, std::size_t threads) {
  return soft_value_iteration(compile(mdp), state_rewards, horizon, threads);
}

std::vector<std::vector<double>> state_visitation(const CompiledModel& model,
                                                  const SoftPolicy& policy,
                                                  std::size_t threads) {
  const std::size_t n = model.num_states();
  const std::size_t horizon = policy.horizon();
  const auto& row_start = model.row_start();
  const auto& choice_start = model.choice_start();
  const auto& target = model.target();
  const auto& prob = model.prob();
  static stats::Counter& c_forward = stats::counter("irl.forward_passes");
  c_forward.add(horizon);
  std::vector<std::vector<double>> d(horizon + 1,
                                     std::vector<double>(n, 0.0));
  d[0][model.initial_state()] = 1.0;

  // The push-style scatter has write conflicts on d[t+1], so each chunk of
  // source states scatters into its own partial distribution and the
  // partials are merged in chunk order. The chunk layout — and hence the
  // summation order — depends only on (n, grain), never on the thread
  // count. Single-chunk models (the case studies) scatter directly.
  const std::size_t chunks = chunk_count(0, n, kDefaultGrain);
  std::vector<std::vector<double>> partial(chunks > 1 ? chunks : 0);
  for (std::size_t t = 0; t < horizon; ++t) {
    const auto scatter = [&](std::size_t chunk_begin, std::size_t chunk_end,
                             std::vector<double>& out) {
      for (StateId s = chunk_begin; s < chunk_end; ++s) {
        const double mass = d[t][s];
        if (mass == 0.0) continue;
        const std::uint32_t begin = row_start[s];
        for (std::uint32_t c = begin; c < row_start[s + 1]; ++c) {
          const double pc = policy.pi[t][s][c - begin];
          if (pc == 0.0) continue;
          const double scaled = mass * pc;
          for (std::uint32_t k = choice_start[c]; k < choice_start[c + 1];
               ++k) {
            out[target[k]] += scaled * prob[k];
          }
        }
      }
    };
    if (chunks <= 1) {
      scatter(0, n, d[t + 1]);
      continue;
    }
    parallel_for(
        0, n, kDefaultGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          std::vector<double>& out = partial[chunk_begin / kDefaultGrain];
          out.assign(n, 0.0);
          scatter(chunk_begin, chunk_end, out);
        },
        threads);
    for (const std::vector<double>& out : partial) {
      for (StateId s = 0; s < n; ++s) d[t + 1][s] += out[s];
    }
  }
  return d;
}

std::vector<std::vector<double>> state_visitation(const Mdp& mdp,
                                                  const SoftPolicy& policy,
                                                  std::size_t threads) {
  return state_visitation(compile(mdp), policy, threads);
}

std::vector<double> expected_feature_counts(const CompiledModel& model,
                                            const StateFeatures& features,
                                            const SoftPolicy& policy,
                                            std::size_t threads) {
  const std::vector<std::vector<double>> d =
      state_visitation(model, policy, threads);
  // Departure convention: slices 0..horizon-1 contribute. Each time slice
  // reduces to one partial count vector; the partials are folded in slice
  // order, so the summation order is fixed by the horizon alone and the
  // result is identical for every thread count.
  return parallel_transform_reduce(
      std::size_t{0}, d.size() - 1, 1, std::vector<double>(features.dim(), 0.0),
      [&](std::size_t slice_begin, std::size_t slice_end) {
        std::vector<double> counts(features.dim(), 0.0);
        for (std::size_t t = slice_begin; t < slice_end; ++t) {
          for (StateId s = 0; s < model.num_states(); ++s) {
            if (d[t][s] == 0.0) continue;
            axpy(counts, d[t][s], features.row(s));
          }
        }
        return counts;
      },
      [](std::vector<double> acc, std::vector<double> part) {
        for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += part[k];
        return acc;
      },
      threads);
}

std::vector<double> expected_feature_counts(const Mdp& mdp,
                                            const StateFeatures& features,
                                            const SoftPolicy& policy,
                                            std::size_t threads) {
  return expected_feature_counts(compile(mdp), features, policy, threads);
}

std::vector<double> empirical_feature_counts(const StateFeatures& features,
                                             const TrajectoryDataset& expert,
                                             std::size_t pad_to_horizon) {
  TML_REQUIRE(expert.size() > 0, "empirical_feature_counts: empty dataset");
  std::vector<double> counts(features.dim(), 0.0);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < expert.size(); ++i) {
    const double w = expert.weight(i);
    total_weight += w;
    const Trajectory& trajectory = expert.trajectories[i];
    for (const Step& step : trajectory.steps) {
      axpy(counts, w, features.row(step.state));
    }
    if (pad_to_horizon > trajectory.length()) {
      const double pad =
          static_cast<double>(pad_to_horizon - trajectory.length());
      axpy(counts, w * pad, features.row(trajectory.final_state()));
    }
  }
  TML_REQUIRE(total_weight > 0.0,
              "empirical_feature_counts: zero total weight");
  for (double& c : counts) c /= total_weight;
  return counts;
}

IrlResult fit_to_feature_counts(const CompiledModel& model,
                                const StateFeatures& features,
                                std::span<const double> target_counts,
                                const IrlOptions& options,
                                std::span<const double> theta_init) {
  TML_REQUIRE(target_counts.size() == features.dim(),
              "fit_to_feature_counts: target dim mismatch");
  static stats::Timer& t_fit = stats::timer("irl.fit.time");
  static stats::Counter& c_fits = stats::counter("irl.fits");
  static stats::Counter& c_grad_iters =
      stats::counter("irl.gradient_iterations");
  static stats::Gauge& g_grad_norm = stats::gauge("irl.gradient_norm");
  const stats::ScopedTimer span(t_fit);
  c_fits.bump();

  IrlResult result;
  result.theta.assign(features.dim(), 0.0);
  if (!theta_init.empty()) {
    TML_REQUIRE(theta_init.size() == features.dim(),
                "fit_to_feature_counts: theta_init dim mismatch");
    result.theta.assign(theta_init.begin(), theta_init.end());
  }

  BudgetTracker tracker(options.budget);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (!tracker.tick()) break;
    const std::vector<double> rewards = features.rewards(result.theta);
    const SoftPolicy policy =
        soft_value_iteration(model, rewards, options.horizon, options.threads);
    const std::vector<double> expected =
        expected_feature_counts(model, features, policy, options.threads);

    std::vector<double> grad(features.dim(), 0.0);
    for (std::size_t k = 0; k < grad.size(); ++k) {
      grad[k] = target_counts[k] - expected[k] -
                options.l2_regularization * result.theta[k];
    }
    result.gradient_norm = fault::poison("irl.gradient", norm2(grad));
    result.iterations = iter + 1;
    if (!std::isfinite(result.gradient_norm)) {
      throw NumericError(
          "fit_to_feature_counts: non-finite gradient norm at iteration " +
          std::to_string(result.iterations));
    }
    if (result.gradient_norm < options.tolerance) {
      result.converged = true;
      break;
    }
    axpy(result.theta, options.learning_rate, grad);
    if (options.project_unit_ball) {
      const double norm = norm2(result.theta);
      if (norm > 1.0) {
        for (double& t : result.theta) t /= norm;
      }
    }
  }
  result.budget_status = tracker.status();
  result.budget_stop = tracker.stop();
  c_grad_iters.add(result.iterations);
  g_grad_norm.set(result.gradient_norm);
  result.state_rewards = features.rewards(result.theta);
  return result;
}

IrlResult fit_to_feature_counts(const Mdp& mdp, const StateFeatures& features,
                                std::span<const double> target_counts,
                                const IrlOptions& options,
                                std::span<const double> theta_init) {
  return fit_to_feature_counts(compile(mdp), features, target_counts, options,
                               theta_init);
}

IrlResult max_ent_irl(const CompiledModel& model, const StateFeatures& features,
                      const TrajectoryDataset& expert,
                      const IrlOptions& options) {
  const std::vector<double> target =
      empirical_feature_counts(features, expert, options.horizon);
  return fit_to_feature_counts(model, features, target, options);
}

IrlResult max_ent_irl(const Mdp& mdp, const StateFeatures& features,
                      const TrajectoryDataset& expert,
                      const IrlOptions& options) {
  return max_ent_irl(compile(mdp), features, expert, options);
}

}  // namespace tml
