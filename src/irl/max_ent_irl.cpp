#include "src/irl/max_ent_irl.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/matrix.hpp"

namespace tml {

namespace {

double log_sum_exp(std::span<const double> xs) {
  double m = xs[0];
  for (double x : xs) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double acc = 0.0;
  for (double x : xs) acc += std::exp(x - m);
  return m + std::log(acc);
}

}  // namespace

RandomizedPolicy SoftPolicy::average() const {
  TML_REQUIRE(!pi.empty(), "SoftPolicy::average: empty policy");
  RandomizedPolicy out;
  const std::size_t n = pi[0].size();
  out.choice_probabilities.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    out.choice_probabilities[s].assign(pi[0][s].size(), 0.0);
    for (const auto& slice : pi) {
      for (std::size_t c = 0; c < slice[s].size(); ++c) {
        out.choice_probabilities[s][c] += slice[s][c];
      }
    }
    for (double& p : out.choice_probabilities[s]) {
      p /= static_cast<double>(pi.size());
    }
  }
  return out;
}

SoftPolicy soft_value_iteration(const Mdp& mdp,
                                std::span<const double> state_rewards,
                                std::size_t horizon) {
  TML_REQUIRE(state_rewards.size() == mdp.num_states(),
              "soft_value_iteration: reward vector size mismatch");
  TML_REQUIRE(horizon > 0, "soft_value_iteration: zero horizon");
  const std::size_t n = mdp.num_states();

  SoftPolicy policy;
  policy.pi.assign(horizon, {});

  // V at time `horizon` is 0 (no reward after the last step departs).
  std::vector<double> v(n, 0.0);
  std::vector<double> v_prev(n, 0.0);
  for (std::size_t t = horizon; t-- > 0;) {
    auto& slice = policy.pi[t];
    slice.resize(n);
    for (StateId s = 0; s < n; ++s) {
      const auto& choices = mdp.choices(s);
      std::vector<double> q(choices.size(), 0.0);
      for (std::size_t c = 0; c < choices.size(); ++c) {
        double expect = 0.0;
        for (const Transition& tr : choices[c].transitions) {
          expect += tr.probability * v[tr.target];
        }
        q[c] = state_rewards[s] + choices[c].reward + expect;
      }
      const double lse = log_sum_exp(q);
      v_prev[s] = lse;
      slice[s].resize(choices.size());
      for (std::size_t c = 0; c < choices.size(); ++c) {
        slice[s][c] = std::exp(q[c] - lse);
      }
    }
    v.swap(v_prev);
  }
  return policy;
}

std::vector<std::vector<double>> state_visitation(const Mdp& mdp,
                                                  const SoftPolicy& policy) {
  const std::size_t n = mdp.num_states();
  const std::size_t horizon = policy.horizon();
  std::vector<std::vector<double>> d(horizon + 1,
                                     std::vector<double>(n, 0.0));
  d[0][mdp.initial_state()] = 1.0;
  for (std::size_t t = 0; t < horizon; ++t) {
    for (StateId s = 0; s < n; ++s) {
      const double mass = d[t][s];
      if (mass == 0.0) continue;
      const auto& choices = mdp.choices(s);
      for (std::size_t c = 0; c < choices.size(); ++c) {
        const double pc = policy.pi[t][s][c];
        if (pc == 0.0) continue;
        for (const Transition& tr : choices[c].transitions) {
          d[t + 1][tr.target] += mass * pc * tr.probability;
        }
      }
    }
  }
  return d;
}

std::vector<double> expected_feature_counts(const Mdp& mdp,
                                            const StateFeatures& features,
                                            const SoftPolicy& policy) {
  const std::vector<std::vector<double>> d = state_visitation(mdp, policy);
  std::vector<double> counts(features.dim(), 0.0);
  // Departure convention: slices 0..horizon-1 contribute.
  for (std::size_t t = 0; t + 1 < d.size(); ++t) {
    for (StateId s = 0; s < mdp.num_states(); ++s) {
      if (d[t][s] == 0.0) continue;
      axpy(counts, d[t][s], features.row(s));
    }
  }
  return counts;
}

std::vector<double> empirical_feature_counts(const StateFeatures& features,
                                             const TrajectoryDataset& expert,
                                             std::size_t pad_to_horizon) {
  TML_REQUIRE(expert.size() > 0, "empirical_feature_counts: empty dataset");
  std::vector<double> counts(features.dim(), 0.0);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < expert.size(); ++i) {
    const double w = expert.weight(i);
    total_weight += w;
    const Trajectory& trajectory = expert.trajectories[i];
    for (const Step& step : trajectory.steps) {
      axpy(counts, w, features.row(step.state));
    }
    if (pad_to_horizon > trajectory.length()) {
      const double pad =
          static_cast<double>(pad_to_horizon - trajectory.length());
      axpy(counts, w * pad, features.row(trajectory.final_state()));
    }
  }
  TML_REQUIRE(total_weight > 0.0,
              "empirical_feature_counts: zero total weight");
  for (double& c : counts) c /= total_weight;
  return counts;
}

IrlResult fit_to_feature_counts(const Mdp& mdp, const StateFeatures& features,
                                std::span<const double> target_counts,
                                const IrlOptions& options,
                                std::span<const double> theta_init) {
  TML_REQUIRE(target_counts.size() == features.dim(),
              "fit_to_feature_counts: target dim mismatch");
  mdp.validate();

  IrlResult result;
  result.theta.assign(features.dim(), 0.0);
  if (!theta_init.empty()) {
    TML_REQUIRE(theta_init.size() == features.dim(),
                "fit_to_feature_counts: theta_init dim mismatch");
    result.theta.assign(theta_init.begin(), theta_init.end());
  }

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const std::vector<double> rewards = features.rewards(result.theta);
    const SoftPolicy policy =
        soft_value_iteration(mdp, rewards, options.horizon);
    const std::vector<double> expected =
        expected_feature_counts(mdp, features, policy);

    std::vector<double> grad(features.dim(), 0.0);
    for (std::size_t k = 0; k < grad.size(); ++k) {
      grad[k] = target_counts[k] - expected[k] -
                options.l2_regularization * result.theta[k];
    }
    result.gradient_norm = norm2(grad);
    result.iterations = iter + 1;
    if (result.gradient_norm < options.tolerance) {
      result.converged = true;
      break;
    }
    axpy(result.theta, options.learning_rate, grad);
    if (options.project_unit_ball) {
      const double norm = norm2(result.theta);
      if (norm > 1.0) {
        for (double& t : result.theta) t /= norm;
      }
    }
  }
  result.state_rewards = features.rewards(result.theta);
  return result;
}

IrlResult max_ent_irl(const Mdp& mdp, const StateFeatures& features,
                      const TrajectoryDataset& expert,
                      const IrlOptions& options) {
  const std::vector<double> target =
      empirical_feature_counts(features, expert, options.horizon);
  return fit_to_feature_counts(mdp, features, target, options);
}

}  // namespace tml
