// State feature maps for linear reward functions.
//
// §IV-C / §V-B: the reward of a state is linear in its features,
// reward(s) = Θᵀ f(s). The car case study uses three features per state
// (lane indicator, distance to the nearest unsafe state, goal indicator).

#pragma once

#include <span>
#include <vector>

#include "src/mdp/model.hpp"

namespace tml {

/// Dense per-state feature matrix.
class StateFeatures {
 public:
  StateFeatures() = default;
  StateFeatures(std::size_t num_states, std::size_t dim)
      : dim_(dim), rows_(num_states, std::vector<double>(dim, 0.0)) {}

  std::size_t num_states() const { return rows_.size(); }
  std::size_t dim() const { return dim_; }

  void set(StateId s, std::size_t feature, double value);
  void set_row(StateId s, std::vector<double> row);
  const std::vector<double>& row(StateId s) const;

  /// reward(s) = θᵀ f(s) for every state.
  std::vector<double> rewards(std::span<const double> theta) const;

 private:
  std::size_t dim_ = 0;
  std::vector<std::vector<double>> rows_;
};

/// Applies θ to the features and installs the resulting state rewards on a
/// copy of the MDP.
Mdp with_linear_reward(const Mdp& mdp, const StateFeatures& features,
                       std::span<const double> theta);

}  // namespace tml
