// Potential-based reward shaping — the reward-engineering baseline.
//
// The paper's related work (§VI) contrasts Reward Repair with reward
// shaping (Ng, Harada & Russell [26]): shaping adds intermediate rewards
// F(s, s') = γ·Φ(s') − Φ(s) derived from a potential function Φ, and the
// policy-invariance theorem guarantees the optimal policy is UNCHANGED.
// That is exactly why shaping cannot *enforce* a safety constraint the
// learned reward violates — and why Reward Repair, which deliberately
// changes the optimal policy, is a different operation.
//
// `ablate_baselines` demonstrates the contrast on the car case study:
// shaping with a safety potential leaves the unsafe policy in place,
// Reward Repair flips it.

#pragma once

#include <span>
#include <vector>

#include "src/mdp/model.hpp"

namespace tml {

/// Returns a copy of `mdp` with the shaping term γ·Φ(s') − Φ(s) folded
/// into every choice's action reward (as its expectation over successors).
/// `potential` is indexed by state.
Mdp apply_potential_shaping(const Mdp& mdp, std::span<const double> potential,
                            double discount);

/// Convenience potential: −scale at labelled states, 0 elsewhere (a
/// "stay away from `label`" shaping signal).
std::vector<double> repulsive_potential(const Mdp& mdp,
                                        const std::string& label,
                                        double scale);

}  // namespace tml
