#include "src/irl/shaping.hpp"

namespace tml {

Mdp apply_potential_shaping(const Mdp& mdp, std::span<const double> potential,
                            double discount) {
  mdp.validate();
  TML_REQUIRE(potential.size() == mdp.num_states(),
              "apply_potential_shaping: potential size mismatch");
  TML_REQUIRE(discount > 0.0 && discount <= 1.0,
              "apply_potential_shaping: discount out of (0,1]");
  Mdp shaped = mdp;
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    auto& choices = shaped.mutable_choices(s);
    for (Choice& choice : choices) {
      double expected_next = 0.0;
      for (const Transition& t : choice.transitions) {
        expected_next += t.probability * potential[t.target];
      }
      choice.reward += discount * expected_next - potential[s];
    }
  }
  return shaped;
}

std::vector<double> repulsive_potential(const Mdp& mdp,
                                        const std::string& label,
                                        double scale) {
  TML_REQUIRE(scale >= 0.0, "repulsive_potential: negative scale");
  std::vector<double> potential(mdp.num_states(), 0.0);
  const StateSet set = mdp.states_with_label(label);
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    if (set[s]) potential[s] = -scale;
  }
  return potential;
}

}  // namespace tml
