// Maximum-likelihood estimation of transition probabilities from traces.
//
// This is the learning procedure ML of §II for the transition function P:
// given a model *structure* (states, choices, and the support of each
// distribution — the paper fixes the graph structure of the MDP, §IV) and a
// dataset of observed trajectories, estimate each P(t | s, a) as the
// relative frequency of the observed transitions, optionally with Laplace
// (pseudo-count) smoothing over the structural support.
//
// Distributions with no observations keep the structure's prior
// probabilities — retraining on repaired data must not invent transitions
// the structure forbids (Eq. 3).

#pragma once

#include "src/mdp/model.hpp"
#include "src/mdp/trajectory.hpp"

namespace tml {

/// Transition counts per (state, choice), aligned with the structure's
/// choice transition lists.
struct CountTable {
  /// counts[s][c][k] — weight of observed transitions matching the k-th
  /// structural transition of choice c in state s.
  std::vector<std::vector<std::vector<double>>> counts;
  /// Observations that did not match any structural transition (diagnostic;
  /// nonzero means the data disagrees with the assumed support).
  double unmatched = 0.0;
};

/// Validates a dataset against a structure before estimation. Throws
/// ModelError naming the offending trajectory index when the dataset is
/// empty, a trajectory has no steps, or a step references a state outside
/// the structure. Called by mle_mdp/mle_dtmc (and thus by trusted_learn);
/// exposed so pipelines can fail fast before simulating or repairing.
void validate_dataset(const Mdp& structure, const TrajectoryDataset& data);

/// Accumulates (weighted) transition counts from the dataset onto the
/// structure's support.
CountTable count_transitions(const Mdp& structure,
                             const TrajectoryDataset& data);

/// MLE of the transition probabilities on the structure's support.
/// `pseudocount` adds Laplace smoothing; choices with zero total mass keep
/// the structure's probabilities.
Mdp mle_mdp(const Mdp& structure, const TrajectoryDataset& data,
            double pseudocount = 0.0);

/// DTMC variant (structure viewed as a one-choice-per-state model).
Dtmc mle_dtmc(const Dtmc& structure, const TrajectoryDataset& data,
              double pseudocount = 0.0);

/// Log-likelihood of the dataset under a model (matching transitions only;
/// transitions outside the support contribute -inf).
double log_likelihood(const Mdp& model, const TrajectoryDataset& data);

}  // namespace tml
