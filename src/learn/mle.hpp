// Maximum-likelihood estimation of transition probabilities from traces.
//
// This is the learning procedure ML of §II for the transition function P:
// given a model *structure* (states, choices, and the support of each
// distribution — the paper fixes the graph structure of the MDP, §IV) and a
// dataset of observed trajectories, estimate each P(t | s, a) as the
// relative frequency of the observed transitions, optionally with Laplace
// (pseudo-count) smoothing over the structural support.
//
// Distributions with no observations keep the structure's prior
// probabilities — retraining on repaired data must not invent transitions
// the structure forbids (Eq. 3).

#pragma once

#include <optional>

#include "src/mdp/model.hpp"
#include "src/mdp/trajectory.hpp"

namespace tml {

/// Transition counts per (state, choice), aligned with the structure's
/// choice transition lists.
struct CountTable {
  /// counts[s][c][k] — weight of observed transitions matching the k-th
  /// structural transition of choice c in state s.
  std::vector<std::vector<std::vector<double>>> counts;
  /// Observations that did not match any structural transition (diagnostic;
  /// nonzero means the data disagrees with the assumed support).
  double unmatched = 0.0;
};

/// Validates a dataset against a structure before estimation. Throws
/// ModelError naming the offending trajectory index when the dataset is
/// empty, a trajectory has no steps, or a step references a state outside
/// the structure. Called by mle_mdp/mle_dtmc (and thus by trusted_learn);
/// exposed so pipelines can fail fast before simulating or repairing.
void validate_dataset(const Mdp& structure, const TrajectoryDataset& data);

/// Accumulates (weighted) transition counts from the dataset onto the
/// structure's support.
CountTable count_transitions(const Mdp& structure,
                             const TrajectoryDataset& data);

/// MLE of the transition probabilities on the structure's support.
/// `pseudocount` adds Laplace smoothing; choices with zero total mass keep
/// the structure's probabilities.
Mdp mle_mdp(const Mdp& structure, const TrajectoryDataset& data,
            double pseudocount = 0.0);

/// DTMC variant (structure viewed as a one-choice-per-state model).
Dtmc mle_dtmc(const Dtmc& structure, const TrajectoryDataset& data,
              double pseudocount = 0.0);

/// Log-likelihood of the dataset under a model (matching transitions only;
/// transitions outside the support contribute -inf).
double log_likelihood(const Mdp& model, const TrajectoryDataset& data);

/// Streaming MLE: persistent transition counts updated one batch at a time.
/// Counting is additive, so after any number of add() calls the estimate
/// equals the one-shot MLE over the concatenation of all batches — the
/// differential tests assert this bitwise. Used by RepairSession so each
/// batch costs O(batch), not O(history).
///
/// Support caveat: with pseudocount == 0 a structural transition that has
/// never been observed estimates to probability 0, which CHANGES the support
/// and forces downstream delta-compile patches into the full-recompile
/// fallback. A positive pseudocount (Laplace smoothing) keeps every
/// structural transition positive and the support stable — what streaming
/// callers want.
class IncrementalMle {
 public:
  /// MDP structure: states, choices, and the support of each distribution.
  explicit IncrementalMle(Mdp structure);
  /// DTMC structure (viewed as a one-choice-per-state MDP); enables dtmc().
  explicit IncrementalMle(const Dtmc& structure);

  /// Validates `batch` against the structure and folds its (weighted)
  /// transition counts into the running totals.
  void add(const TrajectoryDataset& batch);

  /// Replaces the accumulator state wholesale — the session-journal
  /// checkpoint restore path. `table` must be shaped exactly like the
  /// structure's support (throws tml::Error otherwise); counts restored
  /// bitwise make subsequent estimates bitwise identical to the
  /// uninterrupted run's.
  void restore(CountTable table, std::size_t batches, double total_weight);

  /// Current estimate over everything added so far. Choices with zero
  /// accumulated mass keep the structure's prior probabilities.
  Mdp mdp(double pseudocount = 0.0) const;
  /// DTMC variant; throws ModelError unless constructed from a Dtmc.
  Dtmc dtmc(double pseudocount = 0.0) const;

  const CountTable& counts() const { return table_; }
  std::size_t batches() const { return batches_; }
  /// Total observation weight accumulated (sum of matched step weights).
  double total_weight() const { return total_weight_; }

 private:
  Mdp structure_;
  std::optional<Dtmc> chain_;  ///< set iff constructed from a Dtmc
  CountTable table_;
  std::size_t batches_ = 0;
  double total_weight_ = 0.0;
};

}  // namespace tml
