#include "src/learn/weighted_mle.hpp"

#include <map>

namespace tml {

namespace {

/// Index of the structural transition s→t, or -1 if absent.
int transition_index(const std::vector<Transition>& row, StateId target) {
  for (std::size_t k = 0; k < row.size(); ++k) {
    if (row[k].target == target) return static_cast<int>(k);
  }
  return -1;
}

}  // namespace

std::vector<RepairGroup> one_group_per_trajectory(
    const TrajectoryDataset& data) {
  std::vector<RepairGroup> groups;
  groups.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    groups.push_back(RepairGroup{"traj" + std::to_string(i), {i}, false});
  }
  return groups;
}

WeightedMleResult weighted_mle_dtmc(const Dtmc& structure,
                                    const TrajectoryDataset& data,
                                    const std::vector<RepairGroup>& groups,
                                    double pseudocount) {
  TML_REQUIRE(pseudocount >= 0.0, "weighted_mle_dtmc: negative pseudocount");
  structure.validate();

  // Membership check: every trajectory may appear in at most one group.
  std::vector<int> group_of(data.size(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i : groups[g].members) {
      TML_REQUIRE(i < data.size(),
                  "weighted_mle_dtmc: group member " << i << " out of range");
      TML_REQUIRE(group_of[i] == -1,
                  "weighted_mle_dtmc: trajectory " << i << " in two groups");
      group_of[i] = static_cast<int>(g);
    }
  }

  // Allocate keep variables.
  VariablePool pool;
  std::vector<Polynomial> keep(groups.size(), Polynomial(1.0));
  WeightedMleResult result{ParametricDtmc(structure.num_states(), {}),
                           {},
                           {}};
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].pinned) continue;
    const std::string name = "keep_" + groups[g].name;
    const Var var = pool.declare(name);
    keep[g] = Polynomial::variable(var);
    result.variables.push_back(var);
    result.variable_names.push_back(name);
  }

  // Per-state, per-structural-transition counts as polynomials in the keep
  // variables; unmatched steps (outside the support) are ignored, mirroring
  // mle_mdp's diagnostics-only treatment.
  const std::size_t n = structure.num_states();
  std::vector<std::vector<Polynomial>> counts(n);
  for (StateId s = 0; s < n; ++s) {
    counts[s].assign(structure.transitions(s).size(), Polynomial(0.0));
  }
  const Polynomial kept(1.0);  // ungrouped trajectories are always kept
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Polynomial& p =
        group_of[i] >= 0 ? keep[static_cast<std::size_t>(group_of[i])] : kept;
    const double w = data.weight(i);
    if (w == 0.0) continue;
    for (const Step& step : data.trajectories[i].steps) {
      TML_REQUIRE(step.state < n,
                  "weighted_mle_dtmc: step state out of range");
      const int k =
          transition_index(structure.transitions(step.state), step.next_state);
      if (k < 0) continue;
      counts[step.state][static_cast<std::size_t>(k)] += p * w;
    }
  }

  // Assemble the parametric chain.
  ParametricDtmc chain(n, std::move(pool));
  chain.set_initial_state(structure.initial_state());
  for (StateId s = 0; s < n; ++s) {
    const auto& row = structure.transitions(s);
    Polynomial total(0.0);
    for (std::size_t k = 0; k < row.size(); ++k) {
      counts[s][k] += Polynomial(pseudocount);
      total += counts[s][k];
    }
    const bool no_data = total.is_zero();
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (no_data) {
        // Keep the structure's prior probabilities where nothing was
        // observed.
        chain.set_transition(s, row[k].target,
                             RationalFunction(row[k].probability));
      } else {
        chain.set_transition(s, row[k].target,
                             RationalFunction(counts[s][k], total));
      }
    }
    chain.set_state_reward(s, RationalFunction(structure.state_reward(s)));
    chain.set_state_name(s, structure.state_name(s));
    for (const std::string& label : structure.labels_of(s)) {
      chain.add_label(s, label);
    }
  }
  result.chain = std::move(chain);
  return result;
}

}  // namespace tml
