#include "src/learn/mle.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace tml {

void validate_dataset(const Mdp& structure, const TrajectoryDataset& data) {
  if (data.size() == 0) {
    throw ModelError("validate_dataset: dataset is empty");
  }
  const std::size_t n = structure.num_states();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Trajectory& trajectory = data.trajectories[i];
    if (trajectory.steps.empty()) {
      throw ModelError("validate_dataset: trajectory " + std::to_string(i) +
                       " has no steps");
    }
    if (trajectory.initial_state >= n) {
      throw ModelError("validate_dataset: trajectory " + std::to_string(i) +
                       " starts in out-of-range state " +
                       std::to_string(trajectory.initial_state));
    }
    for (const Step& step : trajectory.steps) {
      if (step.state >= n || step.next_state >= n) {
        throw ModelError("validate_dataset: trajectory " + std::to_string(i) +
                         " references out-of-range state " +
                         std::to_string(step.state >= n ? step.state
                                                        : step.next_state));
      }
    }
  }
}

namespace {

/// Zeroed count table shaped like the structure's transition lists.
CountTable make_count_table(const Mdp& structure) {
  CountTable table;
  table.counts.resize(structure.num_states());
  for (StateId s = 0; s < structure.num_states(); ++s) {
    const auto& choices = structure.choices(s);
    table.counts[s].resize(choices.size());
    for (std::size_t c = 0; c < choices.size(); ++c) {
      table.counts[s][c].assign(choices[c].transitions.size(), 0.0);
    }
  }
  return table;
}

/// Folds the dataset's weighted counts into `table` (additive, so batch
/// streams and one-shot counting agree exactly). Returns the matched weight.
double accumulate_counts(const Mdp& structure, const TrajectoryDataset& data,
                         CountTable& table) {
  double matched_weight = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double w = data.weight(i);
    if (w == 0.0) continue;
    for (const Step& step : data.trajectories[i].steps) {
      TML_REQUIRE(step.state < structure.num_states(),
                  "count_transitions: step state out of range");
      const auto& choices = structure.choices(step.state);
      TML_REQUIRE(step.choice < choices.size(),
                  "count_transitions: step choice out of range");
      const auto& transitions = choices[step.choice].transitions;
      bool matched = false;
      for (std::size_t k = 0; k < transitions.size(); ++k) {
        if (transitions[k].target == step.next_state) {
          table.counts[step.state][step.choice][k] += w;
          matched = true;
          break;
        }
      }
      if (matched) {
        matched_weight += w;
      } else {
        table.unmatched += w;
      }
    }
  }
  return matched_weight;
}

/// Relative-frequency estimate over `table` on the structure's support
/// (shared by the one-shot and incremental entry points, so their results
/// are identical by construction).
Mdp estimate_from_counts(const Mdp& structure, const CountTable& table,
                         double pseudocount) {
  TML_REQUIRE(pseudocount >= 0.0, "mle_mdp: negative pseudocount");
  Mdp learned = structure;
  for (StateId s = 0; s < structure.num_states(); ++s) {
    auto& choices = learned.mutable_choices(s);
    for (std::size_t c = 0; c < choices.size(); ++c) {
      auto& transitions = choices[c].transitions;
      double total = 0.0;
      for (double w : table.counts[s][c]) total += w;
      const double denom =
          total + pseudocount * static_cast<double>(transitions.size());
      if (denom <= 0.0) continue;  // no data: keep prior probabilities
      for (std::size_t k = 0; k < transitions.size(); ++k) {
        transitions[k].probability =
            (table.counts[s][c][k] + pseudocount) / denom;
      }
    }
  }
  learned.validate();
  return learned;
}

}  // namespace

CountTable count_transitions(const Mdp& structure,
                             const TrajectoryDataset& data) {
  CountTable table = make_count_table(structure);
  accumulate_counts(structure, data, table);
  return table;
}

Mdp mle_mdp(const Mdp& structure, const TrajectoryDataset& data,
            double pseudocount) {
  structure.validate();
  validate_dataset(structure, data);
  return estimate_from_counts(structure, count_transitions(structure, data),
                              pseudocount);
}

Dtmc mle_dtmc(const Dtmc& structure, const TrajectoryDataset& data,
              double pseudocount) {
  const Mdp learned = mle_mdp(structure.as_mdp(), data, pseudocount);
  Dtmc out = structure;
  for (StateId s = 0; s < structure.num_states(); ++s) {
    out.set_transitions(s, learned.choices(s)[0].transitions);
  }
  out.validate();
  return out;
}

IncrementalMle::IncrementalMle(Mdp structure)
    : structure_(std::move(structure)) {
  structure_.validate();
  table_ = make_count_table(structure_);
}

IncrementalMle::IncrementalMle(const Dtmc& structure)
    : structure_(structure.as_mdp()), chain_(structure) {
  structure_.validate();
  table_ = make_count_table(structure_);
}

void IncrementalMle::add(const TrajectoryDataset& batch) {
  validate_dataset(structure_, batch);
  total_weight_ += accumulate_counts(structure_, batch, table_);
  ++batches_;
}

void IncrementalMle::restore(CountTable table, std::size_t batches,
                             double total_weight) {
  TML_REQUIRE(table.counts.size() == structure_.num_states(),
              "IncrementalMle::restore: count table has "
                  << table.counts.size() << " states, structure has "
                  << structure_.num_states());
  for (StateId s = 0; s < structure_.num_states(); ++s) {
    const auto& choices = structure_.choices(s);
    TML_REQUIRE(table.counts[s].size() == choices.size(),
                "IncrementalMle::restore: state " << s << " has "
                    << table.counts[s].size() << " choice rows, structure has "
                    << choices.size());
    for (std::size_t c = 0; c < choices.size(); ++c) {
      TML_REQUIRE(
          table.counts[s][c].size() == choices[c].transitions.size(),
          "IncrementalMle::restore: state " << s << " choice " << c << " has "
              << table.counts[s][c].size() << " entries, structure has "
              << choices[c].transitions.size());
    }
  }
  table_ = std::move(table);
  batches_ = batches;
  total_weight_ = total_weight;
}

Mdp IncrementalMle::mdp(double pseudocount) const {
  return estimate_from_counts(structure_, table_, pseudocount);
}

Dtmc IncrementalMle::dtmc(double pseudocount) const {
  if (!chain_.has_value()) {
    throw ModelError(
        "IncrementalMle::dtmc: accumulator was constructed from an MDP "
        "structure; construct it from a Dtmc to get chain estimates");
  }
  const Mdp learned = estimate_from_counts(structure_, table_, pseudocount);
  Dtmc out = *chain_;
  for (StateId s = 0; s < structure_.num_states(); ++s) {
    out.set_transitions(s, learned.choices(s)[0].transitions);
  }
  out.validate();
  return out;
}

double log_likelihood(const Mdp& model, const TrajectoryDataset& data) {
  double ll = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double w = data.weight(i);
    if (w == 0.0) continue;
    for (const Step& step : data.trajectories[i].steps) {
      const auto& choices = model.choices(step.state);
      TML_REQUIRE(step.choice < choices.size(),
                  "log_likelihood: step choice out of range");
      double p = 0.0;
      for (const Transition& t : choices[step.choice].transitions) {
        if (t.target == step.next_state) {
          p = t.probability;
          break;
        }
      }
      if (p <= 0.0) return -std::numeric_limits<double>::infinity();
      ll += w * std::log(p);
    }
  }
  return ll;
}

}  // namespace tml
