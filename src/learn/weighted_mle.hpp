// Parametric (keep-weighted) maximum likelihood for Data Repair.
//
// §IV-B: the dataset D is perturbed by a vector p — trajectory (group) i is
// kept with weight p_i ∈ [0,1], dropped when p_i = 0. Re-running maximum
// likelihood on the weighted data makes every transition count a *linear
// function* of p and every transition probability a *rational function*
// of p:
//
//     P_p(t | s) = Σ_g p_g · count_g(s→t)  /  Σ_g p_g · count_g(s→·)
//
// (the paper's worked example: forwarding probability 0.4/(0.4+0.6·p)).
// The result is a ParametricDtmc M(p) that parametric model checking turns
// into a closed-form constraint f(p) ⋈ b for the outer machine-teaching
// optimization (Eq. 15).
//
// Groups marked `pinned` are trusted data: their keep weight is fixed to 1
// and no variable is allocated (the paper's "certain p_i values are 1").

#pragma once

#include <string>
#include <vector>

#include "src/mdp/trajectory.hpp"
#include "src/parametric/parametric_dtmc.hpp"

namespace tml {

/// A partition of the dataset's trajectories into repair groups.
///
/// §IV-B notes that "similar formulations [apply] when we consider data
/// points being added or replaced": an *augmentation* group holds
/// synthetic trajectories appended to the dataset with `target_weight = 0`
/// (they are absent from the real data; including them costs effort) and
/// `max_weight > 0` bounding how much synthetic mass may be injected.
/// Ordinary drop groups keep the defaults (target 1, max 1). Replacement
/// is the combination: a drop group for the old points plus an
/// augmentation group for their substitutes.
struct RepairGroup {
  std::string name;                  ///< becomes the variable name "keep_<name>"
  std::vector<std::size_t> members;  ///< indices into the dataset
  bool pinned = false;               ///< trusted data: weight fixed at 1
  double target_weight = 1.0;        ///< effort-free weight (0 for synthetic)
  double max_weight = 1.0;           ///< upper bound of the weight box
};

/// Result of the parametric MLE.
struct WeightedMleResult {
  ParametricDtmc chain;          ///< transition probabilities in the keep vars
  std::vector<Var> variables;    ///< one per un-pinned group, in group order
  std::vector<std::string> variable_names;
};

/// Builds the parametric chain M(p) for a DTMC structure. Distributions
/// never observed in the data keep the structure's constant probabilities.
/// `pseudocount` regularizes each structural transition with a constant
/// pseudo-observation so denominators cannot vanish when all covering
/// groups are dropped.
WeightedMleResult weighted_mle_dtmc(const Dtmc& structure,
                                    const TrajectoryDataset& data,
                                    const std::vector<RepairGroup>& groups,
                                    double pseudocount = 0.0);

/// Groups every trajectory by itself ("traj<i>").
std::vector<RepairGroup> one_group_per_trajectory(
    const TrajectoryDataset& data);

}  // namespace tml
