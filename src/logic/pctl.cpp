#include "src/logic/pctl.hpp"

#include <sstream>

namespace tml {

std::string to_string(Comparison cmp) {
  switch (cmp) {
    case Comparison::kLess: return "<";
    case Comparison::kLessEqual: return "<=";
    case Comparison::kGreater: return ">";
    case Comparison::kGreaterEqual: return ">=";
  }
  return "?";
}

bool compare(double value, Comparison cmp, double bound) {
  switch (cmp) {
    case Comparison::kLess: return value < bound;
    case Comparison::kLessEqual: return value <= bound;
    case Comparison::kGreater: return value > bound;
    case Comparison::kGreaterEqual: return value >= bound;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Accessors

const std::string& StateFormula::label() const {
  TML_REQUIRE(kind_ == Kind::kLabel, "StateFormula::label on non-label node");
  return label_;
}

const StateFormula& StateFormula::operand(std::size_t i) const {
  TML_REQUIRE(i < operands_.size(), "StateFormula::operand out of range");
  return *operands_[i];
}

Comparison StateFormula::comparison() const {
  TML_REQUIRE(kind_ == Kind::kProb || kind_ == Kind::kReward,
              "StateFormula::comparison on non-bounded operator");
  return comparison_;
}

double StateFormula::bound() const {
  TML_REQUIRE(kind_ == Kind::kProb || kind_ == Kind::kReward,
              "StateFormula::bound on non-bounded operator");
  return bound_;
}

const PathFormula& StateFormula::path() const {
  TML_REQUIRE(path_ != nullptr, "StateFormula::path on non-P operator");
  return *path_;
}

StateFormula::RewardPathKind StateFormula::reward_path_kind() const {
  TML_REQUIRE(kind_ == Kind::kReward || kind_ == Kind::kRewardQuery,
              "StateFormula::reward_path_kind on non-R operator");
  return reward_path_kind_;
}

const StateFormula& StateFormula::reward_target() const {
  TML_REQUIRE(reward_target_ != nullptr,
              "StateFormula::reward_target: not a reachability reward");
  return *reward_target_;
}

std::size_t StateFormula::reward_horizon() const {
  TML_REQUIRE((kind_ == Kind::kReward || kind_ == Kind::kRewardQuery) &&
                  reward_path_kind_ == RewardPathKind::kCumulative,
              "StateFormula::reward_horizon: not a cumulative reward");
  return reward_horizon_;
}

const StateFormula& PathFormula::left() const {
  TML_REQUIRE(left_ != nullptr, "PathFormula::left: not an until");
  return *left_;
}

const StateFormula& PathFormula::right() const {
  TML_REQUIRE(right_ != nullptr, "PathFormula::right: missing operand");
  return *right_;
}

// ---------------------------------------------------------------------------
// Factories

struct PctlFactory {
  static std::shared_ptr<StateFormula> state(StateFormula::Kind kind) {
    return std::make_shared<StateFormula>(StateFormula::Private{}, kind);
  }
  static std::shared_ptr<PathFormula> path(PathFormula::Kind kind) {
    return std::make_shared<PathFormula>(PathFormula::Private{}, kind);
  }

  static StateFormulaPtr make_label(std::string name) {
    auto node = state(StateFormula::Kind::kLabel);
    node->label_ = std::move(name);
    return node;
  }

  static PathFormulaPtr make_path(PathFormula::Kind kind, StateFormulaPtr left,
                                  StateFormulaPtr right,
                                  std::optional<std::size_t> step_bound) {
    auto node = path(kind);
    node->left_ = std::move(left);
    node->right_ = std::move(right);
    node->step_bound_ = step_bound;
    return node;
  }

  static StateFormulaPtr unary(StateFormula::Kind kind, StateFormulaPtr a) {
    TML_REQUIRE(a != nullptr, "pctl: null operand");
    auto node = state(kind);
    node->operands_ = {std::move(a)};
    return node;
  }
  static StateFormulaPtr binary(StateFormula::Kind kind, StateFormulaPtr a,
                                StateFormulaPtr b) {
    TML_REQUIRE(a != nullptr && b != nullptr, "pctl: null operand");
    auto node = state(kind);
    node->operands_ = {std::move(a), std::move(b)};
    return node;
  }

  static StateFormulaPtr prob(std::optional<Comparison> cmp, double bound,
                              PathFormulaPtr path,
                              std::optional<Quantifier> quantifier) {
    TML_REQUIRE(path != nullptr, "pctl: null path formula");
    auto node =
        state(cmp ? StateFormula::Kind::kProb : StateFormula::Kind::kProbQuery);
    if (cmp) {
      TML_REQUIRE(bound >= 0.0 && bound <= 1.0,
                  "pctl: probability bound out of [0,1]: " << bound);
      node->comparison_ = *cmp;
      node->bound_ = bound;
    }
    node->path_ = std::move(path);
    node->quantifier_ = quantifier;
    return node;
  }

  static StateFormulaPtr reward(std::optional<Comparison> cmp, double bound,
                                StateFormula::RewardPathKind path_kind,
                                StateFormulaPtr target, std::size_t horizon,
                                std::optional<Quantifier> quantifier,
                                std::string structure) {
    auto node = state(cmp ? StateFormula::Kind::kReward
                          : StateFormula::Kind::kRewardQuery);
    if (cmp) {
      TML_REQUIRE(bound >= 0.0, "pctl: reward bound must be >= 0: " << bound);
      node->comparison_ = *cmp;
      node->bound_ = bound;
    }
    node->reward_path_kind_ = path_kind;
    node->reward_target_ = std::move(target);
    node->reward_horizon_ = horizon;
    node->quantifier_ = quantifier;
    node->reward_structure_ = std::move(structure);
    return node;
  }
};

namespace pctl {

StateFormulaPtr truth() {
  return PctlFactory::state(StateFormula::Kind::kTrue);
}

StateFormulaPtr falsity() {
  return PctlFactory::state(StateFormula::Kind::kFalse);
}

StateFormulaPtr label(std::string name) {
  TML_REQUIRE(!name.empty(), "pctl::label: empty name");
  return PctlFactory::make_label(std::move(name));
}

StateFormulaPtr negation(StateFormulaPtr operand) {
  return PctlFactory::unary(StateFormula::Kind::kNot, std::move(operand));
}
StateFormulaPtr conjunction(StateFormulaPtr lhs, StateFormulaPtr rhs) {
  return PctlFactory::binary(StateFormula::Kind::kAnd, std::move(lhs),
                             std::move(rhs));
}
StateFormulaPtr disjunction(StateFormulaPtr lhs, StateFormulaPtr rhs) {
  return PctlFactory::binary(StateFormula::Kind::kOr, std::move(lhs),
                             std::move(rhs));
}
StateFormulaPtr implication(StateFormulaPtr lhs, StateFormulaPtr rhs) {
  return PctlFactory::binary(StateFormula::Kind::kImplies, std::move(lhs),
                             std::move(rhs));
}

PathFormulaPtr next(StateFormulaPtr operand) {
  TML_REQUIRE(operand != nullptr, "pctl::next: null operand");
  return PctlFactory::make_path(PathFormula::Kind::kNext, nullptr,
                                std::move(operand), std::nullopt);
}

PathFormulaPtr until(StateFormulaPtr lhs, StateFormulaPtr rhs,
                     std::optional<std::size_t> step_bound) {
  TML_REQUIRE(lhs != nullptr && rhs != nullptr, "pctl::until: null operand");
  return PctlFactory::make_path(PathFormula::Kind::kUntil, std::move(lhs),
                                std::move(rhs), step_bound);
}

PathFormulaPtr eventually(StateFormulaPtr operand,
                          std::optional<std::size_t> step_bound) {
  TML_REQUIRE(operand != nullptr, "pctl::eventually: null operand");
  return PctlFactory::make_path(PathFormula::Kind::kEventually, nullptr,
                                std::move(operand), step_bound);
}

PathFormulaPtr globally(StateFormulaPtr operand,
                        std::optional<std::size_t> step_bound) {
  TML_REQUIRE(operand != nullptr, "pctl::globally: null operand");
  return PctlFactory::make_path(PathFormula::Kind::kGlobally, nullptr,
                                std::move(operand), step_bound);
}

StateFormulaPtr prob(Comparison cmp, double bound, PathFormulaPtr path,
                     std::optional<Quantifier> quantifier) {
  return PctlFactory::prob(cmp, bound, std::move(path), quantifier);
}

StateFormulaPtr prob_query(Quantifier quantifier, PathFormulaPtr path) {
  return PctlFactory::prob(std::nullopt, 0.0, std::move(path), quantifier);
}

StateFormulaPtr reward_reach(Comparison cmp, double bound,
                             StateFormulaPtr target,
                             std::optional<Quantifier> quantifier,
                             std::string reward_structure) {
  TML_REQUIRE(target != nullptr, "pctl::reward_reach: null target");
  return PctlFactory::reward(cmp, bound,
                             StateFormula::RewardPathKind::kReachability,
                             std::move(target), 0, quantifier,
                             std::move(reward_structure));
}

StateFormulaPtr reward_cumulative(Comparison cmp, double bound,
                                  std::size_t horizon,
                                  std::optional<Quantifier> quantifier,
                                  std::string reward_structure) {
  return PctlFactory::reward(cmp, bound,
                             StateFormula::RewardPathKind::kCumulative,
                             nullptr, horizon, quantifier,
                             std::move(reward_structure));
}

StateFormulaPtr reward_reach_query(Quantifier quantifier,
                                   StateFormulaPtr target,
                                   std::string reward_structure) {
  TML_REQUIRE(target != nullptr, "pctl::reward_reach_query: null target");
  return PctlFactory::reward(std::nullopt, 0.0,
                             StateFormula::RewardPathKind::kReachability,
                             std::move(target), 0, quantifier,
                             std::move(reward_structure));
}

StateFormulaPtr reward_cumulative_query(Quantifier quantifier,
                                        std::size_t horizon,
                                        std::string reward_structure) {
  return PctlFactory::reward(std::nullopt, 0.0,
                             StateFormula::RewardPathKind::kCumulative,
                             nullptr, horizon, quantifier,
                             std::move(reward_structure));
}

}  // namespace pctl

// ---------------------------------------------------------------------------
// Printing

namespace {

std::string quantifier_suffix(std::optional<Quantifier> q) {
  if (!q) return "";
  return *q == Quantifier::kMax ? "max" : "min";
}

}  // namespace

std::string PathFormula::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kNext:
      os << "X " << right().to_string();
      break;
    case Kind::kUntil:
      os << left().to_string() << " U";
      if (step_bound_) os << "<=" << *step_bound_;
      os << " " << right().to_string();
      break;
    case Kind::kEventually:
      os << "F";
      if (step_bound_) os << "<=" << *step_bound_;
      os << " " << right().to_string();
      break;
    case Kind::kGlobally:
      os << "G";
      if (step_bound_) os << "<=" << *step_bound_;
      os << " " << right().to_string();
      break;
  }
  return os.str();
}

std::string StateFormula::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kLabel:
      os << '"' << label_ << '"';
      return os.str();
    case Kind::kNot:
      os << "!(" << operand().to_string() << ")";
      return os.str();
    case Kind::kAnd:
      os << "(" << operand(0).to_string() << " & " << operand(1).to_string()
         << ")";
      return os.str();
    case Kind::kOr:
      os << "(" << operand(0).to_string() << " | " << operand(1).to_string()
         << ")";
      return os.str();
    case Kind::kImplies:
      os << "(" << operand(0).to_string() << " => " << operand(1).to_string()
         << ")";
      return os.str();
    case Kind::kProb:
      os << "P" << quantifier_suffix(quantifier_) << tml::to_string(comparison_)
         << bound_ << " [ " << path_->to_string() << " ]";
      return os.str();
    case Kind::kProbQuery:
      os << "P" << quantifier_suffix(quantifier_) << "=? [ "
         << path_->to_string() << " ]";
      return os.str();
    case Kind::kReward:
    case Kind::kRewardQuery: {
      os << "R";
      if (!reward_structure_.empty()) os << "{\"" << reward_structure_ << "\"}";
      os << quantifier_suffix(quantifier_);
      if (kind_ == Kind::kReward) {
        os << tml::to_string(comparison_) << bound_;
      } else {
        os << "=?";
      }
      os << " [ ";
      if (reward_path_kind_ == RewardPathKind::kReachability) {
        os << "F " << reward_target_->to_string();
      } else {
        os << "C<=" << reward_horizon_;
      }
      os << " ]";
      return os.str();
    }
  }
  return "?";
}

}  // namespace tml
