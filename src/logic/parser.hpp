// Recursive-descent parser for PCTL formula text (PRISM-flavoured syntax).
//
// Grammar (whitespace-insensitive):
//
//   state    := or
//   or       := and ( '|' and )*
//   and      := impl ( '&' impl )*
//   impl     := not ( '=>' not )?
//   not      := '!' not | atom
//   atom     := 'true' | 'false' | '"label"' | '(' state ')'
//             | probOp | rewardOp
//   probOp   := ('Pmax' | 'Pmin' | 'P') ( '=?' | cmp number ) '[' path ']'
//   rewardOp := ('Rmax' | 'Rmin' | 'R') rewardStruct?
//               ( '=?' | cmp number ) '[' rewardPath ']'
//   rewardStruct := '{' '"' name '"' '}'
//   path     := 'X' state
//             | 'F' stepBound? state
//             | 'G' stepBound? state
//             | state 'U' stepBound? state
//   rewardPath := 'F' state | 'C' '<=' integer
//   stepBound := '<=' integer
//   cmp      := '<=' | '<' | '>=' | '>'
//
// Examples from the paper:
//   P>0.99 [ F ("changedlane" | "reducedspeed") ]
//   R{"attempts"}<=40 [ F "delivered" ]

#pragma once

#include <string>

#include "src/logic/pctl.hpp"

namespace tml {

/// Parses a PCTL state formula; throws ParseError with position info on
/// malformed input.
StateFormulaPtr parse_pctl(const std::string& text);

}  // namespace tml
