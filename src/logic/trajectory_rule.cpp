#include "src/logic/trajectory_rule.hpp"

#include <sstream>

namespace tml {

namespace {

StateId state_at(const Trajectory& trajectory, std::size_t position) {
  TML_REQUIRE(position <= trajectory.length(),
              "TrajectoryRule: position " << position << " beyond trajectory");
  if (position == 0) return trajectory.initial_state;
  return trajectory.steps[position - 1].next_state;
}

}  // namespace

bool TrajectoryRule::holds(const Mdp& mdp, const Trajectory& trajectory) const {
  return holds_at(mdp, trajectory, 0);
}

bool TrajectoryRule::holds_at(const Mdp& mdp, const Trajectory& trajectory,
                              std::size_t position) const {
  const std::size_t n = trajectory.length();
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kLabel:
      return mdp.has_label(state_at(trajectory, position), name_);
    case Kind::kState: {
      const StateId s = state_at(trajectory, position);
      return mdp.state_name(s) == name_;
    }
    case Kind::kAction: {
      if (position >= n) return false;
      return mdp.action_name(trajectory.steps[position].action) == name_;
    }
    case Kind::kNot:
      return !left_->holds_at(mdp, trajectory, position);
    case Kind::kAnd:
      return left_->holds_at(mdp, trajectory, position) &&
             right_->holds_at(mdp, trajectory, position);
    case Kind::kOr:
      return left_->holds_at(mdp, trajectory, position) ||
             right_->holds_at(mdp, trajectory, position);
    case Kind::kImplies:
      return !left_->holds_at(mdp, trajectory, position) ||
             right_->holds_at(mdp, trajectory, position);
    case Kind::kNext:
      return position < n && left_->holds_at(mdp, trajectory, position + 1);
    case Kind::kEventually:
      for (std::size_t j = position; j <= n; ++j) {
        if (left_->holds_at(mdp, trajectory, j)) return true;
      }
      return false;
    case Kind::kGlobally:
      for (std::size_t j = position; j <= n; ++j) {
        if (!left_->holds_at(mdp, trajectory, j)) return false;
      }
      return true;
    case Kind::kUntil:
      for (std::size_t j = position; j <= n; ++j) {
        if (right_->holds_at(mdp, trajectory, j)) return true;
        if (!left_->holds_at(mdp, trajectory, j)) return false;
      }
      return false;
  }
  return false;
}

struct RuleFactory {
  static std::shared_ptr<TrajectoryRule> node(TrajectoryRule::Kind kind) {
    return std::make_shared<TrajectoryRule>(TrajectoryRule::Private{}, kind);
  }
  static TrajectoryRulePtr atom(TrajectoryRule::Kind kind, std::string name) {
    TML_REQUIRE(!name.empty(), "TrajectoryRule: empty atom name");
    auto n = node(kind);
    n->name_ = std::move(name);
    return n;
  }
  static TrajectoryRulePtr unary(TrajectoryRule::Kind kind,
                                 TrajectoryRulePtr a) {
    TML_REQUIRE(a != nullptr, "TrajectoryRule: null operand");
    auto n = node(kind);
    n->left_ = std::move(a);
    return n;
  }
  static TrajectoryRulePtr binary(TrajectoryRule::Kind kind,
                                  TrajectoryRulePtr a, TrajectoryRulePtr b) {
    TML_REQUIRE(a != nullptr && b != nullptr, "TrajectoryRule: null operand");
    auto n = node(kind);
    n->left_ = std::move(a);
    n->right_ = std::move(b);
    return n;
  }
};

namespace rules {

TrajectoryRulePtr truth() {
  return RuleFactory::node(TrajectoryRule::Kind::kTrue);
}
TrajectoryRulePtr label(std::string name) {
  return RuleFactory::atom(TrajectoryRule::Kind::kLabel, std::move(name));
}
TrajectoryRulePtr state(std::string name) {
  return RuleFactory::atom(TrajectoryRule::Kind::kState, std::move(name));
}
TrajectoryRulePtr action(std::string name) {
  return RuleFactory::atom(TrajectoryRule::Kind::kAction, std::move(name));
}
TrajectoryRulePtr negation(TrajectoryRulePtr operand) {
  return RuleFactory::unary(TrajectoryRule::Kind::kNot, std::move(operand));
}
TrajectoryRulePtr conjunction(TrajectoryRulePtr lhs, TrajectoryRulePtr rhs) {
  return RuleFactory::binary(TrajectoryRule::Kind::kAnd, std::move(lhs),
                             std::move(rhs));
}
TrajectoryRulePtr disjunction(TrajectoryRulePtr lhs, TrajectoryRulePtr rhs) {
  return RuleFactory::binary(TrajectoryRule::Kind::kOr, std::move(lhs),
                             std::move(rhs));
}
TrajectoryRulePtr implication(TrajectoryRulePtr lhs, TrajectoryRulePtr rhs) {
  return RuleFactory::binary(TrajectoryRule::Kind::kImplies, std::move(lhs),
                             std::move(rhs));
}
TrajectoryRulePtr next(TrajectoryRulePtr operand) {
  return RuleFactory::unary(TrajectoryRule::Kind::kNext, std::move(operand));
}
TrajectoryRulePtr eventually(TrajectoryRulePtr operand) {
  return RuleFactory::unary(TrajectoryRule::Kind::kEventually,
                            std::move(operand));
}
TrajectoryRulePtr globally(TrajectoryRulePtr operand) {
  return RuleFactory::unary(TrajectoryRule::Kind::kGlobally,
                            std::move(operand));
}
TrajectoryRulePtr until(TrajectoryRulePtr lhs, TrajectoryRulePtr rhs) {
  return RuleFactory::binary(TrajectoryRule::Kind::kUntil, std::move(lhs),
                             std::move(rhs));
}

TrajectoryRulePtr never_visit_state(std::string name) {
  return globally(negation(state(std::move(name))));
}
TrajectoryRulePtr never_visit_label(std::string name) {
  return globally(negation(label(std::move(name))));
}
TrajectoryRulePtr eventually_label(std::string name) {
  return eventually(label(std::move(name)));
}

}  // namespace rules

std::string TrajectoryRule::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kLabel:
      return "\"" + name_ + "\"";
    case Kind::kState:
      return "@" + name_;
    case Kind::kAction:
      return "act:" + name_;
    case Kind::kNot:
      return "!(" + left_->to_string() + ")";
    case Kind::kAnd:
      return "(" + left_->to_string() + " & " + right_->to_string() + ")";
    case Kind::kOr:
      return "(" + left_->to_string() + " | " + right_->to_string() + ")";
    case Kind::kImplies:
      return "(" + left_->to_string() + " => " + right_->to_string() + ")";
    case Kind::kNext:
      return "X (" + left_->to_string() + ")";
    case Kind::kEventually:
      return "F (" + left_->to_string() + ")";
    case Kind::kGlobally:
      return "G (" + left_->to_string() + ")";
    case Kind::kUntil:
      return "(" + left_->to_string() + " U " + right_->to_string() + ")";
  }
  return "?";
}

}  // namespace tml
