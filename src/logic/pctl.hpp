// PCTL abstract syntax (Probabilistic Computation Tree Logic).
//
// Supports the fragment the paper uses (§III): state formulas built from
// atomic-proposition labels and boolean connectives, the probabilistic
// operator P⋈b[ψ] over path formulas (X, U, bounded U, F, G), and the
// reward operator R⋈b[F φ] / R⋈b[C≤k] for cumulative-reward properties like
// the WSN case study's `R{attempts}≤X [F delivered]`.
//
// Both *verification* form (`P>=0.99 [...]`, a boolean at each state) and
// *quantitative* form (`Pmax=? [...]`, a number at each state) are
// representable. On MDPs, `P⋈b` quantifies over all schedulers (PRISM
// semantics): an upper bound is checked against Pmax, a lower bound against
// Pmin; `Pmax=?` / `Pmin=?` select a direction explicitly.
//
// Formulas are immutable and shared via shared_ptr; use the factory
// functions in namespace `pctl` or the parser (src/logic/parser.hpp).

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

/// Comparison relations of the P/R operators.
enum class Comparison { kLess, kLessEqual, kGreater, kGreaterEqual };

/// Which scheduler extremum a quantitative query asks for.
enum class Quantifier { kMax, kMin };

std::string to_string(Comparison cmp);
bool compare(double value, Comparison cmp, double bound);

class PathFormula;

/// State formula node. A small closed hierarchy: we use a tag + children
/// representation rather than virtual dispatch so the checker can pattern
/// match directly.
class StateFormula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kLabel,
    kNot,
    kAnd,
    kOr,
    kImplies,
    kProb,       ///< P cmp bound [ path ]  (boolean)
    kProbQuery,  ///< Pmax=? / Pmin=? [ path ]  (quantitative, MDP) or P=? (DTMC)
    kReward,     ///< R cmp bound [ reward-path ]  (boolean)
    kRewardQuery ///< Rmax=? / Rmin=? / R=? [ reward-path ]
  };

  /// What a reward operator accumulates over.
  enum class RewardPathKind {
    kReachability,  ///< F φ : reward until a φ-state is reached
    kCumulative     ///< C<=k : reward over the first k steps
  };

  Kind kind() const { return kind_; }

  // Accessors; each is valid only for the kinds noted.
  const std::string& label() const;                      // kLabel
  const StateFormula& operand(std::size_t i = 0) const;  // kNot/kAnd/kOr/kImplies
  std::size_t num_operands() const { return operands_.size(); }
  Comparison comparison() const;                         // kProb/kReward
  double bound() const;                                  // kProb/kReward
  const PathFormula& path() const;                       // kProb/kProbQuery
  std::optional<Quantifier> quantifier() const { return quantifier_; }
  RewardPathKind reward_path_kind() const;               // kReward/kRewardQuery
  const StateFormula& reward_target() const;  // kReward*/kReachability
  std::size_t reward_horizon() const;         // kReward*/kCumulative
  const std::string& reward_structure() const { return reward_structure_; }

  std::string to_string() const;

  /// True for kProbQuery / kRewardQuery (the formula denotes a number, not
  /// a boolean).
  bool is_quantitative() const {
    return kind_ == Kind::kProbQuery || kind_ == Kind::kRewardQuery;
  }

  // Node construction is via the pctl:: factories below.
  struct Private {};
  explicit StateFormula(Private, Kind kind) : kind_(kind) {}

 private:
  friend struct PctlFactory;

  Kind kind_;
  std::string label_;
  std::vector<std::shared_ptr<const StateFormula>> operands_;
  Comparison comparison_ = Comparison::kGreaterEqual;
  double bound_ = 0.0;
  std::optional<Quantifier> quantifier_;
  std::shared_ptr<const PathFormula> path_;
  RewardPathKind reward_path_kind_ = RewardPathKind::kReachability;
  std::shared_ptr<const StateFormula> reward_target_;
  std::size_t reward_horizon_ = 0;
  std::string reward_structure_;
};

using StateFormulaPtr = std::shared_ptr<const StateFormula>;

/// Path formula node (argument of the P operator).
class PathFormula {
 public:
  enum class Kind {
    kNext,      ///< X φ
    kUntil,     ///< φ1 U φ2  (optionally step-bounded)
    kEventually,///< F φ  = true U φ
    kGlobally   ///< G φ  (optionally step-bounded)
  };

  Kind kind() const { return kind_; }
  const StateFormula& left() const;   // kUntil
  const StateFormula& right() const;  // all kinds (the main operand)
  std::optional<std::size_t> step_bound() const { return step_bound_; }

  std::string to_string() const;

  struct Private {};
  explicit PathFormula(Private, Kind kind) : kind_(kind) {}

 private:
  friend struct PctlFactory;

  Kind kind_;
  std::shared_ptr<const StateFormula> left_;
  std::shared_ptr<const StateFormula> right_;
  std::optional<std::size_t> step_bound_;
};

using PathFormulaPtr = std::shared_ptr<const PathFormula>;

/// Factory functions for building formulas programmatically.
namespace pctl {

StateFormulaPtr truth();
StateFormulaPtr falsity();
StateFormulaPtr label(std::string name);
StateFormulaPtr negation(StateFormulaPtr operand);
StateFormulaPtr conjunction(StateFormulaPtr lhs, StateFormulaPtr rhs);
StateFormulaPtr disjunction(StateFormulaPtr lhs, StateFormulaPtr rhs);
StateFormulaPtr implication(StateFormulaPtr lhs, StateFormulaPtr rhs);

PathFormulaPtr next(StateFormulaPtr operand);
PathFormulaPtr until(StateFormulaPtr lhs, StateFormulaPtr rhs,
                     std::optional<std::size_t> step_bound = std::nullopt);
PathFormulaPtr eventually(StateFormulaPtr operand,
                          std::optional<std::size_t> step_bound = std::nullopt);
PathFormulaPtr globally(StateFormulaPtr operand,
                        std::optional<std::size_t> step_bound = std::nullopt);

/// P cmp bound [ path ]. `quantifier` overrides the default scheduler
/// resolution on MDPs (by default derived from the comparison direction).
StateFormulaPtr prob(Comparison cmp, double bound, PathFormulaPtr path,
                     std::optional<Quantifier> quantifier = std::nullopt);
/// Pmax=? / Pmin=? [ path ] (pass kMax/kMin); for DTMCs the quantifier is
/// irrelevant.
StateFormulaPtr prob_query(Quantifier quantifier, PathFormulaPtr path);

/// R cmp bound [ F target ].
StateFormulaPtr reward_reach(Comparison cmp, double bound,
                             StateFormulaPtr target,
                             std::optional<Quantifier> quantifier = std::nullopt,
                             std::string reward_structure = "");
/// R cmp bound [ C<=k ].
StateFormulaPtr reward_cumulative(
    Comparison cmp, double bound, std::size_t horizon,
    std::optional<Quantifier> quantifier = std::nullopt,
    std::string reward_structure = "");
/// Rmax=? / Rmin=? [ F target ].
StateFormulaPtr reward_reach_query(Quantifier quantifier,
                                   StateFormulaPtr target,
                                   std::string reward_structure = "");
/// Rmax=? / Rmin=? [ C<=k ].
StateFormulaPtr reward_cumulative_query(Quantifier quantifier,
                                        std::size_t horizon,
                                        std::string reward_structure = "");

}  // namespace pctl

}  // namespace tml
