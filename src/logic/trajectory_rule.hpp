// Trajectory rules: logical constraints interpreted over finite MDP
// trajectories, used by Reward Repair (§IV-C).
//
// The paper's Reward Repair enforces E_Q[φ_l(U)] = 1 for rules φ_l "defined
// over the trajectory ... in any logic that can be interpreted over a
// trajectory, such as propositional, first-order, or linear temporal
// logic". We implement a finite-trace temporal logic (LTLf-style):
// propositional atoms over the current position (state labels, state names,
// taken actions) combined with boolean connectives and temporal operators
// X / F / G / U evaluated on the finite state-action sequence.
//
// Semantics on a trajectory U = s_0 -a_0-> s_1 ... s_n at position i:
//   label(l)      : s_i carries label l
//   state(name)   : s_i is the named state
//   action(name)  : i < n and a_i is the named action
//   X ψ           : i < n and ψ holds at i+1
//   F ψ           : ψ holds at some j >= i
//   G ψ           : ψ holds at all j >= i
//   ψ1 U ψ2       : ψ2 holds at some j >= i and ψ1 holds at i..j-1
// A rule holds on U iff it holds at position 0.

#pragma once

#include <memory>
#include <string>

#include "src/mdp/model.hpp"
#include "src/mdp/trajectory.hpp"

namespace tml {

/// Immutable finite-trace rule node; build via the `rules` factories.
class TrajectoryRule {
 public:
  enum class Kind {
    kTrue,
    kLabel,
    kState,
    kAction,
    kNot,
    kAnd,
    kOr,
    kImplies,
    kNext,
    kEventually,
    kGlobally,
    kUntil
  };

  Kind kind() const { return kind_; }

  /// Evaluates the rule at position 0 of the trajectory.
  bool holds(const Mdp& mdp, const Trajectory& trajectory) const;

  /// Evaluates the rule at a given position (0 .. trajectory.length()).
  bool holds_at(const Mdp& mdp, const Trajectory& trajectory,
                std::size_t position) const;

  std::string to_string() const;

  struct Private {};
  TrajectoryRule(Private, Kind kind) : kind_(kind) {}

 private:
  friend struct RuleFactory;

  Kind kind_;
  std::string name_;  // label / state / action name
  std::shared_ptr<const TrajectoryRule> left_;
  std::shared_ptr<const TrajectoryRule> right_;
};

using TrajectoryRulePtr = std::shared_ptr<const TrajectoryRule>;

namespace rules {

TrajectoryRulePtr truth();
/// Current state carries the label.
TrajectoryRulePtr label(std::string name);
/// Current state is the named state.
TrajectoryRulePtr state(std::string name);
/// The action taken at the current position is the named one.
TrajectoryRulePtr action(std::string name);

TrajectoryRulePtr negation(TrajectoryRulePtr operand);
TrajectoryRulePtr conjunction(TrajectoryRulePtr lhs, TrajectoryRulePtr rhs);
TrajectoryRulePtr disjunction(TrajectoryRulePtr lhs, TrajectoryRulePtr rhs);
TrajectoryRulePtr implication(TrajectoryRulePtr lhs, TrajectoryRulePtr rhs);

TrajectoryRulePtr next(TrajectoryRulePtr operand);
TrajectoryRulePtr eventually(TrajectoryRulePtr operand);
TrajectoryRulePtr globally(TrajectoryRulePtr operand);
TrajectoryRulePtr until(TrajectoryRulePtr lhs, TrajectoryRulePtr rhs);

/// Convenience: G !state — the trajectory never visits the named state.
TrajectoryRulePtr never_visit_state(std::string name);
/// Convenience: G !label — the trajectory never visits a labelled state.
TrajectoryRulePtr never_visit_label(std::string name);
/// Convenience: F label — the trajectory eventually reaches a labelled state.
TrajectoryRulePtr eventually_label(std::string name);

}  // namespace rules

}  // namespace tml
