#include "src/logic/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "src/common/numeric.hpp"

namespace tml {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StateFormulaPtr parse() {
    StateFormulaPtr formula = parse_state();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input");
    }
    return formula;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("PCTL parse error at position " + std::to_string(pos_) +
                     ": " + message + " (input: \"" + text_ + "\")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(const std::string& token) {
    skip_ws();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  /// Consumes `token` only if it is not followed by an identifier character
  /// (so "F" does not eat the F of "Foo" — labels are quoted, but keywords
  /// like "true" need the boundary).
  bool consume_word(const std::string& token) {
    skip_ws();
    if (text_.compare(pos_, token.size(), token) != 0) return false;
    const std::size_t end = pos_ + token.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  void expect(const std::string& token) {
    if (!consume(token)) fail("expected '" + token + "'");
  }

  double parse_number() {
    skip_ws();
    // Locale-independent (src/common/numeric.hpp): bounds like "0.5" must
    // parse identically under a comma-decimal LC_NUMERIC locale, where the
    // strtod this replaces silently read them as 0.
    double value = 0.0;
    const std::size_t consumed =
        parse_double(std::string_view(text_).substr(pos_), &value);
    if (consumed == 0) fail("expected a number");
    pos_ += consumed;
    return value;
  }

  std::size_t parse_integer() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected an integer");
    return static_cast<std::size_t>(
        std::strtoull(text_.substr(begin, pos_ - begin).c_str(), nullptr, 10));
  }

  std::string parse_quoted_label() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected '\"'");
    ++pos_;
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    if (pos_ >= text_.size()) fail("unterminated label");
    std::string name = text_.substr(begin, pos_ - begin);
    ++pos_;
    if (name.empty()) fail("empty label");
    return name;
  }

  std::optional<Comparison> try_comparison() {
    if (consume("<=")) return Comparison::kLessEqual;
    if (consume(">=")) return Comparison::kGreaterEqual;
    if (consume("<")) return Comparison::kLess;
    if (consume(">")) return Comparison::kGreater;
    return std::nullopt;
  }

  // Grammar (PRISM precedence: `=>` binds loosest and associates to the
  // right, then `|`, then `&`, then `!`):
  //   state := impl
  //   impl  := or ('=>' impl)?
  //   or    := and ('|' and)*
  //   and   := not ('&' not)*
  StateFormulaPtr parse_state() { return parse_impl(); }

  StateFormulaPtr parse_impl() {
    StateFormulaPtr lhs = parse_or();
    if (consume("=>")) {
      // Right recursion gives right associativity: a => b => c is
      // a => (b => c).
      return pctl::implication(std::move(lhs), parse_impl());
    }
    return lhs;
  }

  StateFormulaPtr parse_or() {
    StateFormulaPtr lhs = parse_and();
    while (peek() == '|') {
      expect("|");
      lhs = pctl::disjunction(std::move(lhs), parse_and());
    }
    return lhs;
  }

  StateFormulaPtr parse_and() {
    StateFormulaPtr lhs = parse_not();
    while (peek() == '&') {
      expect("&");
      lhs = pctl::conjunction(std::move(lhs), parse_not());
    }
    return lhs;
  }

  StateFormulaPtr parse_not() {
    if (consume("!")) return pctl::negation(parse_not());
    return parse_atom();
  }

  StateFormulaPtr parse_atom() {
    skip_ws();
    if (eof()) fail("unexpected end of input");
    if (consume_word("true")) return pctl::truth();
    if (consume_word("false")) return pctl::falsity();
    if (peek() == '"') return pctl::label(parse_quoted_label());
    if (peek() == '(') {
      expect("(");
      StateFormulaPtr inner = parse_state();
      expect(")");
      return inner;
    }
    // P / Pmax / Pmin
    if (consume_word("Pmax")) return parse_prob_tail(Quantifier::kMax);
    if (consume_word("Pmin")) return parse_prob_tail(Quantifier::kMin);
    if (consume_word("P")) return parse_prob_tail(std::nullopt);
    if (consume_word("Rmax")) return parse_reward_tail(Quantifier::kMax);
    if (consume_word("Rmin")) return parse_reward_tail(Quantifier::kMin);
    if (consume_word("R")) return parse_reward_tail(std::nullopt);
    fail("expected a state formula");
  }

  StateFormulaPtr parse_prob_tail(std::optional<Quantifier> quantifier) {
    if (consume("=?")) {
      expect("[");
      PathFormulaPtr path = parse_path();
      expect("]");
      // `P=?` without a quantifier is allowed; the checker requires a DTMC
      // (or resolves it as max on MDPs with a warning-free default).
      return pctl::prob_query(quantifier.value_or(Quantifier::kMax),
                              std::move(path));
    }
    const auto cmp = try_comparison();
    if (!cmp) fail("expected comparison or '=?' after P");
    const double bound = parse_number();
    expect("[");
    PathFormulaPtr path = parse_path();
    expect("]");
    return pctl::prob(*cmp, bound, std::move(path), quantifier);
  }

  StateFormulaPtr parse_reward_tail(std::optional<Quantifier> quantifier) {
    std::string structure;
    if (consume("{")) {
      structure = parse_quoted_label();
      expect("}");
    }
    const bool query = consume("=?");
    std::optional<Comparison> cmp;
    double bound = 0.0;
    if (!query) {
      cmp = try_comparison();
      if (!cmp) fail("expected comparison or '=?' after R");
      bound = parse_number();
    }
    expect("[");
    StateFormulaPtr target;
    std::size_t horizon = 0;
    bool cumulative = false;
    if (consume_word("F")) {
      target = parse_state();
    } else if (consume_word("C")) {
      expect("<=");
      horizon = parse_integer();
      cumulative = true;
    } else {
      fail("expected 'F' or 'C<=' in reward path");
    }
    expect("]");

    if (query) {
      const Quantifier q = quantifier.value_or(Quantifier::kMax);
      return cumulative
                 ? pctl::reward_cumulative_query(q, horizon, structure)
                 : pctl::reward_reach_query(q, std::move(target), structure);
    }
    return cumulative
               ? pctl::reward_cumulative(*cmp, bound, horizon, quantifier,
                                         structure)
               : pctl::reward_reach(*cmp, bound, std::move(target), quantifier,
                                    structure);
  }

  PathFormulaPtr parse_path() {
    if (consume_word("X")) return pctl::next(parse_state());
    if (consume_word("F")) {
      const auto bound = try_step_bound();
      return pctl::eventually(parse_state(), bound);
    }
    if (consume_word("G")) {
      const auto bound = try_step_bound();
      return pctl::globally(parse_state(), bound);
    }
    StateFormulaPtr lhs = parse_state();
    if (!consume_word("U")) fail("expected 'U' in path formula");
    const auto bound = try_step_bound();
    return pctl::until(std::move(lhs), parse_state(), bound);
  }

  std::optional<std::size_t> try_step_bound() {
    if (consume("<=")) return parse_integer();
    return std::nullopt;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

StateFormulaPtr parse_pctl(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace tml
