#include "src/rational/exact.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace tml {

// ---------------------------------------------------------------------------
// BigInt

BigInt::BigInt(std::int64_t value) {
  neg_ = value < 0;
  // Negate via unsigned arithmetic so INT64_MIN is handled.
  std::uint64_t mag = neg_ ? ~static_cast<std::uint64_t>(value) + 1
                           : static_cast<std::uint64_t>(value);
  while (mag != 0) {
    mag_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
  if (mag_.empty()) neg_ = false;
}

void BigInt::trim() {
  while (!mag_.empty() && mag_.back() == 0) mag_.pop_back();
  if (mag_.empty()) neg_ = false;
}

std::size_t BigInt::bit_length() const {
  if (mag_.empty()) return 0;
  std::size_t bits = (mag_.size() - 1) * 32;
  std::uint32_t top = mag_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

int BigInt::compare_magnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::sub_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += std::int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.mag_.empty()) out.neg_ = !out.neg_;
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  if (neg_ == rhs.neg_) {
    out.neg_ = neg_;
    out.mag_ = add_magnitude(mag_, rhs.mag_);
  } else {
    const int cmp = compare_magnitude(mag_, rhs.mag_);
    if (cmp >= 0) {
      out.neg_ = neg_;
      out.mag_ = sub_magnitude(mag_, rhs.mag_);
    } else {
      out.neg_ = rhs.neg_;
      out.mag_ = sub_magnitude(rhs.mag_, mag_);
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  BigInt out;
  if (mag_.empty() || rhs.mag_.empty()) return out;
  out.mag_.assign(mag_.size() + rhs.mag_.size(), 0);
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.mag_.size(); ++j) {
      std::uint64_t cur = out.mag_[i + j] +
                          static_cast<std::uint64_t>(mag_[i]) * rhs.mag_[j] +
                          carry;
      out.mag_[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.mag_.size();
    while (carry != 0) {
      std::uint64_t cur = out.mag_[k] + carry;
      out.mag_[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.neg_ = neg_ != rhs.neg_;
  out.trim();
  return out;
}

void BigInt::divmod_magnitude(const BigInt& num, const BigInt& den,
                              BigInt& quot, BigInt& rem) {
  TML_REQUIRE(!den.mag_.empty(), "BigInt: division by zero");
  quot = BigInt();
  rem = BigInt();
  const std::size_t bits = num.bit_length();
  if (bits == 0) return;
  quot.mag_.assign((bits + 31) / 32, 0);
  for (std::size_t i = bits; i-- > 0;) {
    // rem = rem << 1 | bit_i(num)
    rem = rem.shifted_left(1);
    if ((num.mag_[i / 32] >> (i % 32)) & 1u) {
      if (rem.mag_.empty()) {
        rem.mag_.push_back(1);
      } else {
        rem.mag_[0] |= 1u;
      }
    }
    if (compare_magnitude(rem.mag_, den.mag_) >= 0) {
      rem.mag_ = sub_magnitude(rem.mag_, den.mag_);
      quot.mag_[i / 32] |= 1u << (i % 32);
    }
  }
  quot.trim();
  rem.trim();
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  BigInt quot, rem;
  divmod_magnitude(*this, rhs, quot, rem);
  if (!quot.mag_.empty()) quot.neg_ = neg_ != rhs.neg_;
  return quot;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  BigInt quot, rem;
  divmod_magnitude(*this, rhs, quot, rem);
  if (!rem.mag_.empty()) rem.neg_ = neg_;  // remainder takes dividend's sign
  return rem;
}

bool BigInt::operator==(const BigInt& rhs) const {
  return neg_ == rhs.neg_ && mag_ == rhs.mag_;
}

bool BigInt::operator<(const BigInt& rhs) const {
  if (neg_ != rhs.neg_) return neg_;
  const int cmp = compare_magnitude(mag_, rhs.mag_);
  return neg_ ? cmp > 0 : cmp < 0;
}

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (mag_.empty() || bits == 0) return *this;
  BigInt out;
  out.neg_ = neg_;
  const std::size_t words = bits / 32;
  const std::size_t rem = bits % 32;
  out.mag_.assign(mag_.size() + words + 1, 0);
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(mag_[i]) << rem;
    out.mag_[i + words] |= static_cast<std::uint32_t>(shifted & 0xffffffffu);
    out.mag_[i + words + 1] |= static_cast<std::uint32_t>(shifted >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::shifted_right(std::size_t bits) const {
  const std::size_t words = bits / 32;
  if (mag_.size() <= words) return BigInt();
  BigInt out;
  out.neg_ = neg_;
  const std::size_t rem = bits % 32;
  out.mag_.assign(mag_.size() - words, 0);
  for (std::size_t i = 0; i < out.mag_.size(); ++i) {
    std::uint64_t cur = static_cast<std::uint64_t>(mag_[i + words]) >> rem;
    if (rem != 0 && i + words + 1 < mag_.size()) {
      cur |= static_cast<std::uint64_t>(mag_[i + words + 1]) << (32 - rem);
    }
    out.mag_[i] = static_cast<std::uint32_t>(cur & 0xffffffffu);
  }
  out.trim();
  return out;
}

double BigInt::to_double() const {
  double out = 0.0;
  for (std::size_t i = mag_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(mag_[i]);
  }
  return neg_ ? -out : out;
}

std::string BigInt::to_string() const {
  if (mag_.empty()) return "0";
  BigInt cur = *this;
  cur.neg_ = false;
  const BigInt ten(10);
  std::string digits;
  while (!cur.is_zero()) {
    BigInt quot, rem;
    divmod_magnitude(cur, ten, quot, rem);
    digits.push_back(
        static_cast<char>('0' + (rem.mag_.empty() ? 0 : rem.mag_[0])));
    cur = quot;
  }
  if (neg_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt gcd(BigInt a, BigInt b) {
  a.neg_ = false;
  b.neg_ = false;
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  // Binary GCD: factor out common powers of two, then subtract-and-shift.
  std::size_t shift = 0;
  auto trailing_zero_bits = [](const BigInt& v) {
    std::size_t bits = 0;
    for (std::size_t i = 0; i < v.mag_.size(); ++i) {
      if (v.mag_[i] == 0) {
        bits += 32;
        continue;
      }
      std::uint32_t w = v.mag_[i];
      while ((w & 1u) == 0) {
        ++bits;
        w >>= 1;
      }
      break;
    }
    return bits;
  };
  const std::size_t za = trailing_zero_bits(a);
  const std::size_t zb = trailing_zero_bits(b);
  shift = std::min(za, zb);
  a = a.shifted_right(za);
  b = b.shifted_right(zb);
  while (!b.is_zero()) {
    if (BigInt::compare_magnitude(a.mag_, b.mag_) > 0) std::swap(a, b);
    b = b - a;  // both odd → difference even
    if (!b.is_zero()) b = b.shifted_right(trailing_zero_bits(b));
  }
  return a.shifted_left(shift);
}

// ---------------------------------------------------------------------------
// BigRational

BigRational::BigRational(std::int64_t value) : num_(value), den_(1) {}

BigRational::BigRational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  normalize();
}

void BigRational::normalize() {
  TML_REQUIRE(!den_.is_zero(), "BigRational: zero denominator");
  if (den_.negative()) {
    den_ = -den_;
    num_ = -num_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  const BigInt g = gcd(num_, den_);
  num_ = num_ / g;
  den_ = den_ / g;
}

BigRational BigRational::from_double(double x) {
  TML_REQUIRE(std::isfinite(x), "BigRational::from_double: non-finite value");
  if (x == 0.0) return BigRational();
  int exp = 0;
  const double mantissa = std::frexp(x, &exp);  // x = mantissa * 2^exp
  // mantissa * 2^53 is an odd-or-even integer with |.| in [2^52, 2^53).
  const auto scaled =
      static_cast<std::int64_t>(std::ldexp(mantissa, 53));  // exact
  const int e2 = exp - 53;
  BigInt num(scaled);
  BigInt den(1);
  if (e2 >= 0) {
    num = num.shifted_left(static_cast<std::size_t>(e2));
  } else {
    den = den.shifted_left(static_cast<std::size_t>(-e2));
  }
  return BigRational(std::move(num), std::move(den));
}

BigRational BigRational::operator-() const {
  BigRational out = *this;
  out.num_ = -out.num_;
  return out;
}

BigRational BigRational::operator+(const BigRational& rhs) const {
  return BigRational(num_ * rhs.den_ + rhs.num_ * den_, den_ * rhs.den_);
}

BigRational BigRational::operator-(const BigRational& rhs) const {
  return BigRational(num_ * rhs.den_ - rhs.num_ * den_, den_ * rhs.den_);
}

BigRational BigRational::operator*(const BigRational& rhs) const {
  return BigRational(num_ * rhs.num_, den_ * rhs.den_);
}

BigRational BigRational::operator/(const BigRational& rhs) const {
  TML_REQUIRE(!rhs.is_zero(), "BigRational: division by zero");
  return BigRational(num_ * rhs.den_, den_ * rhs.num_);
}

BigRational& BigRational::operator+=(const BigRational& rhs) {
  return *this = *this + rhs;
}
BigRational& BigRational::operator-=(const BigRational& rhs) {
  return *this = *this - rhs;
}
BigRational& BigRational::operator*=(const BigRational& rhs) {
  return *this = *this * rhs;
}
BigRational& BigRational::operator/=(const BigRational& rhs) {
  return *this = *this / rhs;
}

bool BigRational::operator==(const BigRational& rhs) const {
  return num_ == rhs.num_ && den_ == rhs.den_;  // both normalized
}

bool BigRational::operator<(const BigRational& rhs) const {
  return num_ * rhs.den_ < rhs.num_ * den_;  // denominators positive
}

double BigRational::to_double() const {
  // Shift both operands into double range before dividing, preserving the
  // ratio. 2^1000 headroom on either side is far inside double range.
  const std::size_t nb = num_.bit_length();
  const std::size_t db = den_.bit_length();
  const std::size_t top = std::max(nb, db);
  const std::size_t shift = top > 512 ? top - 512 : 0;
  const double n = num_.shifted_right(shift).to_double();
  const double d = den_.shifted_right(shift).to_double();
  if (d == 0.0) return num_.negative() ? -0.0 : 0.0;  // |value| ≪ anything
  return n / d;
}

std::string BigRational::to_string() const {
  if (den_ == BigInt(1)) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

}  // namespace tml
