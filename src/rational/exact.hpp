// Arbitrary-precision integers and exact rationals.
//
// This is the exact-arithmetic substrate for the differential test oracle
// (tests/oracle.hpp): reachability probabilities of a randomly generated
// model are computed by Gaussian elimination over BigRational, with no
// rounding anywhere, and the floating-point engines are then required to
// land inside oracle ± eps. BigRational::from_double converts a double
// EXACTLY (every finite double is a dyadic rational), so a float model whose
// probabilities are dyadic has an exact rational twin.
//
// The implementation favours clarity over speed — schoolbook multiplication,
// bit-by-bit division, binary GCD — which is ample for test-sized systems
// (hundreds of states). Nothing here is on a solver hot path.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

/// Signed arbitrary-precision integer. Magnitude is little-endian base 2^32;
/// zero is canonically non-negative with an empty magnitude.
class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor)

  bool is_zero() const { return mag_.empty(); }
  bool negative() const { return neg_; }
  /// Number of significant bits of the magnitude (0 for zero).
  std::size_t bit_length() const;

  BigInt operator-() const;
  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated division (quotient rounds toward zero, like int64_t).
  BigInt operator/(const BigInt& rhs) const;
  BigInt operator%(const BigInt& rhs) const;

  bool operator==(const BigInt& rhs) const;
  bool operator<(const BigInt& rhs) const;
  bool operator!=(const BigInt& rhs) const { return !(*this == rhs); }
  bool operator>(const BigInt& rhs) const { return rhs < *this; }
  bool operator<=(const BigInt& rhs) const { return !(rhs < *this); }
  bool operator>=(const BigInt& rhs) const { return !(*this < rhs); }

  /// Shift the magnitude left/right by `bits` (sign unchanged).
  BigInt shifted_left(std::size_t bits) const;
  BigInt shifted_right(std::size_t bits) const;

  /// Approximate double value (top 64 magnitude bits, then scaled).
  /// Overflows to ±inf beyond the double range.
  double to_double() const;
  std::string to_string() const;  ///< decimal

 private:
  static int compare_magnitude(const std::vector<std::uint32_t>& a,
                               const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_magnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_magnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  void trim();

  /// Magnitude quotient+remainder by bit-by-bit long division.
  static void divmod_magnitude(const BigInt& num, const BigInt& den,
                               BigInt& quot, BigInt& rem);

  bool neg_ = false;
  std::vector<std::uint32_t> mag_;

  friend BigInt gcd(BigInt a, BigInt b);
};

/// Greatest common divisor of |a| and |b| (binary GCD; gcd(0, b) = |b|).
BigInt gcd(BigInt a, BigInt b);

/// Exact rational number, always normalized: gcd(|num|, den) = 1, den > 0,
/// sign carried by the numerator. Division by zero throws tml::Error.
class BigRational {
 public:
  BigRational() = default;  ///< zero
  BigRational(std::int64_t value);  // NOLINT(google-explicit-constructor)
  BigRational(BigInt numerator, BigInt denominator);

  /// Exact conversion: every finite double is num/2^k for integers num, k.
  /// Throws tml::Error on NaN or infinity.
  static BigRational from_double(double x);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }
  bool is_zero() const { return num_.is_zero(); }

  BigRational operator-() const;
  BigRational operator+(const BigRational& rhs) const;
  BigRational operator-(const BigRational& rhs) const;
  BigRational operator*(const BigRational& rhs) const;
  BigRational operator/(const BigRational& rhs) const;
  BigRational& operator+=(const BigRational& rhs);
  BigRational& operator-=(const BigRational& rhs);
  BigRational& operator*=(const BigRational& rhs);
  BigRational& operator/=(const BigRational& rhs);

  bool operator==(const BigRational& rhs) const;
  bool operator<(const BigRational& rhs) const;
  bool operator!=(const BigRational& rhs) const { return !(*this == rhs); }
  bool operator>(const BigRational& rhs) const { return rhs < *this; }
  bool operator<=(const BigRational& rhs) const { return !(rhs < *this); }
  bool operator>=(const BigRational& rhs) const { return !(*this < rhs); }

  /// Nearest-ish double (num.to_double() / den.to_double() after a common
  /// right-shift keeps both operands finite). For diagnostics only —
  /// comparisons against doubles should go through from_double and compare
  /// exactly.
  double to_double() const;
  std::string to_string() const;  ///< "num/den" (or "num" when den == 1)

 private:
  void normalize();

  BigInt num_;      // carries the sign
  BigInt den_ = 1;  // always positive
};

}  // namespace tml
