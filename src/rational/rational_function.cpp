#include "src/rational/rational_function.hpp"

#include <cmath>
#include <optional>

namespace tml {

namespace {

/// If p == s·q for some scalar s, returns s.
std::optional<double> proportional_scale(const Polynomial& p,
                                         const Polynomial& q) {
  if (p.is_zero() || q.is_zero()) return std::nullopt;
  if (p.num_terms() != q.num_terms()) return std::nullopt;
  const auto& lead_p = *p.terms().begin();
  const auto& lead_q = *q.terms().begin();
  if (lead_p.first != lead_q.first || lead_q.second == 0.0) {
    return std::nullopt;
  }
  const double scale = lead_p.second / lead_q.second;
  if (p.proportional_to(q, scale)) return scale;
  return std::nullopt;
}

}  // namespace

RationalFunction::RationalFunction(Polynomial num, Polynomial den)
    : num_(std::move(num)), den_(std::move(den)) {
  TML_REQUIRE(!den_.is_zero(), "RationalFunction: zero denominator");
  normalize();
}

void RationalFunction::normalize() {
  if (num_.is_zero()) {
    den_ = Polynomial(1.0);
    return;
  }
  // Cancel common monomial content.
  const Monomial content = num_.monomial_content().gcd(den_.monomial_content());
  if (!content.is_constant()) {
    num_ = num_.divide_by_monomial(content);
    den_ = den_.divide_by_monomial(content);
  }
  // Fold constant denominators into the numerator.
  if (den_.is_constant()) {
    num_ = num_ / den_.constant_value();
    den_ = Polynomial(1.0);
    return;
  }
  // Collapse num == c·den to the constant c. Compare leading coefficients
  // to guess the scale, then verify proportionality.
  if (num_.num_terms() == den_.num_terms()) {
    const auto& lead_num = *num_.terms().begin();
    const auto& lead_den = *den_.terms().begin();
    if (lead_num.first == lead_den.first && lead_den.second != 0.0) {
      const double scale = lead_num.second / lead_den.second;
      if (num_.proportional_to(den_, scale)) {
        num_ = Polynomial(scale);
        den_ = Polynomial(1.0);
        return;
      }
    }
  }
  // Scale so the denominator's largest coefficient is 1 (numeric hygiene).
  const double scale = den_.max_abs_coefficient();
  if (scale != 0.0 && std::abs(scale - 1.0) > 1e-12) {
    num_ = num_ / scale;
    den_ = den_ / scale;
  }
}

bool RationalFunction::is_constant() const {
  return num_.is_constant() && den_.is_constant();
}

double RationalFunction::constant_value() const {
  TML_REQUIRE(is_constant(), "RationalFunction::constant_value: not constant");
  return num_.constant_value() / den_.constant_value();
}

RationalFunction RationalFunction::operator+(
    const RationalFunction& other) const {
  if (is_zero()) return other;
  if (other.is_zero()) return *this;
  // Share the denominator when it is structurally identical — the dominant
  // case in state elimination, and it avoids squaring the denominator.
  if (den_ == other.den_) {
    return RationalFunction(num_ + other.num_, den_);
  }
  return RationalFunction(num_ * other.den_ + other.num_ * den_,
                          den_ * other.den_);
}

RationalFunction RationalFunction::operator-(
    const RationalFunction& other) const {
  return *this + (-other);
}

RationalFunction RationalFunction::operator-() const {
  RationalFunction out = *this;
  out.num_ = -out.num_;
  return out;
}

RationalFunction RationalFunction::operator*(
    const RationalFunction& other) const {
  if (is_zero() || other.is_zero()) return RationalFunction();
  // Cross-cancel proportional numerator/denominator pairs before
  // multiplying: (s·d₂/d₁)·(n₂/d₂) = s·n₂/d₁.
  if (auto s = proportional_scale(num_, other.den_)) {
    return RationalFunction(other.num_ * *s, den_);
  }
  if (auto s = proportional_scale(other.num_, den_)) {
    return RationalFunction(num_ * *s, other.den_);
  }
  return RationalFunction(num_ * other.num_, den_ * other.den_);
}

RationalFunction RationalFunction::operator/(
    const RationalFunction& other) const {
  return *this * other.inverse();
}

RationalFunction& RationalFunction::operator+=(const RationalFunction& other) {
  *this = *this + other;
  return *this;
}
RationalFunction& RationalFunction::operator-=(const RationalFunction& other) {
  *this = *this - other;
  return *this;
}
RationalFunction& RationalFunction::operator*=(const RationalFunction& other) {
  *this = *this * other;
  return *this;
}
RationalFunction& RationalFunction::operator/=(const RationalFunction& other) {
  *this = *this / other;
  return *this;
}

RationalFunction RationalFunction::operator*(double scalar) const {
  if (scalar == 0.0) return RationalFunction();
  RationalFunction out = *this;
  out.num_ = out.num_ * scalar;
  return out;
}

RationalFunction RationalFunction::inverse() const {
  TML_REQUIRE(!is_zero(), "RationalFunction::inverse: zero function");
  return RationalFunction(den_, num_);
}

RationalFunction RationalFunction::derivative(Var var) const {
  // (n/d)' = (n'·d − n·d') / d².
  const Polynomial dn = num_.derivative(var);
  const Polynomial dd = den_.derivative(var);
  if (dd.is_zero()) {
    return RationalFunction(dn, den_);
  }
  return RationalFunction(dn * den_ - num_ * dd, den_ * den_);
}

double RationalFunction::evaluate(std::span<const double> values) const {
  const double d = den_.evaluate(values);
  if (std::abs(d) < 1e-300) {
    throw NumericError("RationalFunction::evaluate: denominator vanishes");
  }
  return num_.evaluate(values) / d;
}

std::vector<double> RationalFunction::evaluate_gradient(
    std::span<const Var> vars, std::span<const double> values) const {
  // Evaluate the quotient rule numerically instead of building symbolic
  // derivatives per call: grad = (n'·d − n·d') / d².
  const double d = den_.evaluate(values);
  if (std::abs(d) < 1e-300) {
    throw NumericError("RationalFunction::evaluate_gradient: denominator vanishes");
  }
  const double n = num_.evaluate(values);
  std::vector<double> grad(vars.size(), 0.0);
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const double dn = num_.derivative(vars[i]).evaluate(values);
    const double dd = den_.derivative(vars[i]).evaluate(values);
    grad[i] = (dn * d - n * dd) / (d * d);
  }
  return grad;
}

std::vector<Var> RationalFunction::variables() const {
  std::vector<Var> vars = num_.variables();
  std::vector<Var> den_vars = den_.variables();
  vars.insert(vars.end(), den_vars.begin(), den_vars.end());
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::uint32_t RationalFunction::degree() const {
  return std::max(num_.degree(), den_.degree());
}

std::string RationalFunction::to_string(
    const std::function<std::string(Var)>& name_of) const {
  if (den_.is_constant() && std::abs(den_.constant_value() - 1.0) < 1e-15) {
    return num_.to_string(name_of);
  }
  return "(" + num_.to_string(name_of) + ") / (" + den_.to_string(name_of) +
         ")";
}

}  // namespace tml
