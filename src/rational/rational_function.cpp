#include "src/rational/rational_function.hpp"

#include <algorithm>
#include <cmath>

namespace tml {

namespace {

/// x^e for small integer e (factor exponents are tiny).
double ipow(double x, std::uint32_t e) {
  double out = 1.0;
  for (std::uint32_t i = 0; i < e; ++i) out *= x;
  return out;
}

constexpr double kCoeffTol = 1e-12;

}  // namespace

// ---------------------------------------------------------------------------
// Factor-list plumbing

double RationalFunction::factorize(Polynomial p, Factors& out) {
  if (p.is_zero()) return 0.0;
  if (p.is_constant()) return p.constant_value();
  double scale = 1.0;
  // Monomial content becomes one factor per variable (with exponent), so
  // x²/x cancels by exponent arithmetic instead of polynomial division.
  const Monomial content = p.monomial_content();
  if (!content.is_constant()) {
    p = p.divide_by_monomial(content);
    for (const auto& [var, exp] : content.factors()) {
      SubtermPool::Interned v =
          SubtermPool::instance().intern(Polynomial::variable(var));
      scale *= ipow(v.scale, exp);  // 1.0 for a bare variable
      out.push_back(Factor{std::move(v.handle), exp});
    }
  }
  if (p.is_constant()) {
    scale *= p.constant_value();
  } else {
    SubtermPool::Interned core = SubtermPool::instance().intern(p);
    scale *= core.scale;
    out.push_back(Factor{std::move(core.handle), 1});
  }
  sort_and_merge(out);
  return scale;
}

void RationalFunction::sort_and_merge(Factors& factors) {
  std::sort(factors.begin(), factors.end(),
            [](const Factor& a, const Factor& b) {
              return a.poly->id < b.poly->id;
            });
  std::size_t w = 0;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (w > 0 && factors[w - 1].poly == factors[i].poly) {
      factors[w - 1].exp += factors[i].exp;
    } else {
      if (w != i) factors[w] = std::move(factors[i]);
      ++w;
    }
  }
  factors.resize(w);
}

RationalFunction::Factors RationalFunction::merge(const Factors& a,
                                                  const Factors& b) {
  Factors out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].poly->id < b[j].poly->id)) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j].poly->id < a[i].poly->id) {
      out.push_back(b[j++]);
    } else {
      out.push_back(Factor{a[i].poly, a[i].exp + b[j].exp});
      ++i;
      ++j;
    }
  }
  return out;
}

void RationalFunction::cancel_common(Factors& num, Factors& den) {
  Factors n2, d2;
  n2.reserve(num.size());
  d2.reserve(den.size());
  std::size_t i = 0, j = 0;
  while (i < num.size() || j < den.size()) {
    if (j == den.size() ||
        (i < num.size() && num[i].poly->id < den[j].poly->id)) {
      n2.push_back(std::move(num[i++]));
    } else if (i == num.size() || den[j].poly->id < num[i].poly->id) {
      d2.push_back(std::move(den[j++]));
    } else {
      const std::uint32_t m = std::min(num[i].exp, den[j].exp);
      if (num[i].exp > m) n2.push_back(Factor{num[i].poly, num[i].exp - m});
      if (den[j].exp > m) d2.push_back(Factor{den[j].poly, den[j].exp - m});
      ++i;
      ++j;
    }
  }
  num = std::move(n2);
  den = std::move(d2);
}

void RationalFunction::split_common(const Factors& a, const Factors& b,
                                    Factors& common, Factors& a_extra,
                                    Factors& b_extra) {
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].poly->id < b[j].poly->id)) {
      a_extra.push_back(a[i++]);
    } else if (i == a.size() || b[j].poly->id < a[i].poly->id) {
      b_extra.push_back(b[j++]);
    } else {
      const std::uint32_t m = std::min(a[i].exp, b[j].exp);
      common.push_back(Factor{a[i].poly, m});
      if (a[i].exp > m) a_extra.push_back(Factor{a[i].poly, a[i].exp - m});
      if (b[j].exp > m) b_extra.push_back(Factor{b[j].poly, b[j].exp - m});
      ++i;
      ++j;
    }
  }
}

Polynomial RationalFunction::expand(double coeff, const Factors& factors) {
  Polynomial out(coeff);
  for (const Factor& f : factors) {
    out *= f.poly->poly.pow(f.exp);
  }
  return out;
}

bool RationalFunction::factors_equal(const Factors& a, const Factors& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].poly != b[i].poly || a[i].exp != b[i].exp) return false;
  }
  return true;
}

RationalFunction RationalFunction::from_parts(Polynomial num_poly,
                                              Factors den) {
  RationalFunction out;
  out.coeff_ = factorize(num_poly, out.num_factors_);
  if (out.coeff_ == 0.0) {
    out.num_factors_.clear();
    return out;
  }
  out.den_factors_ = std::move(den);
  const std::size_t num_before = out.num_factors_.size();
  cancel_common(out.num_factors_, out.den_factors_);
  if (out.num_factors_.size() == num_before) {
    // The facade numerator is exactly the polynomial we just factorized;
    // keep it so repeated accumulation (+=) does not re-expand each round.
    out.num_cache_ = std::make_shared<const Polynomial>(std::move(num_poly));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Construction and facade

RationalFunction::RationalFunction(Polynomial p) {
  coeff_ = factorize(std::move(p), num_factors_);
  if (coeff_ == 0.0) num_factors_.clear();
}

RationalFunction::RationalFunction(Polynomial num, Polynomial den) {
  TML_REQUIRE(!den.is_zero(), "RationalFunction: zero denominator");
  coeff_ = factorize(std::move(num), num_factors_);
  if (coeff_ == 0.0) {
    num_factors_.clear();
    return;
  }
  Factors den_factors;
  const double den_scale = factorize(std::move(den), den_factors);
  coeff_ /= den_scale;
  den_factors_ = std::move(den_factors);
  cancel_common(num_factors_, den_factors_);
}

const Polynomial& RationalFunction::numerator() const {
  if (num_cache_ == nullptr) {
    num_cache_ =
        std::make_shared<const Polynomial>(expand(coeff_, num_factors_));
  }
  return *num_cache_;
}

const Polynomial& RationalFunction::denominator() const {
  if (den_cache_ == nullptr) {
    den_cache_ =
        std::make_shared<const Polynomial>(expand(1.0, den_factors_));
  }
  return *den_cache_;
}

double RationalFunction::constant_value() const {
  TML_REQUIRE(is_constant(), "RationalFunction::constant_value: not constant");
  return coeff_;
}

// ---------------------------------------------------------------------------
// Arithmetic

RationalFunction RationalFunction::operator+(
    const RationalFunction& other) const {
  if (is_zero()) return other;
  if (other.is_zero()) return *this;

  Factors common, a_extra, b_extra;
  split_common(den_factors_, other.den_factors_, common, a_extra, b_extra);

  Polynomial num_poly;
  if (a_extra.empty() && b_extra.empty()) {
    // Identical denominators — the dominant case in state elimination.
    num_poly = numerator() + other.numerator();
  } else if (common.empty()) {
    num_poly = numerator() * other.denominator() +
               other.numerator() * denominator();
  } else {
    // Cross-multiply only the unshared parts of each denominator.
    num_poly = expand(coeff_, merge(num_factors_, b_extra)) +
               expand(other.coeff_, merge(other.num_factors_, a_extra));
  }
  return from_parts(std::move(num_poly),
                    merge(common, merge(a_extra, b_extra)));
}

RationalFunction RationalFunction::operator-(
    const RationalFunction& other) const {
  return *this + (-other);
}

RationalFunction RationalFunction::operator-() const {
  RationalFunction out = *this;
  out.coeff_ = -out.coeff_;
  out.num_cache_ =
      out.num_cache_ != nullptr
          ? std::make_shared<const Polynomial>(-*out.num_cache_)
          : nullptr;
  return out;
}

RationalFunction RationalFunction::operator*(
    const RationalFunction& other) const {
  if (is_zero() || other.is_zero()) return RationalFunction();
  RationalFunction out;
  out.coeff_ = coeff_ * other.coeff_;
  out.num_factors_ = merge(num_factors_, other.num_factors_);
  out.den_factors_ = merge(den_factors_, other.den_factors_);
  cancel_common(out.num_factors_, out.den_factors_);
  return out;
}

RationalFunction RationalFunction::operator/(
    const RationalFunction& other) const {
  return *this * other.inverse();
}

RationalFunction& RationalFunction::operator+=(const RationalFunction& other) {
  *this = *this + other;
  return *this;
}
RationalFunction& RationalFunction::operator-=(const RationalFunction& other) {
  *this = *this - other;
  return *this;
}
RationalFunction& RationalFunction::operator*=(const RationalFunction& other) {
  *this = *this * other;
  return *this;
}
RationalFunction& RationalFunction::operator/=(const RationalFunction& other) {
  *this = *this / other;
  return *this;
}

RationalFunction RationalFunction::operator*(double scalar) const {
  if (scalar == 0.0 || is_zero()) return RationalFunction();
  RationalFunction out = *this;
  out.coeff_ *= scalar;
  out.num_cache_ =
      out.num_cache_ != nullptr
          ? std::make_shared<const Polynomial>(*out.num_cache_ * scalar)
          : nullptr;
  return out;
}

RationalFunction RationalFunction::inverse() const {
  TML_REQUIRE(!is_zero(), "RationalFunction::inverse: zero function");
  RationalFunction out;
  out.coeff_ = 1.0 / coeff_;
  out.num_factors_ = den_factors_;
  out.den_factors_ = num_factors_;
  return out;
}

// ---------------------------------------------------------------------------
// Calculus and evaluation

RationalFunction RationalFunction::derivative(Var var) const {
  // d/dv [c · Π nᵢ^{aᵢ} / Π dⱼ^{bⱼ}] as a sum of factored terms: each term
  // reuses this function's factor lists with one exponent shifted, so the
  // sum's denominators share almost everything and stay factored.
  RationalFunction out;
  for (std::size_t i = 0; i < num_factors_.size(); ++i) {
    Polynomial dp = num_factors_[i].poly->poly.derivative(var);
    if (dp.is_zero()) continue;
    RationalFunction term = *this;
    term.num_cache_.reset();
    term.coeff_ *= static_cast<double>(num_factors_[i].exp);
    if (--term.num_factors_[i].exp == 0) {
      term.num_factors_.erase(term.num_factors_.begin() +
                              static_cast<std::ptrdiff_t>(i));
    }
    out += term * RationalFunction(std::move(dp));
  }
  for (std::size_t j = 0; j < den_factors_.size(); ++j) {
    Polynomial dd = den_factors_[j].poly->poly.derivative(var);
    if (dd.is_zero()) continue;
    RationalFunction term = *this;
    term.num_cache_.reset();
    term.den_cache_.reset();
    term.coeff_ *= -static_cast<double>(den_factors_[j].exp);
    term.den_factors_[j].exp += 1;
    out += term * RationalFunction(std::move(dd));
  }
  return out;
}

double RationalFunction::evaluate(std::span<const double> values) const {
  double num = coeff_;
  for (const Factor& f : num_factors_) {
    num *= ipow(f.poly->poly.evaluate(values), f.exp);
  }
  double den = 1.0;
  for (const Factor& f : den_factors_) {
    den *= ipow(f.poly->poly.evaluate(values), f.exp);
  }
  if (std::abs(den) < 1e-300) {
    throw NumericError("RationalFunction::evaluate: denominator vanishes");
  }
  return num / den;
}

namespace {

/// Value and gradient of scale · Π fᵢ^{eᵢ} at `values` by the running
/// product rule: P' = P·Σ eᵢ fᵢ'/fᵢ, computed without dividing so factors
/// that vanish at the point stay well-defined.
void product_value_and_gradient(
    const std::vector<std::pair<const Polynomial*, std::uint32_t>>& factors,
    double scale, std::span<const Var> vars, std::span<const double> values,
    double& value, std::vector<double>& grad) {
  value = scale;
  std::fill(grad.begin(), grad.end(), 0.0);
  for (const auto& [poly, exp] : factors) {
    const double v = poly->evaluate(values);
    const double ve = ipow(v, exp);
    const double dve = static_cast<double>(exp) * ipow(v, exp - 1);
    for (std::size_t i = 0; i < vars.size(); ++i) {
      const double dv = poly->evaluate_derivative(vars[i], values);
      grad[i] = grad[i] * ve + value * dve * dv;
    }
    value *= ve;
  }
}

}  // namespace

std::vector<double> RationalFunction::evaluate_gradient(
    std::span<const Var> vars, std::span<const double> values) const {
  std::vector<double> grad(vars.size(), 0.0);
  if (is_zero()) return grad;
  std::vector<std::pair<const Polynomial*, std::uint32_t>> num_view,
      den_view;
  for (const Factor& f : num_factors_) {
    num_view.emplace_back(&f.poly->poly, f.exp);
  }
  for (const Factor& f : den_factors_) {
    den_view.emplace_back(&f.poly->poly, f.exp);
  }
  double n = 0.0, d = 0.0;
  std::vector<double> dn(vars.size()), dd(vars.size());
  product_value_and_gradient(num_view, coeff_, vars, values, n, dn);
  product_value_and_gradient(den_view, 1.0, vars, values, d, dd);
  if (std::abs(d) < 1e-300) {
    throw NumericError(
        "RationalFunction::evaluate_gradient: denominator vanishes");
  }
  for (std::size_t i = 0; i < vars.size(); ++i) {
    grad[i] = (dn[i] * d - n * dd[i]) / (d * d);
  }
  return grad;
}

// ---------------------------------------------------------------------------
// Inspection

std::vector<Var> RationalFunction::variables() const {
  std::vector<Var> vars;
  const auto collect = [&vars](const Factors& factors) {
    for (const Factor& f : factors) {
      const std::vector<Var> fv = f.poly->poly.variables();
      vars.insert(vars.end(), fv.begin(), fv.end());
    }
  };
  collect(num_factors_);
  collect(den_factors_);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::uint32_t RationalFunction::degree() const {
  const auto product_degree = [](const Factors& factors) {
    std::uint32_t d = 0;
    for (const Factor& f : factors) d += f.exp * f.poly->degree;
    return d;
  };
  return std::max(product_degree(num_factors_), product_degree(den_factors_));
}

std::size_t RationalFunction::num_factors() const {
  std::size_t n = 0;
  for (const Factor& f : num_factors_) n += f.exp;
  for (const Factor& f : den_factors_) n += f.exp;
  return n;
}

std::size_t RationalFunction::factored_terms() const {
  std::size_t n = 0;
  for (const Factor& f : num_factors_) n += f.poly->poly.num_terms();
  for (const Factor& f : den_factors_) n += f.poly->poly.num_terms();
  return n;
}

std::string RationalFunction::to_string(
    const std::function<std::string(Var)>& name_of) const {
  const Polynomial& num = numerator();
  const Polynomial& den = denominator();
  if (den.is_constant() && std::abs(den.constant_value() - 1.0) < 1e-15) {
    return num.to_string(name_of);
  }
  return "(" + num.to_string(name_of) + ") / (" + den.to_string(name_of) +
         ")";
}

bool RationalFunction::operator==(const RationalFunction& other) const {
  if (is_zero() || other.is_zero()) return is_zero() == other.is_zero();
  if (!factors_equal(num_factors_, other.num_factors_) ||
      !factors_equal(den_factors_, other.den_factors_)) {
    return false;
  }
  return std::abs(coeff_ - other.coeff_) <=
         kCoeffTol * std::max(1.0, std::abs(coeff_));
}

}  // namespace tml
