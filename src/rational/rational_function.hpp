// Rational functions (quotients of multivariate polynomials).
//
// Parametric model checking by state elimination (src/parametric) produces
// transition probabilities and value functions of this form; the repair
// NLPs (src/core) then evaluate them and their gradients.
//
// Normalization is heuristic (monomial content cancellation, constant
// denominator absorption, proportionality detection). We do NOT implement
// full multivariate GCD — the repair problems have few parameters and
// moderate degree, and every symbolic result is cross-checked numerically
// in the test suite.

#pragma once

#include <string>

#include "src/rational/polynomial.hpp"

namespace tml {

/// num / den with den not identically zero. Kept lightly normalized:
/// common monomial content cancelled, constant denominators folded into the
/// numerator, and num == c·den collapsed to the constant c.
class RationalFunction {
 public:
  /// Zero.
  RationalFunction() : num_(0.0), den_(1.0) {}

  /// Constant.
  explicit RationalFunction(double constant)
      : num_(constant), den_(1.0) {}

  /// Polynomial (denominator 1).
  explicit RationalFunction(Polynomial p) : num_(std::move(p)), den_(1.0) {}

  RationalFunction(Polynomial num, Polynomial den);

  /// The rational function consisting of just the variable `var`.
  static RationalFunction variable(Var var) {
    return RationalFunction(Polynomial::variable(var));
  }

  const Polynomial& numerator() const { return num_; }
  const Polynomial& denominator() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_constant() const;
  double constant_value() const;

  RationalFunction operator+(const RationalFunction& other) const;
  RationalFunction operator-(const RationalFunction& other) const;
  RationalFunction operator*(const RationalFunction& other) const;
  RationalFunction operator/(const RationalFunction& other) const;
  RationalFunction operator-() const;
  RationalFunction& operator+=(const RationalFunction& other);
  RationalFunction& operator-=(const RationalFunction& other);
  RationalFunction& operator*=(const RationalFunction& other);
  RationalFunction& operator/=(const RationalFunction& other);

  RationalFunction operator*(double scalar) const;

  /// Multiplicative inverse; throws on the zero function.
  RationalFunction inverse() const;

  /// Partial derivative via the quotient rule.
  RationalFunction derivative(Var var) const;

  /// Evaluates at `values` (indexed by variable id). Throws NumericError if
  /// the denominator vanishes at the point.
  double evaluate(std::span<const double> values) const;

  /// Evaluates the gradient with respect to the listed variables.
  std::vector<double> evaluate_gradient(std::span<const Var> vars,
                                        std::span<const double> values) const;

  /// Sorted list of variables occurring in numerator or denominator.
  std::vector<Var> variables() const;

  /// Max total degree over numerator/denominator (complexity measure).
  std::uint32_t degree() const;

  std::string to_string(const std::function<std::string(Var)>& name_of) const;

  /// Structural equality of the normalized representation. Equal rational
  /// functions with different representations may compare unequal (no full
  /// GCD); tests use numeric comparison for semantic equality.
  bool operator==(const RationalFunction& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }

 private:
  void normalize();

  Polynomial num_;
  Polynomial den_;
};

inline RationalFunction operator*(double scalar, const RationalFunction& f) {
  return f * scalar;
}

/// 1 - f, a combination state elimination uses constantly.
inline RationalFunction one_minus(const RationalFunction& f) {
  return RationalFunction(1.0) - f;
}

}  // namespace tml
