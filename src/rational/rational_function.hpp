// Rational functions (quotients of multivariate polynomials), kept in
// FACTORED form over a hash-consed subterm pool.
//
// Representation: coeff · Π numᵢ^{aᵢ} / Π denⱼ^{bⱼ}, where every factor is
// a non-constant polynomial interned in the process-wide SubtermPool
// (subterm_pool.hpp) and factor lists are sorted by pool id. Products and
// quotients are pure factor-list merges with divide-out of common factors
// by pool identity — nothing is expanded. A sum expands only the factors
// the two denominators do NOT share, and its numerator re-enters the pool
// as a single new factor. evaluate() / evaluate_gradient() walk the factor
// lists numerically without ever expanding.
//
// The expanded numerator()/denominator() view is a lazily materialized,
// cached facade, so callers written against the eager representation (the
// repair NLPs in src/core, bounded symbolic iteration, to_string, tests)
// keep compiling and behaving as before. evaluate()/evaluate_gradient()
// are const-pure and safe to call concurrently; the facade accessors
// mutate the cache on first call and are not thread-safe until then.
//
// Normalization remains heuristic (no multivariate GCD): scale-normalized
// interning makes proportional polynomials cancel structurally, and
// monomial content is split into per-variable factors so x²/x cancels.
// Every symbolic result is still cross-checked numerically in the tests.

#pragma once

#include <string>

#include "src/rational/polynomial.hpp"
#include "src/rational/subterm_pool.hpp"

namespace tml {

/// num / den with den not identically zero, in pooled factored form.
class RationalFunction {
 public:
  /// Zero.
  RationalFunction() = default;

  /// Constant.
  explicit RationalFunction(double constant) : coeff_(constant) {}

  /// Polynomial (denominator 1).
  explicit RationalFunction(Polynomial p);

  RationalFunction(Polynomial num, Polynomial den);

  /// The rational function consisting of just the variable `var`.
  static RationalFunction variable(Var var) {
    return RationalFunction(Polynomial::variable(var));
  }

  /// Expanded numerator (coefficient folded in), materialized lazily.
  const Polynomial& numerator() const;
  /// Expanded denominator, materialized lazily (1 when fully cancelled).
  const Polynomial& denominator() const;

  bool is_zero() const { return coeff_ == 0.0; }
  bool is_constant() const {
    return num_factors_.empty() && den_factors_.empty();
  }
  double constant_value() const;

  RationalFunction operator+(const RationalFunction& other) const;
  RationalFunction operator-(const RationalFunction& other) const;
  RationalFunction operator*(const RationalFunction& other) const;
  RationalFunction operator/(const RationalFunction& other) const;
  RationalFunction operator-() const;
  RationalFunction& operator+=(const RationalFunction& other);
  RationalFunction& operator-=(const RationalFunction& other);
  RationalFunction& operator*=(const RationalFunction& other);
  RationalFunction& operator/=(const RationalFunction& other);

  RationalFunction operator*(double scalar) const;

  /// Multiplicative inverse (factor lists swapped); throws on zero.
  RationalFunction inverse() const;

  /// Partial derivative, built term-by-term from the factored product rule
  /// so the result's denominator stays factored.
  RationalFunction derivative(Var var) const;

  /// Evaluates at `values` (indexed by variable id) by walking the factor
  /// lists. Throws NumericError if the denominator vanishes at the point.
  double evaluate(std::span<const double> values) const;

  /// Gradient with respect to the listed variables via the numeric product
  /// rule over factors (no symbolic expansion, no division through factors
  /// that may vanish individually).
  std::vector<double> evaluate_gradient(std::span<const Var> vars,
                                        std::span<const double> values) const;

  /// Sorted list of variables occurring in any factor.
  std::vector<Var> variables() const;

  /// Max total degree over the factored numerator/denominator products.
  std::uint32_t degree() const;

  /// Number of factors across both lists (counting multiplicity) — the
  /// cheap complexity measure elimination statistics track.
  std::size_t num_factors() const;

  /// Σ per-factor expanded term counts — complexity without expansion.
  std::size_t factored_terms() const;

  std::string to_string(const std::function<std::string(Var)>& name_of) const;

  /// Structural equality of the factored representation (same pool handles,
  /// exponents and scalar up to tolerance). Equal rational functions with
  /// different representations may compare unequal (no full GCD); tests use
  /// numeric comparison for semantic equality.
  bool operator==(const RationalFunction& other) const;

 private:
  struct Factor {
    PolyHandle poly;
    std::uint32_t exp = 1;
  };
  using Factors = std::vector<Factor>;

  /// Splits `p` into scalar · monomial-variable factors · interned core,
  /// appending factors to `out` (which must be empty). Returns the scalar
  /// (0 for the zero polynomial).
  static double factorize(Polynomial p, Factors& out);
  static void sort_and_merge(Factors& factors);
  static Factors merge(const Factors& a, const Factors& b);
  static void cancel_common(Factors& num, Factors& den);
  static void split_common(const Factors& a, const Factors& b,
                           Factors& common, Factors& a_extra,
                           Factors& b_extra);
  static Polynomial expand(double coeff, const Factors& factors);
  static bool factors_equal(const Factors& a, const Factors& b);

  /// Builds coeff·factors(num_poly) / den with cancellation; seeds the
  /// numerator facade cache when no cancellation invalidated it.
  static RationalFunction from_parts(Polynomial num_poly, Factors den);

  double coeff_ = 0.0;  ///< 0 ⇔ the zero function (factor lists empty)
  Factors num_factors_;
  Factors den_factors_;
  // Lazily expanded facade views; immutable once set.
  mutable std::shared_ptr<const Polynomial> num_cache_;
  mutable std::shared_ptr<const Polynomial> den_cache_;
};

inline RationalFunction operator*(double scalar, const RationalFunction& f) {
  return f * scalar;
}

/// 1 - f, a combination state elimination uses constantly.
inline RationalFunction one_minus(const RationalFunction& f) {
  return RationalFunction(1.0) - f;
}

}  // namespace tml
