// Sparse multivariate polynomials over double coefficients.
//
// This is the algebraic substrate for parametric model checking
// (src/parametric): transition probabilities of a parametric Markov chain
// are polynomials/rational functions in the repair variables, and state
// elimination manipulates them symbolically.
//
// Variables are plain integer ids; a `VariablePool` (see variable.hpp) maps
// ids to human-readable names. Monomials are sorted (var, exponent) lists;
// polynomials are ordered maps from monomial to coefficient, which gives a
// canonical form suitable for structural comparison.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

/// Identifier of a polynomial variable. Ids are dense and allocated by
/// VariablePool.
using Var = std::uint32_t;

/// A product of variables raised to positive integer powers, e.g. x^2·y.
/// Factors are kept sorted by variable id; exponents are strictly positive
/// (a zero exponent factor is removed). The empty monomial is the constant 1.
class Monomial {
 public:
  Monomial() = default;

  /// Single-variable monomial var^exponent.
  explicit Monomial(Var var, std::uint32_t exponent = 1);

  /// Builds from (var, exponent) factors; merges duplicates, drops zeros.
  static Monomial from_factors(
      std::vector<std::pair<Var, std::uint32_t>> factors);

  bool is_constant() const { return factors_.empty(); }
  std::uint32_t degree() const;
  std::uint32_t exponent_of(Var var) const;
  const std::vector<std::pair<Var, std::uint32_t>>& factors() const {
    return factors_;
  }

  Monomial operator*(const Monomial& other) const;

  /// Componentwise min of exponents (used for content extraction).
  Monomial gcd(const Monomial& other) const;

  /// Divides this monomial by `other`; requires divisibility.
  Monomial divide(const Monomial& other) const;
  bool divisible_by(const Monomial& other) const;

  double evaluate(std::span<const double> values) const;

  auto operator<=>(const Monomial& other) const = default;

 private:
  std::vector<std::pair<Var, std::uint32_t>> factors_;
};

/// Sparse multivariate polynomial with double coefficients.
///
/// Canonical form: no zero coefficients are stored (after `prune`), terms
/// ordered by monomial. Arithmetic is exact up to floating point; tiny
/// coefficients below `kEpsilon` relative to the largest are pruned to keep
/// state elimination from accumulating numeric dust.
class Polynomial {
 public:
  /// Relative threshold below which coefficients are considered zero.
  static constexpr double kEpsilon = 1e-12;

  Polynomial() = default;

  /// Constant polynomial.
  explicit Polynomial(double constant);

  /// The polynomial `var` (degree-1 single variable).
  static Polynomial variable(Var var);

  /// c · m as a polynomial.
  static Polynomial term(double coefficient, Monomial monomial);

  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;

  /// Value of a constant polynomial; throws if not constant.
  double constant_value() const;

  /// Coefficient of `monomial` (0 if absent).
  double coefficient(const Monomial& monomial) const;

  /// Total degree (max over terms); 0 for constants and the zero polynomial.
  std::uint32_t degree() const;

  std::size_t num_terms() const { return terms_.size(); }
  const std::map<Monomial, double>& terms() const { return terms_; }

  /// Sorted list of variables that actually occur.
  std::vector<Var> variables() const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator-() const;
  Polynomial& operator+=(const Polynomial& other);
  Polynomial& operator-=(const Polynomial& other);
  Polynomial& operator*=(const Polynomial& other);

  Polynomial operator*(double scalar) const;
  Polynomial operator/(double scalar) const;

  Polynomial pow(std::uint32_t exponent) const;

  /// Partial derivative with respect to `var`.
  Polynomial derivative(Var var) const;

  /// Evaluates at the point `values`, indexed by variable id. Every variable
  /// occurring in the polynomial must have an entry.
  double evaluate(std::span<const double> values) const;

  /// Evaluates ∂p/∂var at `values` without materializing the derivative
  /// polynomial (the factored gradient path calls this per factor per
  /// variable).
  double evaluate_derivative(Var var, std::span<const double> values) const;

  /// Substitutes `replacement` for `var`.
  Polynomial substitute(Var var, const Polynomial& replacement) const;

  /// Greatest common monomial factor of all terms (the "monomial content").
  /// Returns the constant monomial for the zero polynomial.
  Monomial monomial_content() const;

  /// Divides every term by `monomial`; requires divisibility.
  Polynomial divide_by_monomial(const Monomial& monomial) const;

  /// Largest absolute coefficient (0 for the zero polynomial).
  double max_abs_coefficient() const;

  /// True if `this == scale * other` for the given scale (within tolerance).
  bool proportional_to(const Polynomial& other, double scale,
                       double tol = 1e-9) const;

  /// Renders using the given variable-name lookup, e.g. "2.5*p^2*q - 1".
  std::string to_string(
      const std::function<std::string(Var)>& name_of) const;

  bool operator==(const Polynomial& other) const;

 private:
  void add_term(const Monomial& m, double c);
  void prune();

  std::map<Monomial, double> terms_;
};

inline Polynomial operator*(double scalar, const Polynomial& p) {
  return p * scalar;
}

}  // namespace tml
