// Variable pool: maps symbolic parameter names to dense Var ids.
//
// Parametric models, rational functions and the optimizer all refer to
// parameters by id; the pool is the single source of truth for names and
// gives the evaluation order (values are vectors indexed by id).

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/error.hpp"
#include "src/rational/polynomial.hpp"

namespace tml {

/// Registry of named parameters. Ids are dense, starting at 0, in creation
/// order.
class VariablePool {
 public:
  /// Registers (or looks up) a variable by name and returns its id.
  Var declare(const std::string& name);

  /// Looks up an existing variable; throws if unknown.
  Var id_of(const std::string& name) const;

  bool contains(const std::string& name) const {
    return by_name_.find(name) != by_name_.end();
  }

  const std::string& name_of(Var var) const;

  std::size_t size() const { return names_.size(); }

  /// All names in id order.
  const std::vector<std::string>& names() const { return names_; }

  /// Convenience: a name-lookup closure for Polynomial::to_string.
  std::function<std::string(Var)> namer() const {
    return [this](Var v) { return name_of(v); };
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Var> by_name_;
};

inline Var VariablePool::declare(const std::string& name) {
  TML_REQUIRE(!name.empty(), "VariablePool: empty variable name");
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const Var id = static_cast<Var>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

inline Var VariablePool::id_of(const std::string& name) const {
  auto it = by_name_.find(name);
  TML_REQUIRE(it != by_name_.end(), "VariablePool: unknown variable " << name);
  return it->second;
}

inline const std::string& VariablePool::name_of(Var var) const {
  TML_REQUIRE(var < names_.size(), "VariablePool: unknown variable id " << var);
  return names_[var];
}

}  // namespace tml
