#include "src/rational/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tml {

// ---------------------------------------------------------------------------
// Monomial

Monomial::Monomial(Var var, std::uint32_t exponent) {
  if (exponent > 0) factors_.emplace_back(var, exponent);
}

Monomial Monomial::from_factors(
    std::vector<std::pair<Var, std::uint32_t>> factors) {
  std::sort(factors.begin(), factors.end());
  Monomial m;
  for (const auto& [var, exp] : factors) {
    if (exp == 0) continue;
    if (!m.factors_.empty() && m.factors_.back().first == var) {
      m.factors_.back().second += exp;
    } else {
      m.factors_.emplace_back(var, exp);
    }
  }
  return m;
}

std::uint32_t Monomial::degree() const {
  std::uint32_t d = 0;
  for (const auto& [var, exp] : factors_) d += exp;
  return d;
}

std::uint32_t Monomial::exponent_of(Var var) const {
  for (const auto& [v, exp] : factors_) {
    if (v == var) return exp;
  }
  return 0;
}

Monomial Monomial::operator*(const Monomial& other) const {
  Monomial out;
  auto it = factors_.begin();
  auto jt = other.factors_.begin();
  while (it != factors_.end() || jt != other.factors_.end()) {
    if (jt == other.factors_.end() ||
        (it != factors_.end() && it->first < jt->first)) {
      out.factors_.push_back(*it++);
    } else if (it == factors_.end() || jt->first < it->first) {
      out.factors_.push_back(*jt++);
    } else {
      out.factors_.emplace_back(it->first, it->second + jt->second);
      ++it;
      ++jt;
    }
  }
  return out;
}

Monomial Monomial::gcd(const Monomial& other) const {
  Monomial out;
  for (const auto& [var, exp] : factors_) {
    const std::uint32_t e = std::min(exp, other.exponent_of(var));
    if (e > 0) out.factors_.emplace_back(var, e);
  }
  return out;
}

bool Monomial::divisible_by(const Monomial& other) const {
  for (const auto& [var, exp] : other.factors_) {
    if (exponent_of(var) < exp) return false;
  }
  return true;
}

Monomial Monomial::divide(const Monomial& other) const {
  TML_REQUIRE(divisible_by(other), "Monomial::divide: not divisible");
  Monomial out;
  for (const auto& [var, exp] : factors_) {
    const std::uint32_t e = exp - other.exponent_of(var);
    if (e > 0) out.factors_.emplace_back(var, e);
  }
  return out;
}

double Monomial::evaluate(std::span<const double> values) const {
  double out = 1.0;
  for (const auto& [var, exp] : factors_) {
    TML_REQUIRE(var < values.size(),
                "Monomial::evaluate: missing value for variable " << var);
    double base = values[var];
    for (std::uint32_t i = 0; i < exp; ++i) out *= base;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Polynomial

Polynomial::Polynomial(double constant) {
  if (constant != 0.0) terms_.emplace(Monomial{}, constant);
}

Polynomial Polynomial::variable(Var var) {
  Polynomial p;
  p.terms_.emplace(Monomial(var), 1.0);
  return p;
}

Polynomial Polynomial::term(double coefficient, Monomial monomial) {
  Polynomial p;
  if (coefficient != 0.0) p.terms_.emplace(std::move(monomial), coefficient);
  return p;
}

bool Polynomial::is_constant() const {
  return terms_.empty() ||
         (terms_.size() == 1 && terms_.begin()->first.is_constant());
}

double Polynomial::constant_value() const {
  TML_REQUIRE(is_constant(), "Polynomial::constant_value: not constant");
  return terms_.empty() ? 0.0 : terms_.begin()->second;
}

double Polynomial::coefficient(const Monomial& monomial) const {
  auto it = terms_.find(monomial);
  return it == terms_.end() ? 0.0 : it->second;
}

std::uint32_t Polynomial::degree() const {
  std::uint32_t d = 0;
  for (const auto& [m, c] : terms_) d = std::max(d, m.degree());
  return d;
}

std::vector<Var> Polynomial::variables() const {
  std::vector<Var> vars;
  for (const auto& [m, c] : terms_) {
    for (const auto& [var, exp] : m.factors()) vars.push_back(var);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

void Polynomial::add_term(const Monomial& m, double c) {
  auto [it, inserted] = terms_.emplace(m, c);
  if (!inserted) it->second += c;
}

void Polynomial::prune() {
  const double scale = std::max(1.0, max_abs_coefficient());
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::abs(it->second) <= kEpsilon * scale) {
      it = terms_.erase(it);
    } else {
      ++it;
    }
  }
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  Polynomial out = *this;
  out += other;
  return out;
}

Polynomial& Polynomial::operator+=(const Polynomial& other) {
  for (const auto& [m, c] : other.terms_) add_term(m, c);
  prune();
  return *this;
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  Polynomial out = *this;
  out -= other;
  return out;
}

Polynomial& Polynomial::operator-=(const Polynomial& other) {
  for (const auto& [m, c] : other.terms_) add_term(m, -c);
  prune();
  return *this;
}

Polynomial Polynomial::operator-() const {
  Polynomial out;
  for (const auto& [m, c] : terms_) out.terms_.emplace(m, -c);
  return out;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  Polynomial out;
  for (const auto& [m1, c1] : terms_) {
    for (const auto& [m2, c2] : other.terms_) {
      out.add_term(m1 * m2, c1 * c2);
    }
  }
  out.prune();
  return out;
}

Polynomial& Polynomial::operator*=(const Polynomial& other) {
  *this = *this * other;
  return *this;
}

Polynomial Polynomial::operator*(double scalar) const {
  Polynomial out;
  if (scalar == 0.0) return out;
  for (const auto& [m, c] : terms_) out.terms_.emplace(m, c * scalar);
  out.prune();
  return out;
}

Polynomial Polynomial::operator/(double scalar) const {
  TML_REQUIRE(scalar != 0.0, "Polynomial: division by zero scalar");
  return *this * (1.0 / scalar);
}

Polynomial Polynomial::pow(std::uint32_t exponent) const {
  Polynomial out(1.0);
  Polynomial base = *this;
  std::uint32_t e = exponent;
  while (e > 0) {
    if (e & 1U) out *= base;
    e >>= 1U;
    if (e > 0) base *= base;
  }
  return out;
}

Polynomial Polynomial::derivative(Var var) const {
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    const std::uint32_t exp = m.exponent_of(var);
    if (exp == 0) continue;
    std::vector<std::pair<Var, std::uint32_t>> factors = m.factors();
    for (auto& [v, e] : factors) {
      if (v == var) e -= 1;
    }
    out.add_term(Monomial::from_factors(std::move(factors)),
                 c * static_cast<double>(exp));
  }
  out.prune();
  return out;
}

double Polynomial::evaluate(std::span<const double> values) const {
  double out = 0.0;
  for (const auto& [m, c] : terms_) out += c * m.evaluate(values);
  return out;
}

double Polynomial::evaluate_derivative(Var var,
                                       std::span<const double> values) const {
  double out = 0.0;
  for (const auto& [m, c] : terms_) {
    const std::uint32_t exp = m.exponent_of(var);
    if (exp == 0) continue;
    double t = c * static_cast<double>(exp);
    for (const auto& [v, e] : m.factors()) {
      TML_REQUIRE(v < values.size(),
                  "Polynomial::evaluate_derivative: missing value for "
                  "variable " << v);
      const std::uint32_t ee = v == var ? e - 1 : e;
      for (std::uint32_t i = 0; i < ee; ++i) t *= values[v];
    }
    out += t;
  }
  return out;
}

Polynomial Polynomial::substitute(Var var, const Polynomial& replacement) const {
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    const std::uint32_t exp = m.exponent_of(var);
    if (exp == 0) {
      out.add_term(m, c);
      continue;
    }
    std::vector<std::pair<Var, std::uint32_t>> rest;
    for (const auto& [v, e] : m.factors()) {
      if (v != var) rest.emplace_back(v, e);
    }
    Polynomial contribution =
        Polynomial::term(c, Monomial::from_factors(std::move(rest))) *
        replacement.pow(exp);
    out += contribution;
  }
  out.prune();
  return out;
}

Monomial Polynomial::monomial_content() const {
  if (terms_.empty()) return Monomial{};
  auto it = terms_.begin();
  Monomial content = it->first;
  for (++it; it != terms_.end(); ++it) {
    content = content.gcd(it->first);
    if (content.is_constant()) break;
  }
  return content;
}

Polynomial Polynomial::divide_by_monomial(const Monomial& monomial) const {
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    out.terms_.emplace(m.divide(monomial), c);
  }
  return out;
}

double Polynomial::max_abs_coefficient() const {
  double m = 0.0;
  for (const auto& [mono, c] : terms_) m = std::max(m, std::abs(c));
  return m;
}

bool Polynomial::proportional_to(const Polynomial& other, double scale,
                                 double tol) const {
  if (terms_.size() != other.terms_.size()) return false;
  auto it = terms_.begin();
  auto jt = other.terms_.begin();
  const double ref = std::max(1.0, max_abs_coefficient());
  for (; it != terms_.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    if (std::abs(it->second - scale * jt->second) > tol * ref) return false;
  }
  return true;
}

std::string Polynomial::to_string(
    const std::function<std::string(Var)>& name_of) const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [m, c] : terms_) {
    double coeff = c;
    if (first) {
      if (coeff < 0) {
        os << "-";
        coeff = -coeff;
      }
    } else {
      os << (coeff < 0 ? " - " : " + ");
      coeff = std::abs(coeff);
    }
    const bool unit = std::abs(coeff - 1.0) < 1e-15 && !m.is_constant();
    if (!unit) os << coeff;
    bool emitted = !unit;
    for (const auto& [var, exp] : m.factors()) {
      if (emitted) os << "*";
      os << name_of(var);
      if (exp > 1) os << "^" << exp;
      emitted = true;
    }
    first = false;
  }
  return os.str();
}

bool Polynomial::operator==(const Polynomial& other) const {
  return proportional_to(other, 1.0, 1e-12);
}

}  // namespace tml
