#include "src/rational/subterm_pool.hpp"

#include <cmath>

namespace tml {

namespace {

/// Coefficient-blind structure hash: the monomial multiset determines the
/// bucket, so any two proportional polynomials collide and are then
/// confirmed (or not) by the tolerance-based comparison.
std::uint64_t structure_hash(const Polynomial& p) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(p.num_terms());
  for (const auto& [monomial, coeff] : p.terms()) {
    for (const auto& [var, exp] : monomial.factors()) {
      mix(var);
      mix(exp);
    }
    mix(0xffULL);  // term separator
  }
  return h;
}

}  // namespace

SubtermPool& SubtermPool::instance() {
  static SubtermPool* pool = new SubtermPool();  // never destroyed: handles
  return *pool;  // may outlive static-destruction order
}

SubtermPool::Interned SubtermPool::intern(const Polynomial& p) {
  TML_ASSERT(!p.is_zero() && !p.is_constant(),
             "SubtermPool::intern: constants belong in the scalar coefficient");
  // Normalize scale: leading term positive, largest |coefficient| == 1.
  const double lead = p.terms().begin()->second;
  const double scale = (lead < 0.0 ? -1.0 : 1.0) * p.max_abs_coefficient();
  const Polynomial q = p / scale;
  const std::uint64_t h = structure_hash(q);

  const std::scoped_lock lock(mutex_);
  auto& bucket = buckets_[h];
  for (std::size_t i = 0; i < bucket.size();) {
    PolyHandle candidate = bucket[i].lock();
    if (candidate == nullptr) {
      // Swept lazily: swap-erase the expired slot and re-examine it.
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
      continue;
    }
    if (candidate->poly == q) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Interned{std::move(candidate), scale};
    }
    ++i;
  }
  auto entry = std::make_shared<PooledPolynomial>(
      PooledPolynomial{q, next_id_++, q.degree()});
  bucket.emplace_back(entry);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return Interned{std::move(entry), scale};
}

std::size_t SubtermPool::live_entries() const {
  const std::scoped_lock lock(mutex_);
  std::size_t live = 0;
  for (const auto& [hash, bucket] : buckets_) {
    for (const auto& weak : bucket) {
      if (!weak.expired()) ++live;
    }
  }
  return live;
}

}  // namespace tml
