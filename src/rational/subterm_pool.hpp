// Hash-consed pool of polynomial subterms for the factored rational core.
//
// State elimination multiplies and divides thousands of rational functions
// whose numerators and denominators are built from the same few pivot
// polynomials (1 − P(s,s) of each eliminated state). Interning every
// non-constant polynomial in a process-wide pool gives
//
//  * O(1) structural identity — factor cancellation in products and
//    quotients compares pool handles instead of polynomial contents;
//  * one stored copy per distinct subterm, however many factor lists
//    reference it;
//  * scale normalization (largest |coefficient| = 1, positive leading
//    term), so proportional polynomials intern to the SAME entry and the
//    classic (2x+2)/(x+1) → 2 collapse falls out of factor cancellation.
//
// Entries are held by weak_ptr: the pool never keeps a polynomial alive on
// its own, so long repair pipelines do not accumulate dead subterms.
// Hit/miss counters are always-on relaxed atomics; EliminationStats
// snapshots them around a run to report per-run pool effectiveness.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/rational/polynomial.hpp"

namespace tml {

/// A pool entry: the scale-normalized polynomial plus the creation-ordered
/// id factor lists sort and compare by. Immutable after interning.
struct PooledPolynomial {
  Polynomial poly;
  std::uint64_t id = 0;
  std::uint32_t degree = 0;
};

using PolyHandle = std::shared_ptr<const PooledPolynomial>;

class SubtermPool {
 public:
  struct Interned {
    PolyHandle handle;
    double scale = 1.0;  ///< input == scale · handle->poly
  };

  /// The process-wide pool (intern() is mutex-guarded and thread-safe).
  static SubtermPool& instance();

  /// Interns a non-constant, non-zero polynomial. The stored representative
  /// is normalized so its largest |coefficient| is 1 and its leading term is
  /// positive; `scale` recovers the input. Two inputs that are proportional
  /// (within Polynomial's comparison tolerance) share one handle.
  Interned intern(const Polynomial& p);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Number of still-referenced entries (linear scan; for tests/benches).
  std::size_t live_entries() const;

 private:
  SubtermPool() = default;

  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  // Buckets keyed by a coefficient-blind structure hash, so proportional
  // polynomials land in the same bucket; candidates are confirmed with the
  // tolerance-based Polynomial comparison. Expired entries are swept from a
  // bucket as it is scanned.
  std::unordered_map<std::uint64_t,
                     std::vector<std::weak_ptr<const PooledPolynomial>>>
      buckets_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace tml
