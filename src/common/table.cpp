#include "src/common/table.hpp"

#include <iomanip>
#include <sstream>

#include "src/common/error.hpp"

namespace tml {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TML_REQUIRE(!header_.empty(), "Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> row) {
  TML_REQUIRE(row.size() == header_.size(),
              "Table: row has " << row.size() << " cells, expected "
                                << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double value, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace tml
