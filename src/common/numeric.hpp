// Locale-independent validated number parsing.
//
// `std::strtod` honours the process's LC_NUMERIC locale: under a
// comma-decimal locale (de_DE, fr_FR, ...) it parses "0.5" as 0 — silently,
// because the ".5" is just unconsumed trailing input to the caller. Every
// numeric surface of this library is locale-fixed dotted-decimal text
// (PRISM models, PCTL bounds, trajectory weights, TML_FAULT specs, wire
// protocol payloads), so they all parse through these `std::from_chars`
// wrappers, which the standard guarantees use '.' as the decimal point
// regardless of the global or per-thread locale.
//
// The wrappers also centralize validation policy: `parse_finite_double` is
// the "validated number" path for model quantities — it rejects the textual
// forms strtod and from_chars both accept but a stochastic model never
// contains ("nan", "inf", overflowing literals) before they can poison the
// numeric engines downstream.

#pragma once

#include <charconv>
#include <cmath>
#include <cstddef>
#include <string_view>

namespace tml {

/// Parses a dotted-decimal floating-point literal at the start of `text`
/// ([+-]? digits [. digits]? ([eE][+-]?digits)?, plus the "inf"/"nan"
/// spellings). Returns the number of characters consumed, 0 when `text`
/// does not start with a valid number (`*out` is untouched then). Unlike
/// strtod: locale-independent, no leading-whitespace skip, no hex floats.
/// Out-of-range literals ("1e999") fail rather than saturating.
inline std::size_t parse_double(std::string_view text, double* out) {
  // std::from_chars rejects a leading '+', which the strtod-based callers
  // this replaces historically accepted; consume it explicitly.
  const std::size_t plus = (!text.empty() && text.front() == '+') ? 1 : 0;
  const char* begin = text.data() + plus;
  const char* end = text.data() + text.size();
  double value = 0.0;
  const std::from_chars_result result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{} || result.ptr == begin) return 0;
  *out = value;
  return plus + static_cast<std::size_t>(result.ptr - begin);
}

/// `parse_double` restricted to finite values: "nan", "inf" and anything
/// else that does not land on a finite double fail (returns 0). The
/// validated-number path for probabilities, rewards and weights.
inline std::size_t parse_finite_double(std::string_view text, double* out) {
  double value = 0.0;
  const std::size_t consumed = parse_double(text, &value);
  if (consumed == 0 || !std::isfinite(value)) return 0;
  *out = value;
  return consumed;
}

}  // namespace tml
