// Word-packed bitset used for state sets.
//
// `std::vector<bool>` pays a proxy-object dereference per bit and gives the
// optimizer nothing to vectorize; the qualitative graph closures and the
// PCTL boolean connectives are all bulk bit operations, so `StateSet` is
// backed by this 64-bit-word bitset instead. The interface keeps the small
// `vector<bool>` surface the codebase actually uses — size/value
// construction, `operator[]` read and assignment, equality — and adds
// word-wise set algebra (complement, union, intersection, count).
//
// Invariant: bits past `size()` in the last word are always zero, so
// word-wise equality, counting and hashing are exact.

#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

class Bitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  Bitset() = default;
  explicit Bitset(std::size_t size, bool value = false)
      : size_(size),
        words_(num_words(size), value ? ~Word{0} : Word{0}) {
    trim();
  }
  Bitset(std::initializer_list<bool> bits) : Bitset(bits.size()) {
    std::size_t i = 0;
    for (bool b : bits) {
      if (b) set(i);
      ++i;
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t i) const {
    TML_ASSERT(i < size_, "Bitset: index " << i << " out of range " << size_);
    return (words_[i >> 6] >> (i & 63)) & Word{1};
  }
  void set(std::size_t i, bool value = true) {
    TML_ASSERT(i < size_, "Bitset: index " << i << " out of range " << size_);
    const Word mask = Word{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Writable single-bit reference, so `set[i] = flag` keeps working.
  class Reference {
   public:
    Reference(Bitset& owner, std::size_t index) : owner_(owner), index_(index) {}
    operator bool() const { return owner_.test(index_); }
    Reference& operator=(bool value) {
      owner_.set(index_, value);
      return *this;
    }
    Reference& operator=(const Reference& other) { return *this = bool(other); }

   private:
    Bitset& owner_;
    std::size_t index_;
  };

  bool operator[](std::size_t i) const { return test(i); }
  Reference operator[](std::size_t i) { return Reference(*this, i); }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  friend bool operator!=(const Bitset& a, const Bitset& b) { return !(a == b); }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t n = 0;
    for (Word w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }
  /// True iff no bit is set.
  bool none() const {
    for (Word w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  bool any() const { return !none(); }

  // -- word-wise set algebra (operands must have equal size) ---------------

  Bitset& operator|=(const Bitset& other) {
    TML_REQUIRE(size_ == other.size_, "Bitset |=: size mismatch");
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }
  Bitset& operator&=(const Bitset& other) {
    TML_REQUIRE(size_ == other.size_, "Bitset &=: size mismatch");
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
  }
  /// Flips every bit in place.
  Bitset& flip() {
    for (Word& w : words_) w = ~w;
    trim();
    return *this;
  }

  const std::vector<Word>& words() const { return words_; }

  friend std::ostream& operator<<(std::ostream& os, const Bitset& set) {
    os << '{';
    bool first = true;
    for (std::size_t i = 0; i < set.size_; ++i) {
      if (!set.test(i)) continue;
      if (!first) os << ',';
      os << i;
      first = false;
    }
    return os << '}';
  }

 private:
  static std::size_t num_words(std::size_t bits) { return (bits + 63) / 64; }

  /// Zeroes the bits past size() in the last word (class invariant).
  void trim() {
    if (size_ & 63) words_.back() &= (Word{1} << (size_ & 63)) - 1;
  }

  std::size_t size_ = 0;
  std::vector<Word> words_;
};

/// Complement of a bit set.
inline Bitset complement(const Bitset& set) {
  Bitset out = set;
  out.flip();
  return out;
}

/// Union / intersection helpers.
inline Bitset set_union(const Bitset& a, const Bitset& b) {
  TML_REQUIRE(a.size() == b.size(), "set_union: size mismatch");
  Bitset out = a;
  out |= b;
  return out;
}

inline Bitset set_intersection(const Bitset& a, const Bitset& b) {
  TML_REQUIRE(a.size() == b.size(), "set_intersection: size mismatch");
  Bitset out = a;
  out &= b;
  return out;
}

/// Number of true bits.
inline std::size_t count(const Bitset& set) { return set.count(); }

/// True if no bit is set.
inline bool empty(const Bitset& set) { return set.none(); }

}  // namespace tml
