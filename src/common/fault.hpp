// Deterministic fault injection for robustness tests.
//
// Engines expose named *fault sites* at the places a numeric failure could
// plausibly originate — solver update sweeps, NLP evaluations, elimination
// pivots, SMC sampling, the budget clock — through three hooks:
//
//  * `poison(site, v)` — returns `v`, or NaN/Inf when the site is armed;
//  * `fire(site)`      — true when an armed site should force its failure
//                        branch (singular pivot, non-convergence, …);
//  * `clock_skew_ns()` — nanoseconds to add to the budget clock (site
//                        `budget.clock`), driving deadline paths without
//                        real waiting.
//
// Disabled cost. Every hook starts with the inlined relaxed load of one
// global flag (`any_armed()`, same pattern as stats::enabled()); with no
// fault armed each site is a load + predictable branch, and the slow paths
// are never entered. Production binaries pay nothing else.
//
// Wire-level sites. The serving and journaling layers expose I/O fault
// sites through a fourth hook, `wire(site)`, which returns the armed
// *wire action* for this call:
//
//  * `short`      — the caller must truncate the transfer (read/write at
//                   most one byte this call), exercising reassembly and
//                   short-write loops;
//  * `drop`       — the caller must simulate a peer disconnect (EOF on
//                   read, EPIPE on write, closed socket on accept);
//  * `delay=<ns>` — the caller sleeps that long before the operation,
//                   driving slow-loris and I/O-deadline paths without a
//                   slow network.
//
// Arming. Either programmatically (tests: `fault::arm("opt.eval", "nan")`,
// `fault::disarm_all()`), or via the TML_FAULT environment variable parsed
// before main runs:
//
//   TML_FAULT=checker.sweep:nan            poison with NaN on every call
//   TML_FAULT=opt.eval:inf@8               first 8 calls clean, then Inf
//   TML_FAULT=parametric.pivot:on          force the failure branch
//   TML_FAULT=budget.clock:skew=86400e9    skew the budget clock (ns)
//   TML_FAULT=serve.write:short            every send truncates to 1 byte
//   TML_FAULT=serve.read:drop@4            4 clean reads, then disconnect
//   TML_FAULT=serve.parse:delay=5e6        5 ms stall before each parse
//   TML_FAULT=smc.sample:on,irl.gradient:nan     comma-separated list
//
// Determinism: sites count their calls with an atomic counter, so an
// `@after` trigger fires at the same call index on every run of a
// single-threaded loop; hit counts are queryable via `hits(site)`.
//
// Known sites (grep for the string literals): checker.sweep,
// checker.converge, solver.sweep, opt.eval, parametric.pivot, smc.sample,
// irl.gradient, budget.clock; wire-level: serve.accept, serve.read,
// serve.write, serve.parse, session.journal_write.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace tml {
namespace fault {

/// Wire action an I/O fault site demands for the current call (see the
/// header comment). `kNone` when the site is disarmed or not yet due.
struct WireAction {
  enum class Kind : std::uint8_t { kNone = 0, kShort, kDrop, kDelay };
  Kind kind = Kind::kNone;
  std::int64_t delay_ns = 0;  ///< kDelay payload
};

namespace detail {
extern std::atomic<bool> g_any_armed;
double poison_slow(const char* site, double v);
bool fire_slow(const char* site);
std::int64_t clock_skew_slow();
WireAction wire_slow(const char* site);
}  // namespace detail

/// True when at least one fault site is armed. Inline relaxed load — the
/// whole cost of every hook in a clean process.
inline bool any_armed() {
  return detail::g_any_armed.load(std::memory_order_relaxed);
}

/// Returns `v` unchanged, or a poisoned NaN/Inf when `site` is armed and
/// due. Use at value-update checkpoints: `delta = fault::poison("checker.sweep", delta)`.
inline double poison(const char* site, double v) {
  return any_armed() ? detail::poison_slow(site, v) : v;
}

/// True when `site` is armed (mode `on`) and due — the caller takes its
/// forced-failure branch.
inline bool fire(const char* site) {
  return any_armed() && detail::fire_slow(site);
}

/// Skew (ns) to add to the budget clock; 0 unless `budget.clock` is armed.
inline std::int64_t clock_skew_ns() {
  return any_armed() ? detail::clock_skew_slow() : 0;
}

/// Wire action for an I/O site (`serve.read`, `serve.write`, `serve.accept`,
/// `serve.parse`, `session.journal_write`): short transfer, simulated
/// disconnect, or an injected delay. kNone when disarmed.
inline WireAction wire(const char* site) {
  return any_armed() ? detail::wire_slow(site) : WireAction{};
}

/// Arms `site` with `spec` (same grammar as TML_FAULT's right-hand side:
/// `nan`, `inf`, `on`, `skew=<ns>`, `short`, `drop`, `delay=<ns>`, each
/// optionally `@<after>`). Throws tml::Error on a malformed spec.
void arm(const std::string& site, const std::string& spec);

/// Disarms one site / all sites (tests call disarm_all() in SetUp so an
/// env-armed battery run does not leak into targeted cases).
void disarm(const std::string& site);
void disarm_all();

/// How many times `site` actually injected (post-`@after` activations).
std::uint64_t hits(const std::string& site);

/// Parses a full TML_FAULT-style spec list ("a:nan,b:on@3"). Called at
/// static init with the environment value; exposed for tests.
void arm_from_spec(const std::string& spec_list);

}  // namespace fault
}  // namespace tml
