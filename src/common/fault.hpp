// Deterministic fault injection for robustness tests.
//
// Engines expose named *fault sites* at the places a numeric failure could
// plausibly originate — solver update sweeps, NLP evaluations, elimination
// pivots, SMC sampling, the budget clock — through three hooks:
//
//  * `poison(site, v)` — returns `v`, or NaN/Inf when the site is armed;
//  * `fire(site)`      — true when an armed site should force its failure
//                        branch (singular pivot, non-convergence, …);
//  * `clock_skew_ns()` — nanoseconds to add to the budget clock (site
//                        `budget.clock`), driving deadline paths without
//                        real waiting.
//
// Disabled cost. Every hook starts with the inlined relaxed load of one
// global flag (`any_armed()`, same pattern as stats::enabled()); with no
// fault armed each site is a load + predictable branch, and the slow paths
// are never entered. Production binaries pay nothing else.
//
// Arming. Either programmatically (tests: `fault::arm("opt.eval", "nan")`,
// `fault::disarm_all()`), or via the TML_FAULT environment variable parsed
// before main runs:
//
//   TML_FAULT=checker.sweep:nan            poison with NaN on every call
//   TML_FAULT=opt.eval:inf@8               first 8 calls clean, then Inf
//   TML_FAULT=parametric.pivot:on          force the failure branch
//   TML_FAULT=budget.clock:skew=86400e9    skew the budget clock (ns)
//   TML_FAULT=smc.sample:on,irl.gradient:nan     comma-separated list
//
// Determinism: sites count their calls with an atomic counter, so an
// `@after` trigger fires at the same call index on every run of a
// single-threaded loop; hit counts are queryable via `hits(site)`.
//
// Known sites (grep for the string literals): checker.sweep,
// checker.converge, solver.sweep, opt.eval, parametric.pivot, smc.sample,
// irl.gradient, budget.clock.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace tml {
namespace fault {

namespace detail {
extern std::atomic<bool> g_any_armed;
double poison_slow(const char* site, double v);
bool fire_slow(const char* site);
std::int64_t clock_skew_slow();
}  // namespace detail

/// True when at least one fault site is armed. Inline relaxed load — the
/// whole cost of every hook in a clean process.
inline bool any_armed() {
  return detail::g_any_armed.load(std::memory_order_relaxed);
}

/// Returns `v` unchanged, or a poisoned NaN/Inf when `site` is armed and
/// due. Use at value-update checkpoints: `delta = fault::poison("checker.sweep", delta)`.
inline double poison(const char* site, double v) {
  return any_armed() ? detail::poison_slow(site, v) : v;
}

/// True when `site` is armed (mode `on`) and due — the caller takes its
/// forced-failure branch.
inline bool fire(const char* site) {
  return any_armed() && detail::fire_slow(site);
}

/// Skew (ns) to add to the budget clock; 0 unless `budget.clock` is armed.
inline std::int64_t clock_skew_ns() {
  return any_armed() ? detail::clock_skew_slow() : 0;
}

/// Arms `site` with `spec` (same grammar as TML_FAULT's right-hand side:
/// `nan`, `inf`, `on`, `skew=<ns>`, each optionally `@<after>`). Throws
/// tml::Error on a malformed spec.
void arm(const std::string& site, const std::string& spec);

/// Disarms one site / all sites (tests call disarm_all() in SetUp so an
/// env-armed battery run does not leak into targeted cases).
void disarm(const std::string& site);
void disarm_all();

/// How many times `site` actually injected (post-`@after` activations).
std::uint64_t hits(const std::string& site);

/// Parses a full TML_FAULT-style spec list ("a:nan,b:on@3"). Called at
/// static init with the environment value; exposed for tests.
void arm_from_spec(const std::string& spec_list);

}  // namespace fault
}  // namespace tml
