// Shared resource budgets and cooperative cancellation for every engine.
//
// A `Budget` bounds how much work a call may do along three axes:
//
//  * wall-clock — an *absolute* steady_clock deadline (so one budget can be
//    threaded through a pipeline of stages and they all race the same
//    clock; `deadline_in()` is the convenience for "N ms from now");
//  * deterministic work units — `max_iterations` caps the engine's natural
//    outer unit (VI/interval sweeps, SMC shards, eliminated states, NLP
//    outer rounds, IRL gradient steps) and `max_evaluations` caps finer
//    units where an engine has them (NLP objective/constraint
//    evaluations);
//  * cooperative cancellation — a `CancelToken` shared between the caller
//    (who flips it, e.g. from a SIGINT handler) and every loop holding a
//    copy of the budget.
//
// Engines poll through a `BudgetTracker`: `tick()` once per work unit.
// Iteration/evaluation caps and the cancel flag are checked every tick;
// the clock is only read on the first tick and then once every
// `kClockStride` ticks (stats-instrumented as budget.clock_reads), so an
// already-expired deadline is caught before any work and the steady-state
// cost is one relaxed load + integer compare per unit.
//
// Degradation contract. On exhaustion an engine must do one of exactly two
// things — never return garbage, never hang:
//
//  * rich results (SolveResult, SmcResult, IrlResult, SolveOutcome,
//    TrustedLearnerReport) carry `budget_status = kBudgetExhausted` plus
//    the `BudgetStop` axis that fired, together with the best *sound*
//    partial answer available (certified lo/hi bracket, estimate with the
//    confidence actually earned, best-feasible point so far);
//  * thin entry points that can only return a plain vector throw the typed
//    `BudgetExhausted` error.
//
// Determinism contract (src/common/parallel.hpp). Iteration and evaluation
// caps count deterministic units, so an iteration-capped budget stops at
// the same unit regardless of thread count — results stay bitwise
// reproducible across TML_THREADS. Deadlines and cancellation are honoured
// only at those same checkpoint boundaries: *when* they fire depends on
// wall time, but the set of states a partial result can be in is the same
// deterministic checkpoint sequence.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/error.hpp"

namespace tml {

/// Cooperative cancellation flag, shared by value: every copy of a token
/// observes the same flag, so a budget embedded in options structs and
/// copied across threads still sees the caller's `cancel()`.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; safe to call from a signal handler thread.
  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  void reset() const { flag_->store(false, std::memory_order_relaxed); }

  /// Raw pointer to the shared flag, for async-signal contexts. A store
  /// through this pointer is the only thing a signal handler may do with a
  /// token: cancel() is a shared_ptr dereference plus an atomic store and is
  /// fine, but a handler installed before/after the token's lifetime needs a
  /// stable address it can pre-load. The pointee lives as long as any copy
  /// of the token; the caller keeps a copy alive while the handler is
  /// installed (see tools/tml_check.cpp).
  std::atomic<bool>* raw_flag() const { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Which budget axis stopped the work.
enum class BudgetStop : std::uint8_t {
  kNone = 0,       ///< budget never fired
  kDeadline,       ///< wall-clock deadline passed
  kIterationCap,   ///< max_iterations work units consumed
  kEvaluationCap,  ///< max_evaluations fine-grained units consumed
  kCancelled,      ///< CancelToken flipped
};

/// Coarse verdict carried on every rich engine result.
enum class BudgetStatus : std::uint8_t {
  kOk = 0,               ///< ran to its natural end within budget
  kBudgetExhausted = 1,  ///< stopped early; result is a flagged partial
};

const char* to_string(BudgetStop stop);

/// Resource budget for one engine call (or a whole pipeline — the deadline
/// is absolute). Default-constructed budgets are unlimited.
struct Budget {
  using Clock = std::chrono::steady_clock;

  /// Absolute wall-clock deadline; `time_point{}` (the default) means no
  /// deadline.
  Clock::time_point deadline{};
  /// Cap on the engine's outer deterministic work units; 0 = unlimited.
  std::uint64_t max_iterations = 0;
  /// Cap on fine-grained evaluations where the engine has them (NLP
  /// objective/constraint evaluations); 0 = unlimited.
  std::uint64_t max_evaluations = 0;
  /// Cooperative cancellation; shared across copies of this budget.
  CancelToken cancel;

  bool has_deadline() const { return deadline != Clock::time_point{}; }
  bool unlimited() const {
    return !has_deadline() && max_iterations == 0 && max_evaluations == 0;
  }

  /// Sets the deadline to `now + budget_ms` and returns *this (chainable).
  Budget& deadline_in_ms(std::int64_t budget_ms);

  /// Wall-clock time left until the deadline: zero when already past,
  /// Clock::duration::max() when no deadline is set. Honours fault-injected
  /// clock skew like the tracker's deadline checks.
  Clock::duration remaining() const;

  /// An even 1/n share of what is left of this budget, for dividing a
  /// session budget across n units of work (streaming batches): the share's
  /// deadline is `now + remaining()/n` (none if this budget has none) and
  /// each work-unit cap is divided by n (a nonzero cap never drops below 1,
  /// so a capped budget cannot silently become uncapped or unusable). The
  /// cancel token is shared — cancelling the session cancels every share.
  Budget split(std::uint64_t n) const;
};

/// Thrown by thin entry points (plain-vector returns, parametric
/// elimination) that cannot carry a flagged partial result.
class BudgetExhausted : public Error {
 public:
  BudgetExhausted(const std::string& what, BudgetStop stop)
      : Error(what), stop_(stop) {}
  BudgetStop stop() const { return stop_; }

 private:
  BudgetStop stop_;
};

/// Process-wide default budget, picked up by every options struct whose
/// budget member the caller leaves untouched (mirrors
/// default_solve_method). tml_check --timeout-ms sets it so even engines
/// reached without an options struct are bounded.
Budget default_budget();
void set_default_budget(const Budget& budget);

/// Per-call polling state over one Budget. Cheap to construct; engines
/// make one per loop (or pass a pointer down through helpers).
class BudgetTracker {
 public:
  /// Clock reads happen on tick 1 and then every kClockStride ticks.
  static constexpr std::uint64_t kClockStride = 16;

  explicit BudgetTracker(const Budget& budget);

  /// Counts `n` outer work units; returns true while within budget. After
  /// the first false, subsequent calls keep returning false (the stop axis
  /// is latched).
  bool tick(std::uint64_t n = 1);

  /// Counts `n` fine-grained evaluations against max_evaluations (also
  /// re-checks cancellation). Returns true while within budget.
  bool tick_evaluations(std::uint64_t n = 1);

  bool ok() const { return stop_ == BudgetStop::kNone; }
  bool exhausted() const { return !ok(); }
  BudgetStop stop() const { return stop_; }
  BudgetStatus status() const {
    return ok() ? BudgetStatus::kOk : BudgetStatus::kBudgetExhausted;
  }
  std::uint64_t iterations() const { return iterations_; }
  std::uint64_t evaluations() const { return evaluations_; }

  /// Throws BudgetExhausted naming `site` if the budget has fired. For
  /// thin entry points with no partial result to salvage.
  void require_ok(const char* site) const;

 private:
  bool clock_or_cancel_fired();
  bool deadline_passed() const;

  Budget budget_;
  std::uint64_t iterations_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t ticks_to_clock_ = 0;  // 0 => read clock on next tick
  BudgetStop stop_ = BudgetStop::kNone;
};

}  // namespace tml
