// Error handling primitives shared by all tml subsystems.
//
// The library throws `tml::Error` (a std::runtime_error) on contract
// violations and malformed inputs. `TML_REQUIRE` is used at public API
// boundaries; internal invariants use `TML_ASSERT`, which compiles to the
// same check (these models are small; we always pay for the check).

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tml {

/// Base exception type for all errors raised by the tml library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a model is structurally invalid (e.g. rows that do not sum
/// to one, dangling state indices, empty action sets).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Raised by the PCTL parser on malformed formula text.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when a numeric routine fails to converge or meets a singular
/// system it cannot handle.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require_failure(const char* expr,
                                               const char* file, int line,
                                               const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace tml

#define TML_REQUIRE(expr, msg)                                           \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::tml::detail::throw_require_failure(#expr, __FILE__, __LINE__,    \
                                           (std::ostringstream{} << msg) \
                                               .str());                  \
    }                                                                    \
  } while (false)

#define TML_ASSERT(expr, msg) TML_REQUIRE(expr, msg)
