// Small dense linear-algebra helpers.
//
// The model checker's linear-system engine and the IRL module need dense
// vectors and (for moderate state counts) dense matrices with a direct
// solver. This is intentionally minimal: row-major storage, Gaussian
// elimination with partial pivoting, and the handful of BLAS-1 style
// helpers used across the library.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    TML_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    TML_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Matrix-vector product.
  std::vector<double> apply(std::span<const double> x) const;

  /// Matrix-matrix product.
  Matrix multiply(const Matrix& other) const;

  /// Max-abs entry.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Throws NumericError on (near-)singular systems.
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

/// Euclidean norm.
double norm2(std::span<const double> v);

/// Infinity norm of (a - b); the vectors must have equal length.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

/// a += scale * b, in place.
void axpy(std::vector<double>& a, double scale, std::span<const double> b);

}  // namespace tml
