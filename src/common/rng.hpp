// Deterministic random number generation for simulation and optimization.
//
// All stochastic components of the library (trace simulation, optimizer
// multi-start, IRL sampling) take a `tml::Rng` explicitly so that every
// experiment in the bench harness is reproducible from a seed.

#pragma once

#include <bit>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

/// Seedable random source. Thin wrapper over std::mt19937_64 with the
/// sampling helpers the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : seed_(seed), engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    TML_REQUIRE(lo <= hi, "uniform: empty interval");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n), by bitmask rejection over raw engine words
  /// (unbiased; expected < 2 draws). Replaces the previous
  /// std::uniform_int_distribution constructed per call, which dominated
  /// the profile of simulation hot loops.
  std::size_t index(std::size_t n) {
    TML_REQUIRE(n > 0, "index: n must be positive");
    const std::uint64_t limit = static_cast<std::uint64_t>(n) - 1;
    if (limit == 0) return 0;
    const int bits = std::bit_width(limit);
    const std::uint64_t mask =
        bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
    for (;;) {
      const std::uint64_t draw = engine_() & mask;
      if (draw <= limit) return static_cast<std::size_t>(draw);
    }
  }

  /// Standard normal draw.
  double normal() { return normal_(engine_); }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    TML_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p out of [0,1]: " << p);
    return uniform() < p;
  }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Throws if all weights are zero (there is nothing to sample).
  std::size_t categorical(std::span<const double> weights);

  /// Derives an independent child generator by consuming one draw (serial
  /// fan-out; advances this generator).
  Rng fork() { return Rng(engine_()); }

  /// Derives the child generator of stream `stream_id` without touching
  /// this generator's state: the child seed is the `stream_id`-th output of
  /// a SplitMix64 sequence anchored at this generator's seed. Children with
  /// distinct ids are statistically independent, and the mapping depends
  /// only on (seed, stream_id) — the parallel engines rely on this to keep
  /// per-chunk sample streams identical for every thread count.
  Rng split(std::uint64_t stream_id) const;

  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace tml
