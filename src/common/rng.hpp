// Deterministic random number generation for simulation and optimization.
//
// All stochastic components of the library (trace simulation, optimizer
// multi-start, IRL sampling) take a `tml::Rng` explicitly so that every
// experiment in the bench harness is reproducible from a seed.

#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace tml {

/// Seedable random source. Thin wrapper over std::mt19937_64 with the
/// sampling helpers the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    TML_REQUIRE(lo <= hi, "uniform: empty interval");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    TML_REQUIRE(n > 0, "index: n must be positive");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Standard normal draw.
  double normal() { return normal_(engine_); }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    TML_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p out of [0,1]: " << p);
    return uniform() < p;
  }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Throws if all weights are zero (there is nothing to sample).
  std::size_t categorical(std::span<const double> weights);

  /// Derives an independent child generator (for parallel-safe fan-out).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace tml
