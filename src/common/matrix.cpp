#include "src/common/matrix.hpp"

#include <cmath>

namespace tml {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::apply(std::span<const double> x) const {
  TML_REQUIRE(x.size() == cols_, "Matrix::apply: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  TML_REQUIRE(cols_ == other.rows_, "Matrix::multiply: dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  TML_REQUIRE(a.cols() == n, "solve_linear_system: matrix must be square");
  TML_REQUIRE(b.size() == n, "solve_linear_system: rhs dimension mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-14) {
      throw NumericError("solve_linear_system: singular matrix at column " +
                         std::to_string(col));
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double d = a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / d;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return x;
}

double norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  TML_REQUIRE(a.size() == b.size(), "max_abs_diff: dimension mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  TML_REQUIRE(a.size() == b.size(), "dot: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(std::vector<double>& a, double scale, std::span<const double> b) {
  TML_REQUIRE(a.size() == b.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

}  // namespace tml
