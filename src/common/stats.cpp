#include "src/common/stats.hpp"

#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace tml {
namespace stats {

namespace {

bool env_enables_stats() {
  const char* raw = std::getenv("TML_STATS");
  if (raw == nullptr) return false;
  const std::string value(raw);
  return !(value.empty() || value == "0" || value == "false" ||
           value == "off");
}

}  // namespace

namespace detail {
// Dynamic-initialized from the environment, so the flag is correct before
// any instrumentation site runs (sites only execute after main starts).
std::atomic<bool> g_enabled{env_enables_stats()};
}  // namespace detail

namespace {

/// The canonical metric schema, declared up front so exporters always see
/// one entry per engine even when that engine did not run in this process.
struct SchemaEntry {
  const char* name;
  enum { kCounter, kGauge, kTimer } kind;
};

constexpr SchemaEntry kSchema[] = {
    {"compile.calls", SchemaEntry::kCounter},
    {"compile.rows", SchemaEntry::kCounter},
    {"compile.nnz", SchemaEntry::kCounter},
    {"compile.pred_builds", SchemaEntry::kCounter},
    {"compile.pred_dedup_hits", SchemaEntry::kCounter},
    {"compile.time", SchemaEntry::kTimer},
    {"compile.patch_calls", SchemaEntry::kCounter},
    {"compile.patch_hits", SchemaEntry::kCounter},
    {"compile.patch_fallbacks", SchemaEntry::kCounter},
    {"compile.patch_dirty_states", SchemaEntry::kCounter},
    {"compile.quotient_runs", SchemaEntry::kCounter},
    {"compile.quotient_refinements", SchemaEntry::kCounter},
    {"compile.quotient_fallbacks", SchemaEntry::kCounter},
    {"compile.quotient_blocks", SchemaEntry::kGauge},
    {"compile.quotient_time", SchemaEntry::kTimer},
    {"checker.checks", SchemaEntry::kCounter},
    {"checker.vi.iterations", SchemaEntry::kCounter},
    {"checker.pi.iterations", SchemaEntry::kCounter},
    {"checker.bounded.sweeps", SchemaEntry::kCounter},
    {"checker.prob0.states", SchemaEntry::kGauge},
    {"checker.prob1.states", SchemaEntry::kGauge},
    {"checker.vi.last_delta", SchemaEntry::kGauge},
    {"checker.scc_count", SchemaEntry::kGauge},
    {"checker.interval_sweeps", SchemaEntry::kCounter},
    {"checker.final_gap", SchemaEntry::kGauge},
    {"checker.check.time", SchemaEntry::kTimer},
    {"parametric.eliminations", SchemaEntry::kCounter},
    {"parametric.states_eliminated", SchemaEntry::kCounter},
    {"parametric.peak_degree", SchemaEntry::kGauge},
    {"parametric.peak_terms", SchemaEntry::kGauge},
    {"parametric.fill_in_edges", SchemaEntry::kCounter},
    {"parametric.pool_hits", SchemaEntry::kCounter},
    {"parametric.pool_misses", SchemaEntry::kCounter},
    {"parametric.scc_blocks", SchemaEntry::kGauge},
    {"parametric.elimination.time", SchemaEntry::kTimer},
    {"parametric.bounded.runs", SchemaEntry::kCounter},
    {"parametric.bounded.steps", SchemaEntry::kCounter},
    {"parametric.bounded.time", SchemaEntry::kTimer},
    {"opt.solves", SchemaEntry::kCounter},
    {"opt.starts", SchemaEntry::kCounter},
    {"opt.objective_evals", SchemaEntry::kCounter},
    {"opt.gradient_evals", SchemaEntry::kCounter},
    {"opt.constraint_evals", SchemaEntry::kCounter},
    {"opt.multistart.winner", SchemaEntry::kGauge},
    {"opt.solve.time", SchemaEntry::kTimer},
    {"smc.runs", SchemaEntry::kCounter},
    {"smc.samples", SchemaEntry::kCounter},
    {"smc.truncated_paths", SchemaEntry::kCounter},
    {"smc.decided_after", SchemaEntry::kGauge},
    {"smc.check.time", SchemaEntry::kTimer},
    {"irl.fits", SchemaEntry::kCounter},
    {"irl.backward_passes", SchemaEntry::kCounter},
    {"irl.forward_passes", SchemaEntry::kCounter},
    {"irl.gradient_iterations", SchemaEntry::kCounter},
    {"irl.gradient_norm", SchemaEntry::kGauge},
    {"irl.fit.time", SchemaEntry::kTimer},
    {"core.trusted_learn.runs", SchemaEntry::kCounter},
    {"core.trusted_learn.time", SchemaEntry::kTimer},
    {"opt.nan_starts", SchemaEntry::kCounter},
    {"budget.checkpoints", SchemaEntry::kCounter},
    {"budget.clock_reads", SchemaEntry::kCounter},
    {"budget.exhausted", SchemaEntry::kCounter},
    {"fault.injections", SchemaEntry::kCounter},
    {"checker.warm_solves", SchemaEntry::kCounter},
    {"checker.warm_blocks_skipped", SchemaEntry::kCounter},
    {"checker.warm_blocks_resolved", SchemaEntry::kCounter},
    {"checker.warm_seed_rejections", SchemaEntry::kCounter},
    {"core.session.batches", SchemaEntry::kCounter},
    {"core.session.repairs", SchemaEntry::kCounter},
    {"core.session.batch.time", SchemaEntry::kTimer},
    // Serving layer (src/serve). Requests/errors/rejections count protocol
    // outcomes; the cache triple tracks the compiled-model LRU; queue depth
    // is sampled at admission (peak is monotone); the latency quantiles are
    // refreshed by the server from its sliding window after each request.
    {"serve.requests", SchemaEntry::kCounter},
    {"serve.errors", SchemaEntry::kCounter},
    {"serve.rejected", SchemaEntry::kCounter},
    {"serve.deadline_exhausted", SchemaEntry::kCounter},
    {"serve.connections", SchemaEntry::kCounter},
    {"serve.cache.hits", SchemaEntry::kCounter},
    {"serve.cache.misses", SchemaEntry::kCounter},
    {"serve.cache.evictions", SchemaEntry::kCounter},
    {"serve.queue_depth", SchemaEntry::kGauge},
    {"serve.queue_peak", SchemaEntry::kGauge},
    {"serve.latency_p50_ms", SchemaEntry::kGauge},
    {"serve.latency_p99_ms", SchemaEntry::kGauge},
    {"serve.request.time", SchemaEntry::kTimer},
    // Connection hardening (PR 10): per-connection I/O deadline trips,
    // connection-cap rejections, oversized request lines.
    {"serve.io_timeouts", SchemaEntry::kCounter},
    {"serve.conn_rejected", SchemaEntry::kCounter},
    {"serve.oversized", SchemaEntry::kCounter},
    // Durable repair sessions: write-ahead journal records appended,
    // checkpoints taken, sessions resumed from a journal.
    {"core.session.journal_records", SchemaEntry::kCounter},
    {"core.session.checkpoints", SchemaEntry::kCounter},
    {"core.session.resumes", SchemaEntry::kCounter},
};

class Registry {
 public:
  Registry() {
    for (const SchemaEntry& entry : kSchema) {
      switch (entry.kind) {
        case SchemaEntry::kCounter: (void)counter(entry.name); break;
        case SchemaEntry::kGauge: (void)gauge(entry.name); break;
        case SchemaEntry::kTimer: (void)timer(entry.name); break;
      }
    }
  }

  Counter& counter(std::string_view name) {
    const std::scoped_lock lock(mutex_);
    auto& slot = counters_[std::string(name)];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
  }

  Gauge& gauge(std::string_view name) {
    const std::scoped_lock lock(mutex_);
    auto& slot = gauges_[std::string(name)];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
  }

  Timer& timer(std::string_view name) {
    const std::scoped_lock lock(mutex_);
    auto& slot = timers_[std::string(name)];
    if (slot == nullptr) slot = std::make_unique<Timer>();
    return *slot;
  }

  void reset() {
    const std::scoped_lock lock(mutex_);
    for (auto& [name, c] : counters_) c->clear();
    for (auto& [name, g] : gauges_) g->clear();
    for (auto& [name, t] : timers_) t->clear();
  }

  Snapshot snapshot() const {
    const std::scoped_lock lock(mutex_);
    Snapshot snap;
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
    for (const auto& [name, t] : timers_) {
      snap.timers[name] = Snapshot::TimerValue{t->count(), t->total_nanos()};
    }
    return snap;
  }

  std::string to_json() const {
    const std::scoped_lock lock(mutex_);
    std::ostringstream out;
    out << "{\n  \"enabled\": "
        << (stats::enabled() ? "true" : "false") << ",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      out << (first ? "\n" : ",\n") << "    \"" << name
          << "\": " << c->value();
      first = false;
    }
    out << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
      out << (first ? "\n" : ",\n") << "    \"" << name
          << "\": " << format_double(g->value());
      first = false;
    }
    out << "\n  },\n  \"timers\": {";
    first = true;
    for (const auto& [name, t] : timers_) {
      out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
          << t->count() << ", \"total_ms\": "
          << format_double(static_cast<double>(t->total_nanos()) / 1e6)
          << "}";
      first = false;
    }
    out << "\n  }\n}";
    return out.str();
  }

  std::string summary() const {
    const std::scoped_lock lock(mutex_);
    std::ostringstream out;
    for (const auto& [name, c] : counters_) {
      if (c->value() != 0) out << name << " = " << c->value() << "\n";
    }
    for (const auto& [name, g] : gauges_) {
      if (g->value() != 0.0) {
        out << name << " = " << format_double(g->value()) << "\n";
      }
    }
    for (const auto& [name, t] : timers_) {
      if (t->count() != 0) {
        out << name << " = "
            << format_double(static_cast<double>(t->total_nanos()) / 1e6)
            << " ms over " << t->count() << " spans\n";
      }
    }
    return out.str();
  }

 private:
  /// JSON-safe double: finite values via ostream (max precision is not
  /// needed for observability output), non-finite mapped to null.
  static std::string format_double(double v) {
    if (v != v) return "null";
    if (v == std::numeric_limits<double>::infinity()) return "1e308";
    if (v == -std::numeric_limits<double>::infinity()) return "-1e308";
    std::ostringstream out;
    out << v;
    return out.str();
  }

  mutable std::mutex mutex_;
  // Metric names are code-controlled dotted identifiers (no characters that
  // need JSON escaping); std::map keeps the export sorted.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: metric
  return *instance;  // references must outlive static-destruction order
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) { return registry().counter(name); }
Gauge& gauge(std::string_view name) { return registry().gauge(name); }
Timer& timer(std::string_view name) { return registry().timer(name); }

void reset() { registry().reset(); }

std::string summary() { return registry().summary(); }

std::uint64_t Snapshot::counter(std::string_view name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double Snapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

Snapshot::TimerValue Snapshot::timer(std::string_view name) const {
  const auto it = timers.find(name);
  return it == timers.end() ? TimerValue{} : it->second;
}

Snapshot snapshot() { return registry().snapshot(); }

Snapshot delta(const Snapshot& earlier, const Snapshot& later) {
  Snapshot out;
  for (const auto& [name, value] : later.counters) {
    const std::uint64_t before = earlier.counter(name);
    out.counters[name] = value >= before ? value - before : 0;
  }
  out.gauges = later.gauges;  // last-value semantics: the delta IS the later
  for (const auto& [name, value] : later.timers) {
    const Snapshot::TimerValue before = earlier.timer(name);
    out.timers[name] = Snapshot::TimerValue{
        value.count >= before.count ? value.count - before.count : 0,
        value.total_nanos >= before.total_nanos
            ? value.total_nanos - before.total_nanos
            : 0};
  }
  return out;
}

}  // namespace stats

std::string stats_to_json() { return stats::registry().to_json(); }

}  // namespace tml
