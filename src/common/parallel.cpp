#include "src/common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace tml {

namespace {

/// Set while the current thread executes a pool task: re-entrant run()
/// calls degrade to inline execution instead of deadlocking on the single
/// job slot.
thread_local bool t_in_pool_task = false;

struct InTaskGuard {
  InTaskGuard() { t_in_pool_task = true; }
  ~InTaskGuard() { t_in_pool_task = false; }
};

std::size_t parse_env_threads() {
  const char* value = std::getenv("TML_THREADS");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0 || parsed > 1024) return 0;
  return static_cast<std::size_t>(parsed);
}

std::atomic<std::size_t> g_default_override{0};

}  // namespace

std::size_t hardware_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t default_thread_count() {
  const std::size_t forced = g_default_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const std::size_t env = parse_env_threads();
  return env != 0 ? env : hardware_thread_count();
}

void set_default_thread_count(std::size_t threads) {
  g_default_override.store(threads, std::memory_order_relaxed);
}

std::size_t resolve_thread_count(std::size_t requested) {
  return requested != 0 ? requested : default_thread_count();
}

struct ThreadPool::Impl {
  std::vector<std::thread> threads;
  std::mutex mutex;
  std::condition_variable work_cv;  // workers wait for tickets
  std::condition_variable done_cv;  // run() waits for active workers
  bool stop = false;

  // Current job (valid while tickets > 0 or active > 0).
  const std::function<void(std::size_t)>* job = nullptr;
  std::size_t job_tasks = 0;
  std::size_t tickets = 0;  // worker participation slots left
  std::size_t active = 0;   // workers currently inside the job
  std::atomic<std::size_t> next_task{0};
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;

  // Detached tasks (ThreadPool::submit). Drained by the same workers when
  // no batch-job tickets are outstanding; dropped on destruction.
  std::deque<std::function<void()>> submitted;

  /// Claims tasks from the shared counter until exhausted. Exceptions are
  /// recorded (with their task index) instead of unwinding across threads.
  void claim_tasks(const std::function<void(std::size_t)>& fn,
                   std::size_t num_tasks) {
    InTaskGuard guard;
    for (;;) {
      const std::size_t i = next_task.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        errors.emplace_back(i, std::current_exception());
      }
    }
  }

  void worker_loop() {
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t num_tasks = 0;
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock,
                     [&] { return stop || tickets > 0 || !submitted.empty(); });
        if (stop) return;
        if (tickets > 0) {
          // Batch jobs first: run() blocks its caller, submitted tasks are
          // detached and can tolerate the extra queueing delay.
          --tickets;
          ++active;
          fn = job;
          num_tasks = job_tasks;
        } else {
          task = std::move(submitted.front());
          submitted.pop_front();
        }
      }
      if (fn != nullptr) {
        claim_tasks(*fn, num_tasks);
        const std::lock_guard<std::mutex> lock(mutex);
        if (--active == 0) done_cv.notify_all();
      } else {
        const InTaskGuard guard;
        try {
          task();
        } catch (...) {
          // submit() contract: tasks own their error handling.
        }
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  impl_->threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

std::size_t ThreadPool::workers() const { return impl_->threads.size(); }

void ThreadPool::run(std::size_t num_tasks, std::size_t parallelism,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (t_in_pool_task || impl_->threads.empty() || parallelism <= 1 ||
      num_tasks == 1) {
    // Inline in index order; exceptions propagate directly.
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &fn;
    impl_->job_tasks = num_tasks;
    impl_->next_task.store(0, std::memory_order_relaxed);
    impl_->errors.clear();
    impl_->tickets =
        std::min({parallelism - 1, impl_->threads.size(), num_tasks - 1});
  }
  impl_->work_cv.notify_all();

  impl_->claim_tasks(fn, num_tasks);

  std::exception_ptr first_error;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->tickets = 0;  // no further joiners once the counter is drained
    impl_->done_cv.wait(lock, [&] { return impl_->active == 0; });
    impl_->job = nullptr;
    if (!impl_->errors.empty()) {
      auto smallest = impl_->errors.begin();
      for (auto it = impl_->errors.begin(); it != impl_->errors.end(); ++it) {
        if (it->first < smallest->first) smallest = it;
      }
      first_error = smallest->second;
      impl_->errors.clear();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) return;
  if (impl_->threads.empty()) {
    // Zero-worker pool: run inline, under the same re-entrancy guard a
    // worker would provide.
    const InTaskGuard guard;
    try {
      task();
    } catch (...) {
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->submitted.push_back(std::move(task));
  }
  impl_->work_cv.notify_one();
}

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->submitted.size();
}

ThreadPool& ThreadPool::global() {
  // Sized generously relative to the machine (floor of 8) so explicit
  // `threads = N` requests exercise real worker threads even on small
  // hosts; idle workers sleep on the condition variable.
  static ThreadPool pool(
      std::min<std::size_t>(64, std::max({hardware_thread_count(),
                                          default_thread_count(),
                                          std::size_t{8}})) -
      1);
  return pool;
}

namespace detail {

void run_chunks(std::size_t num_chunks, std::size_t threads,
                const std::function<void(std::size_t)>& chunk_fn) {
  if (num_chunks == 0) return;
  const std::size_t resolved = resolve_thread_count(threads);
  if (resolved <= 1 || num_chunks == 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }
  ThreadPool::global().run(num_chunks, resolved, chunk_fn);
}

}  // namespace detail

}  // namespace tml
