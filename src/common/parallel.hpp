// Deterministic parallel execution layer.
//
// Every hot engine in the library (SMC sampling, the multi-start NLP
// driver, value-iteration sweeps, the IRL forward/backward passes) fans
// work out through the primitives in this header. The design contract is
// that **results never depend on the thread count**:
//
//  * work is decomposed into fixed grain-sized chunks — the decomposition
//    is a function of the range and the grain only, never of how many
//    threads execute it;
//  * chunk results are combined by an *ordered reduction*: partial results
//    land in a chunk-indexed array and are folded serially in chunk order,
//    so floating-point association is identical for 1 and for N threads;
//  * randomized engines derive one independent RNG stream per chunk with
//    `Rng::split` (SplitMix64 seed derivation), so the sample stream of a
//    chunk is self-contained.
//
// `threads = 1` executes the chunks inline on the calling thread in index
// order — the reference path with zero pool involvement. `threads = 0`
// resolves to the `TML_THREADS` environment variable, falling back to
// `std::thread::hardware_concurrency()`.
//
// The pool is a fixed set of workers created on first use; each
// `ThreadPool::run` caps how many of them participate, and tasks are
// claimed from a shared counter (no per-task queues). Re-entrant use from
// inside a task degrades to inline execution, which keeps nested
// `parallel_for` calls deadlock-free and — because the chunk decomposition
// is schedule-independent — bit-identical.

#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace tml {

/// Hardware thread count (always >= 1).
std::size_t hardware_thread_count();

/// Default parallelism used when a call site passes `threads = 0`:
/// the `TML_THREADS` environment variable if set to a positive integer,
/// otherwise `hardware_thread_count()`.
std::size_t default_thread_count();

/// Process-wide override of `default_thread_count()` (0 restores the
/// env-var/hardware resolution). Used by benches and tests; per-call
/// `threads` options take precedence.
void set_default_thread_count(std::size_t threads);

/// `requested == 0` → `default_thread_count()`, else `requested`.
std::size_t resolve_thread_count(std::size_t requested);

/// Fixed-size worker pool. One process-wide instance (`global()`) backs the
/// free functions below; standalone instances are used by the tests.
class ThreadPool {
 public:
  /// Spawns `workers` background threads (0 is valid: every `run` then
  /// executes inline on the caller).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const;

  /// Runs `fn(i)` for every i in [0, num_tasks), using the calling thread
  /// plus at most `parallelism - 1` pool workers, and blocks until all
  /// tasks finished. Task exceptions are captured and the one with the
  /// smallest task index is rethrown (matching what serial in-order
  /// execution would surface first). Re-entrant calls from inside a task
  /// run inline.
  void run(std::size_t num_tasks, std::size_t parallelism,
           const std::function<void(std::size_t)>& fn);

  /// Enqueues a detached task and returns immediately; some worker executes
  /// it as soon as it is free (batch `run` jobs take priority over the
  /// submit queue). The serving layer multiplexes requests through this.
  ///
  /// Contract: the task owns its error handling — an exception escaping it
  /// is swallowed, not rethrown (there is no caller left to unwind into);
  /// signal completion/results through state the task captures (e.g. a
  /// promise). Tasks run under the pool's re-entrancy guard, so a
  /// parallel_for inside a submitted task degrades to inline execution
  /// rather than deadlocking. With zero workers the task runs inline in
  /// submit() itself. Tasks still queued when the pool is destroyed are
  /// dropped (a captured promise then surfaces broken_promise to waiters).
  void submit(std::function<void()> task);

  /// Submitted tasks enqueued but not yet started.
  std::size_t pending() const;

  /// Process-wide pool backing parallel_for / parallel_transform_reduce.
  static ThreadPool& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Default chunk size for per-state sweeps. Chosen so that grid models of a
/// few thousand states split into enough chunks to keep 8 workers busy
/// while tiny case-study models (tens of states) stay single-chunk.
inline constexpr std::size_t kDefaultGrain = 64;

/// Number of grain-sized chunks covering [begin, end).
inline std::size_t chunk_count(std::size_t begin, std::size_t end,
                               std::size_t grain) {
  if (end <= begin) return 0;
  const std::size_t g = std::max<std::size_t>(1, grain);
  return (end - begin + g - 1) / g;
}

namespace detail {
/// Runs chunk_fn(chunk_index) for every chunk on up to `threads` threads
/// (0 = default). A resolved count of 1 executes inline in index order.
void run_chunks(std::size_t num_chunks, std::size_t threads,
                const std::function<void(std::size_t)>& chunk_fn);
}  // namespace detail

/// Parallel loop over [begin, end): `body(chunk_begin, chunk_end)` for each
/// fixed grain-sized chunk. The chunk decomposition depends only on the
/// range and grain, so per-chunk state (RNG streams, partial buffers) is
/// identical for every thread count.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threads = 0) {
  const std::size_t g = std::max<std::size_t>(1, grain);
  detail::run_chunks(chunk_count(begin, end, g), threads,
                     [&](std::size_t c) {
                       const std::size_t cb = begin + c * g;
                       body(cb, std::min(end, cb + g));
                     });
}

/// Deterministic ordered reduction: `map(chunk_begin, chunk_end)` produces
/// one partial result per chunk (computed in parallel), then the partials
/// are folded serially in chunk order with `combine`. For associative but
/// not floating-point-commutative combines this yields the same bits for
/// every thread count.
template <typename T, typename Map, typename Combine>
T parallel_transform_reduce(std::size_t begin, std::size_t end,
                            std::size_t grain, T init, Map&& map,
                            Combine&& combine, std::size_t threads = 0) {
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks = chunk_count(begin, end, g);
  if (chunks == 0) return init;
  std::vector<T> partial(chunks);
  detail::run_chunks(chunks, threads, [&](std::size_t c) {
    const std::size_t cb = begin + c * g;
    partial[c] = map(cb, std::min(end, cb + g));
  });
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace tml
