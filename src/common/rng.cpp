#include "src/common/rng.hpp"

namespace tml {

namespace {

/// SplitMix64 output function (Steele, Lea & Flood, OOPSLA'14): the i-th
/// output of the sequence with state `seed` is mix(seed + (i+1)·γ).
std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng Rng::split(std::uint64_t stream_id) const {
  constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;
  return Rng(splitmix64_mix(seed_ + (stream_id + 1) * kGamma));
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    TML_REQUIRE(w >= 0.0, "categorical: negative weight " << w);
    total += w;
  }
  TML_REQUIRE(total > 0.0, "categorical: all weights are zero");
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: return the last index with positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace tml
