#include "src/common/rng.hpp"

namespace tml {

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    TML_REQUIRE(w >= 0.0, "categorical: negative weight " << w);
    total += w;
  }
  TML_REQUIRE(total > 0.0, "categorical: all weights are zero");
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: return the last index with positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace tml
