// Engine-wide observability: a process-global statistics registry.
//
// Every engine (compile, checker, parametric, opt, smc, irl, core) reports
// what it actually did — iterations run, samples drawn, states eliminated,
// NLP evaluations, truncated paths — through three metric kinds:
//
//  * Counter — named monotonic counter (relaxed atomic add);
//  * Timer   — accumulating wall-clock span with a call count, fed by the
//              RAII `ScopedTimer`;
//  * Gauge   — last-value / running-max double (e.g. convergence deltas,
//              frontier sizes, multi-start winner index).
//
// Cost model. Collection is off by default; every record call starts with
// an inlined relaxed load of one global flag, so a disabled site costs a
// load + predictable branch (< 2% on the perf_checker fixtures — the
// instrumentation sits at iteration/shard granularity, never inside the
// per-state inner loops). Enable with the TML_STATS environment variable
// (any value except "", "0", "false", "off") or `stats::set_enabled(true)`.
//
// Determinism contract (src/common/parallel.hpp). Metrics never feed back
// into engine results, so they cannot perturb the bitwise-deterministic
// outputs. Counters incremented from inside parallel chunks use relaxed
// atomic addition, which is order-insensitive for integers; anything
// order-sensitive (per-shard truncation counts, the multi-start winner) is
// accumulated per chunk and folded in chunk order by the engine itself
// before being recorded here.
//
// Export. `tml::stats_to_json()` renders every registered metric as one
// JSON object, grouped by kind and sorted by name; the canonical engine
// metrics are pre-declared at process start (Prometheus-style), so the
// schema — including zero-valued counters of engines that did not run — is
// stable across runs and binaries.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tml {
namespace stats {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when collection is on. Inline relaxed load — this is the whole
/// disabled-path cost of every instrumentation site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on/off at runtime (overrides the TML_STATS env var).
void set_enabled(bool on);

/// Monotonic counter. Thread-safe; relaxed atomic increments only, so use
/// it for order-insensitive quantities (sums of events).
class Counter {
 public:
  void add(std::uint64_t n) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void bump() { add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void clear() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value / running-max gauge.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (CAS loop; order-insensitive).
  void set_max(double v) {
    if (!enabled()) return;
    double current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void clear() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulating timer: total elapsed nanoseconds plus a span count.
class Timer {
 public:
  void record(std::chrono::nanoseconds elapsed) {
    if (!enabled()) return;
    nanos_.fetch_add(static_cast<std::uint64_t>(elapsed.count()),
                     std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t total_nanos() const {
    return nanos_.load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void clear() {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Find-or-create by name. The returned reference is stable for the life
/// of the process; call sites cache it in a function-local static so the
/// registry lock is taken once per site, not per event.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Timer& timer(std::string_view name);

/// RAII span feeding a Timer. The clock is only read when collection is
/// enabled at construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& t)
      : timer_(enabled() ? &t : nullptr),
        start_(timer_ ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (timer_ != nullptr) {
      timer_->record(std::chrono::steady_clock::now() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Zeroes every registered metric (registration is kept).
void reset();

/// Point-in-time copy of every registered metric. Counters are process-
/// monotonic, so per-phase metering (e.g. one batch of a streaming repair
/// session) subtracts two snapshots instead of resetting the registry —
/// `reset()` would clobber concurrent observers and the process totals.
struct Snapshot {
  struct TimerValue {
    std::uint64_t count = 0;
    std::uint64_t total_nanos = 0;
  };
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, TimerValue, std::less<>> timers;

  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  TimerValue timer(std::string_view name) const;
};

/// Captures the current value of every registered metric.
Snapshot snapshot();

/// Metric activity between two snapshots: counters and timers subtract
/// (metrics registered only in `later` keep their value); gauges are
/// last-value semantics, so the delta simply carries `later`'s gauges.
Snapshot delta(const Snapshot& earlier, const Snapshot& later);

/// Human-readable one-metric-per-line dump of the non-zero metrics, for
/// end-of-run summaries (TrustedLearner).
std::string summary();

}  // namespace stats

/// All registered metrics as one JSON object:
///   { "enabled": ..., "counters": {...}, "gauges": {...},
///     "timers": { name: {"count": n, "total_ms": t}, ... } }
/// Names are sorted; the canonical engine schema is always present.
std::string stats_to_json();

}  // namespace tml
