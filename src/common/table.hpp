// ASCII table formatting for the benchmark harness.
//
// Every `bench/table_*` binary regenerates one of the paper's reported
// results; this helper keeps their output uniform and diff-friendly.

#pragma once

#include <string>
#include <vector>

namespace tml {

/// Accumulates rows of strings and renders an aligned ASCII table with a
/// header rule, e.g.
///
///   property        | outcome    | p      | q
///   ----------------+------------+--------+------
///   R<=100 [F goal] | satisfied  | -      | -
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table as a string (trailing newline included).
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (bench output helper).
std::string format_double(double value, int digits = 4);

}  // namespace tml
