#include "src/common/budget.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "src/common/fault.hpp"
#include "src/common/stats.hpp"

namespace tml {

namespace {

std::mutex& default_budget_mutex() {
  static std::mutex m;
  return m;
}

Budget& default_budget_storage() {
  static Budget budget;  // unlimited, with a process-wide cancel token
  return budget;
}

/// steady_clock::now() plus any fault-injected skew (site budget.clock),
/// so the deadline paths can be driven deterministically from tests.
Budget::Clock::time_point skewed_now() {
  Budget::Clock::time_point now = Budget::Clock::now();
  if (fault::any_armed()) {
    now += std::chrono::nanoseconds(fault::clock_skew_ns());
  }
  return now;
}

}  // namespace

const char* to_string(BudgetStop stop) {
  switch (stop) {
    case BudgetStop::kNone: return "none";
    case BudgetStop::kDeadline: return "deadline";
    case BudgetStop::kIterationCap: return "iteration-cap";
    case BudgetStop::kEvaluationCap: return "evaluation-cap";
    case BudgetStop::kCancelled: return "cancelled";
  }
  return "unknown";
}

Budget& Budget::deadline_in_ms(std::int64_t budget_ms) {
  deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  return *this;
}

Budget::Clock::duration Budget::remaining() const {
  if (!has_deadline()) return Clock::duration::max();
  const Clock::time_point now = skewed_now();
  return now >= deadline ? Clock::duration::zero() : deadline - now;
}

Budget Budget::split(std::uint64_t n) const {
  TML_REQUIRE(n > 0, "Budget::split: share count must be positive");
  Budget share = *this;  // keeps the shared cancel token
  if (has_deadline()) {
    // One clock read for both the remaining window and the new anchor: with
    // two reads the share's deadline could land (a clock tick) past the
    // session's, extending the budget it is supposed to subdivide.
    const Clock::time_point now = skewed_now();
    const Clock::duration left =
        now >= deadline ? Clock::duration::zero() : deadline - now;
    share.deadline = now + left / static_cast<std::int64_t>(n);
  }
  if (max_iterations != 0) {
    share.max_iterations = std::max<std::uint64_t>(1, max_iterations / n);
  }
  if (max_evaluations != 0) {
    share.max_evaluations = std::max<std::uint64_t>(1, max_evaluations / n);
  }
  return share;
}

Budget default_budget() {
  std::lock_guard<std::mutex> lock(default_budget_mutex());
  return default_budget_storage();
}

void set_default_budget(const Budget& budget) {
  std::lock_guard<std::mutex> lock(default_budget_mutex());
  default_budget_storage() = budget;
}

BudgetTracker::BudgetTracker(const Budget& budget) : budget_(budget) {}

bool BudgetTracker::deadline_passed() const {
  return budget_.has_deadline() && skewed_now() >= budget_.deadline;
}

bool BudgetTracker::clock_or_cancel_fired() {
  if (budget_.cancel.cancelled()) {
    stop_ = BudgetStop::kCancelled;
    return true;
  }
  if (ticks_to_clock_ == 0) {
    ticks_to_clock_ = kClockStride;
    if (budget_.has_deadline()) {
      static stats::Counter& clock_reads = stats::counter("budget.clock_reads");
      clock_reads.bump();
      if (deadline_passed()) {
        stop_ = BudgetStop::kDeadline;
        return true;
      }
    }
  }
  --ticks_to_clock_;
  return false;
}

bool BudgetTracker::tick(std::uint64_t n) {
  if (!ok()) return false;
  static stats::Counter& checkpoints = stats::counter("budget.checkpoints");
  checkpoints.bump();
  iterations_ += n;
  if (budget_.max_iterations != 0 && iterations_ > budget_.max_iterations) {
    iterations_ = budget_.max_iterations;
    stop_ = BudgetStop::kIterationCap;
  } else if (clock_or_cancel_fired()) {
    // stop_ set by the helper.
  }
  if (!ok()) {
    static stats::Counter& exhausted = stats::counter("budget.exhausted");
    exhausted.bump();
    return false;
  }
  return true;
}

bool BudgetTracker::tick_evaluations(std::uint64_t n) {
  if (!ok()) return false;
  evaluations_ += n;
  if (budget_.max_evaluations != 0 &&
      evaluations_ > budget_.max_evaluations) {
    evaluations_ = budget_.max_evaluations;
    stop_ = BudgetStop::kEvaluationCap;
  } else if (budget_.cancel.cancelled()) {
    stop_ = BudgetStop::kCancelled;
  }
  if (!ok()) {
    static stats::Counter& exhausted = stats::counter("budget.exhausted");
    exhausted.bump();
    return false;
  }
  return true;
}

void BudgetTracker::require_ok(const char* site) const {
  if (ok()) return;
  std::ostringstream os;
  os << site << ": budget exhausted (" << to_string(stop_) << ") after "
     << iterations_ << " work units";
  throw BudgetExhausted(os.str(), stop_);
}

}  // namespace tml
