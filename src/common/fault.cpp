#include "src/common/fault.hpp"

#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/numeric.hpp"
#include "src/common/stats.hpp"

namespace tml {
namespace fault {

namespace detail {
std::atomic<bool> g_any_armed{false};
}  // namespace detail

namespace {

enum class Mode { kNan, kInf, kOn, kSkew, kShort, kDrop, kDelay };

struct Site {
  Mode mode = Mode::kOn;
  std::uint64_t after = 0;   // calls to pass through before injecting
  std::int64_t skew_ns = 0;  // Mode::kSkew / Mode::kDelay payload
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> hits{0};
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

/// Sites are heap-held and never freed once armed, so the lock-free hook
/// paths can keep a raw pointer without racing disarm_all().
std::map<std::string, std::shared_ptr<Site>>& registry() {
  static std::map<std::string, std::shared_ptr<Site>> sites;
  return sites;
}

std::shared_ptr<Site> find_site(const char* name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(name);
  return it == registry().end() ? nullptr : it->second;
}

/// True when this call is at or past the site's @after threshold; counts
/// the call and, when due, the hit (fault.injections stat).
bool due(Site& site) {
  const std::uint64_t call =
      site.calls.fetch_add(1, std::memory_order_relaxed);
  if (call < site.after) return false;
  site.hits.fetch_add(1, std::memory_order_relaxed);
  static stats::Counter& injections = stats::counter("fault.injections");
  injections.bump();
  return true;
}

/// Parses the `<number>` payload of `skew=` / `delay=`. Locale-independent
/// (src/common/numeric.hpp): TML_FAULT specs are dotted-decimal regardless
/// of the process's LC_NUMERIC.
std::int64_t parse_ns_payload(const char* what, const std::string& payload) {
  double ns = 0.0;
  const std::size_t consumed = parse_finite_double(payload, &ns);
  TML_REQUIRE(consumed != 0 && consumed == payload.size(),
              "TML_FAULT: bad " << what << " value '" << payload << "'");
  return static_cast<std::int64_t>(ns);
}

Mode parse_mode(const std::string& text, std::int64_t* skew_ns) {
  if (text == "nan") return Mode::kNan;
  if (text == "inf") return Mode::kInf;
  if (text == "on") return Mode::kOn;
  if (text == "short") return Mode::kShort;
  if (text == "drop") return Mode::kDrop;
  if (text.rfind("skew=", 0) == 0) {
    *skew_ns = parse_ns_payload("skew", text.substr(5));
    return Mode::kSkew;
  }
  if (text.rfind("delay=", 0) == 0) {
    *skew_ns = parse_ns_payload("delay", text.substr(6));
    return Mode::kDelay;
  }
  throw Error("TML_FAULT: unknown fault mode '" + text +
              "' (want nan|inf|on|short|drop|skew=<ns>|delay=<ns>)");
}

/// Parses TML_FAULT at static init so env-armed faults are live before
/// main. Mirrors the TML_STATS idiom in stats.cpp.
const bool g_env_parsed = [] {
  const char* raw = std::getenv("TML_FAULT");
  if (raw != nullptr && *raw != '\0') arm_from_spec(raw);
  return true;
}();

}  // namespace

namespace detail {

double poison_slow(const char* site_name, double v) {
  std::shared_ptr<Site> site = find_site(site_name);
  if (site == nullptr) return v;
  if (site->mode != Mode::kNan && site->mode != Mode::kInf) return v;
  if (!due(*site)) return v;
  return site->mode == Mode::kNan
             ? std::numeric_limits<double>::quiet_NaN()
             : std::numeric_limits<double>::infinity();
}

bool fire_slow(const char* site_name) {
  std::shared_ptr<Site> site = find_site(site_name);
  if (site == nullptr || site->mode != Mode::kOn) return false;
  return due(*site);
}

std::int64_t clock_skew_slow() {
  std::shared_ptr<Site> site = find_site("budget.clock");
  if (site == nullptr || site->mode != Mode::kSkew) return 0;
  if (!due(*site)) return 0;
  return site->skew_ns;
}

WireAction wire_slow(const char* site_name) {
  std::shared_ptr<Site> site = find_site(site_name);
  if (site == nullptr) return WireAction{};
  WireAction action;
  switch (site->mode) {
    case Mode::kShort: action.kind = WireAction::Kind::kShort; break;
    case Mode::kDrop: action.kind = WireAction::Kind::kDrop; break;
    case Mode::kDelay:
      action.kind = WireAction::Kind::kDelay;
      action.delay_ns = site->skew_ns;
      break;
    default: return WireAction{};  // numeric mode armed on a wire site
  }
  if (!due(*site)) return WireAction{};
  return action;
}

}  // namespace detail

void arm(const std::string& site_name, const std::string& spec) {
  TML_REQUIRE(!site_name.empty(), "TML_FAULT: empty site name");
  auto site = std::make_shared<Site>();
  std::string mode_text = spec;
  const std::size_t at = spec.rfind('@');
  if (at != std::string::npos) {
    mode_text = spec.substr(0, at);
    const std::string after_text = spec.substr(at + 1);
    char* end = nullptr;
    site->after = std::strtoull(after_text.c_str(), &end, 10);
    TML_REQUIRE(end != after_text.c_str() && *end == '\0',
                "TML_FAULT: bad @after count '" << after_text << "'");
  }
  site->mode = parse_mode(mode_text, &site->skew_ns);
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry()[site_name] = std::move(site);
  }
  detail::g_any_armed.store(true, std::memory_order_relaxed);
}

void disarm(const std::string& site_name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().erase(site_name);
  if (registry().empty()) {
    detail::g_any_armed.store(false, std::memory_order_relaxed);
  }
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  detail::g_any_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& site_name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(site_name);
  return it == registry().end()
             ? 0
             : it->second->hits.load(std::memory_order_relaxed);
}

void arm_from_spec(const std::string& spec_list) {
  std::istringstream stream(spec_list);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    TML_REQUIRE(colon != std::string::npos,
                "TML_FAULT: entry '" << entry << "' is not site:spec");
    arm(entry.substr(0, colon), entry.substr(colon + 1));
  }
}

}  // namespace fault
}  // namespace tml
